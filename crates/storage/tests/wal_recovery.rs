//! Database-level crash-recovery tests: transactions, auto-commit routing,
//! crash injection at WAL-append / data-write / checkpoint-truncate points,
//! and torn-tail fuzzing of the log file.

use storage::db::Database;
use storage::schema::{ColumnDef, Schema};
use storage::value::{Value, ValueType};
use storage::CrashPoint;
use tempfile::tempdir;

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("id", ValueType::Int),
        ColumnDef::not_null("name", ValueType::Text),
    ])
}

fn row(i: i64) -> Vec<Value> {
    vec![Value::Int(i), Value::text(format!("row-{i}"))]
}

#[test]
fn committed_transaction_survives_reopen_without_flush() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.create_index(t, "id", true).unwrap();
        db.begin().unwrap();
        for i in 0..200 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        // No flush: the dirty pages die with the process.
    }
    let db = Database::open(&path).unwrap();
    let report = db
        .recovery_report()
        .expect("pre-existing file reports recovery");
    assert!(report.committed_txns >= 1);
    assert!(report.pages_redone >= 1);
    let t = db.table("t").unwrap();
    assert_eq!(db.row_count(t).unwrap(), 200);
    assert_eq!(db.index_lookup(t, "id", &Value::Int(137)).unwrap().len(), 1);
}

#[test]
fn uncommitted_transaction_is_invisible_on_reopen() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.begin().unwrap();
        for i in 0..50 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        db.begin().unwrap();
        for i in 100..400 {
            db.insert(t, &row(i)).unwrap();
        }
        // Crash without commit.
    }
    let db = Database::open(&path).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(
        db.row_count(t).unwrap(),
        50,
        "only the committed rows may survive"
    );
}

#[test]
fn rollback_undoes_ddl_and_dml() {
    let dir = tempdir().unwrap();
    let mut db = Database::create(dir.path().join("db.crdb")).unwrap();
    let t = db.create_table("keep", schema()).unwrap();
    db.insert(t, &row(1)).unwrap();
    db.begin().unwrap();
    let t2 = db.create_table("gone", schema()).unwrap();
    db.insert(t2, &row(2)).unwrap();
    db.insert(t, &row(3)).unwrap();
    db.rollback().unwrap();
    assert!(db.table("gone").is_err(), "rolled-back table must vanish");
    let t = db.table("keep").unwrap();
    assert_eq!(db.row_count(t).unwrap(), 1);
    // The database stays fully usable after the rollback.
    db.insert(t, &row(4)).unwrap();
    assert_eq!(db.row_count(t).unwrap(), 2);
}

#[test]
fn failed_autocommit_insert_rolls_back_cleanly() {
    let dir = tempdir().unwrap();
    let mut db = Database::create(dir.path().join("db.crdb")).unwrap();
    let t = db.create_table("t", schema()).unwrap();
    db.create_index(t, "id", true).unwrap();
    db.insert(t, &row(1)).unwrap();
    // Duplicate key: the auto-commit transaction fails and rolls back.
    assert!(db.insert(t, &row(1)).is_err());
    assert_eq!(db.row_count(t).unwrap(), 1);
    db.insert(t, &row(2)).unwrap();
    assert_eq!(db.row_count(t).unwrap(), 2);
}

/// Drive a workload with a crash injected at the `n`-th WAL append; reopen
/// and check that exactly the pre-crash committed state is visible.
fn crash_at_wal_append(n: u64) {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let committed_rows;
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.create_index(t, "id", true).unwrap();
        db.begin().unwrap();
        for i in 0..40 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        committed_rows = 40;
        db.inject_crash(CrashPoint::WalAppend(n));
        db.begin().unwrap();
        let mut failed = false;
        for i in 100..200 {
            if db.insert(t, &row(i)).is_err() {
                failed = true;
                break;
            }
        }
        if !failed && db.commit().is_err() {
            failed = true;
        }
        if !failed {
            // The workload needed fewer appends than the crash point; the
            // second transaction committed intact. Nothing to recover.
            return;
        }
    }
    let db = Database::open(&path).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(
        db.row_count(t).unwrap(),
        committed_rows,
        "crash at WAL append {n}: only committed rows may survive"
    );
    for i in 0..40 {
        assert_eq!(
            db.index_lookup(t, "id", &Value::Int(i)).unwrap().len(),
            1,
            "crash at WAL append {n}: committed row {i} lost"
        );
    }
}

#[test]
fn crash_points_during_wal_appends() {
    for n in 0..6 {
        crash_at_wal_append(n);
    }
}

/// Crash at the `n`-th data-file page write (eviction write-back under a
/// tiny pool, i.e. a steal, or checkpoint flush).
fn crash_at_data_write(n: u64) {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        // Tiny pool: the second transaction must steal pages.
        let mut db = Database::create_with_capacity(&path, 16).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.create_index(t, "id", true).unwrap();
        db.begin().unwrap();
        for i in 0..60 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        db.inject_crash(CrashPoint::DataWrite(n));
        db.begin().unwrap();
        let mut failed = false;
        for i in 1000..1600 {
            if db.insert(t, &row(i)).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            failed = db.commit().is_err();
        }
        if !failed {
            // The workload committed before the crash point was reached;
            // nothing further to assert for this n.
            return;
        }
    }
    let db = Database::open(&path).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(
        db.row_count(t).unwrap(),
        60,
        "crash at data write {n}: only committed rows may survive"
    );
    assert_eq!(db.index_lookup(t, "id", &Value::Int(42)).unwrap().len(), 1);
    assert_eq!(
        db.index_lookup(t, "id", &Value::Int(1000)).unwrap().len(),
        0
    );
}

#[test]
fn crash_points_during_data_writes() {
    for n in [0, 1, 2, 4, 8, 16, 32] {
        crash_at_data_write(n);
    }
}

#[test]
fn crash_before_checkpoint_truncation_is_harmless() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.begin().unwrap();
        for i in 0..80 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        db.inject_crash(CrashPoint::CheckpointTruncate);
        // The checkpoint makes the data durable, then "dies" before
        // truncating the log.
        assert!(db.flush().is_err());
    }
    // Replaying the already-checkpointed log must be idempotent.
    let db = Database::open(&path).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(db.row_count(t).unwrap(), 80);
}

#[test]
fn torn_wal_tails_recover_to_a_committed_prefix() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let wal_path = storage::wal::wal_path_for(&path);
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        for batch in 0..4 {
            db.begin().unwrap();
            for i in 0..25 {
                db.insert(t, &row(batch * 100 + i)).unwrap();
            }
            db.commit().unwrap();
        }
        // Crash: drop without flush. The WAL holds all four transactions.
    }
    let wal_bytes = std::fs::read(&wal_path).unwrap();
    let db_bytes = std::fs::read(&path).unwrap();
    // Truncate the log at various points; each reopen must land on a clean
    // prefix of whole committed transactions (row count divisible by 25).
    // Early cuts may even truncate away the auto-committed DDL, leaving no
    // table at all.
    let cuts: Vec<usize> = (0..=10)
        .map(|i| 16 + (wal_bytes.len() - 16) * i / 10)
        .collect();
    for cut in cuts {
        std::fs::write(&path, &db_bytes).unwrap();
        std::fs::write(&wal_path, &wal_bytes[..cut]).unwrap();
        let db = Database::open(&path).unwrap();
        let rows = match db.table("t") {
            Ok(t) => db.row_count(t).unwrap(),
            Err(_) => 0,
        };
        assert_eq!(
            rows % 25,
            0,
            "cut at {cut}: partial transaction visible ({rows} rows)"
        );
        // Recovery truncated the log, so a second open is clean.
        drop(db);
        let db = Database::open(&path).unwrap();
        let rows2 = match db.table("t") {
            Ok(t) => db.row_count(t).unwrap(),
            Err(_) => 0,
        };
        assert_eq!(rows2, rows);
    }
}

#[test]
fn logging_disabled_restores_legacy_behaviour() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        db.set_logging(false).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.begin().unwrap();
        for i in 0..20 {
            db.insert(t, &row(i)).unwrap();
        }
        db.commit().unwrap();
        assert_eq!(
            db.buffer_stats().wal_appends,
            0,
            "unlogged mode must not touch the WAL"
        );
        db.flush().unwrap();
    }
    let db = Database::open(&path).unwrap();
    assert_eq!(db.row_count(db.table("t").unwrap()).unwrap(), 20);
}

// ---------------------------------------------------------------------------
// Crash injection during bulk loads
// ---------------------------------------------------------------------------

/// Load `base` rows (committed), then crash an in-flight bulk insert at the
/// given point; reopening must recover to exactly the committed pre-bulk
/// state, with the table and its indexes fully usable.
fn crash_during_bulk(point: CrashPoint) {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        // A small pool forces eviction (steals) mid-bulk for the DataWrite
        // points.
        let mut db = Database::create_with_capacity(&path, 32).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.create_index(t, "id", true).unwrap();
        db.begin().unwrap();
        db.bulk_insert(t, 0.9, (0..500).map(row)).unwrap();
        db.commit().unwrap();
        db.inject_crash(point);
        db.begin().unwrap();
        let result = db
            .bulk_insert(t, 0.9, (1000..9000).map(row))
            .and_then(|_| db.commit());
        assert!(
            result.is_err(),
            "the injected crash must interrupt the bulk load ({point:?})"
        );
        // Crash: drop without flush.
    }
    let db = Database::open(&path).unwrap();
    let report = db.recovery_report().expect("recovery must run");
    assert!(report.committed_txns >= 1, "{point:?}: {report:?}");
    let t = db.table("t").unwrap();
    assert_eq!(
        db.row_count(t).unwrap(),
        500,
        "{point:?}: only the committed pre-bulk rows may survive"
    );
    for probe in [0i64, 250, 499] {
        assert_eq!(
            db.index_lookup(t, "id", &Value::Int(probe)).unwrap().len(),
            1
        );
    }
    assert!(db
        .index_lookup(t, "id", &Value::Int(1500))
        .unwrap()
        .is_empty());
}

#[test]
fn crash_points_during_bulk_wal_appends() {
    // The bulk commit group is hundreds of page images long; cut it at the
    // start, a little in, and mid-group.
    for n in [0, 3, 40] {
        crash_during_bulk(CrashPoint::WalAppend(n));
    }
}

#[test]
fn crash_points_during_bulk_data_writes() {
    // Evictions stream bulk pages to the data file mid-transaction; failing
    // those writes kills the load before any commit record exists.
    for n in [0, 4, 12] {
        crash_during_bulk(CrashPoint::DataWrite(n));
    }
}

#[test]
fn interrupted_bulk_leaves_no_torn_index() {
    // After recovering from a mid-bulk crash, the next bulk load must work
    // and land exactly once.
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        let t = db.create_table("t", schema()).unwrap();
        db.create_index(t, "id", true).unwrap();
        db.inject_crash(CrashPoint::WalAppend(5));
        db.begin().unwrap();
        let result = db
            .bulk_insert(t, 0.9, (0..2000).map(row))
            .and_then(|_| db.commit());
        assert!(result.is_err());
    }
    let mut db = Database::open(&path).unwrap();
    let t = db.table("t").unwrap();
    assert_eq!(db.row_count(t).unwrap(), 0);
    db.bulk_insert(t, 0.9, (0..2000).map(row)).unwrap();
    assert_eq!(db.row_count(t).unwrap(), 2000);
    assert_eq!(
        db.index_lookup(t, "id", &Value::Int(1999)).unwrap().len(),
        1
    );
}
