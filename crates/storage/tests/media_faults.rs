//! Media-fault robustness: checksum detection on the read path, WAL-based
//! page repair, quarantine of unrepairable pages, transient-error retry,
//! fsync poisoning, scrubbing, and degraded read-only opens.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use storage::buffer::BufferPool;
use storage::db::Database;
use storage::pager::Pager;
use storage::{
    shared_schedule, FaultConfig, FaultSchedule, PageId, ScrubOptions, StorageError, PAGE_SIZE,
};
use tempfile::tempdir;

/// XOR one byte of the database file at `offset`, bypassing the pool's file
/// handle (the page cache makes the damage visible to the same process).
fn corrupt_byte(path: &Path, offset: u64) {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 0xA5;
    f.seek(SeekFrom::Start(offset)).unwrap();
    f.write_all(&b).unwrap();
    f.sync_all().unwrap();
}

/// Build a small pool, commit 32 identifiable pages in one transaction
/// without checkpointing, and return (pool, pids). The pool holds only 8
/// frames, so most committed pages live exclusively on disk + WAL.
fn committed_pages(path: &Path) -> (BufferPool, Vec<PageId>) {
    let pager = Pager::create(path).unwrap();
    let pool = BufferPool::with_capacity(pager, 8).unwrap();
    pool.begin_txn().unwrap();
    let mut pids = Vec::new();
    for i in 0..32u64 {
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(100, 0xC0FFEE00 + i))
            .unwrap();
        pids.push(pid);
    }
    pool.commit_txn(true).unwrap();
    (pool, pids)
}

#[test]
fn corrupt_pages_are_repaired_from_the_wal_end_to_end() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let (pool, pids) = committed_pages(&path);

    // Smash a body byte of every committed page that reached the disk
    // (resident-only pages have no disk copy before a checkpoint). Resident
    // frames keep serving from memory; evicted pages must be detected and
    // healed from the committed WAL images.
    let file_len = std::fs::metadata(&path).unwrap().len();
    let mut smashed = 0u64;
    for pid in &pids {
        let offset = pid.0 * PAGE_SIZE as u64 + 4000;
        if offset < file_len {
            corrupt_byte(&path, offset);
            smashed += 1;
        }
    }
    assert!(
        smashed >= 8,
        "the 8-frame pool must have evicted pages to disk"
    );
    for (i, pid) in pids.iter().enumerate() {
        let v = pool.with_page(*pid, |p| p.read_u64(100)).unwrap();
        assert_eq!(
            v,
            0xC0FFEE00 + i as u64,
            "page {} must read back intact",
            pid.0
        );
    }
    let stats = pool.stats();
    assert!(
        stats.repaired_pages > 0,
        "at least one page must be WAL-repaired"
    );
    assert_eq!(stats.quarantined_pages, 0);
    assert!(pool.quarantined_pages().is_empty());
    assert!(!pool.is_poisoned());

    // The repair rewrote good bytes: a fresh open verifies cleanly.
    drop(pool);
    let pool = BufferPool::new(Pager::open(&path).unwrap()).unwrap();
    for (i, pid) in pids.iter().enumerate() {
        let v = pool.with_page(*pid, |p| p.read_u64(100)).unwrap();
        assert_eq!(v, 0xC0FFEE00 + i as u64);
    }
}

#[test]
fn unrepairable_page_is_quarantined_and_fails_fast() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let (pool, pids) = committed_pages(&path);
    // Checkpoint: data reaches disk, the WAL is truncated — no repair
    // source remains. Drop the cache so the next read goes to disk.
    pool.flush().unwrap();
    pool.clear_cache().unwrap();

    let victim = pids[7];
    corrupt_byte(&path, victim.0 * PAGE_SIZE as u64 + 512);

    let err = pool.with_page(victim, |p| p.read_u64(100)).unwrap_err();
    assert!(
        matches!(err, StorageError::CorruptPage { page, .. } if page == victim.0),
        "expected CorruptPage for page {}, got {err:?}",
        victim.0
    );
    // Second read fails fast out of the quarantine list, no re-read.
    let err = pool.with_page(victim, |p| p.read_u64(100)).unwrap_err();
    assert!(matches!(err, StorageError::CorruptPage { .. }));
    assert_eq!(pool.quarantined_pages(), vec![victim.0]);
    assert_eq!(pool.stats().quarantined_pages, 1);

    // Other pages stay readable.
    let v = pool.with_page(pids[0], |p| p.read_u64(100)).unwrap();
    assert_eq!(v, 0xC0FFEE00);
}

#[test]
fn transient_read_errors_are_retried_with_backoff() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let (pool, pids) = committed_pages(&path);
    pool.flush().unwrap();
    pool.clear_cache().unwrap();

    // Every read fails transiently until the 3-fault budget is spent. The
    // default retry policy allows 4 attempts, so the read succeeds.
    let schedule = shared_schedule(
        FaultSchedule::from_seed(
            42,
            FaultConfig {
                read_error: 1.0,
                ..FaultConfig::default()
            },
        )
        .with_fault_budget(3),
    );
    pool.install_fault_schedule(schedule.clone()).unwrap();

    let v = pool.with_page(pids[3], |p| p.read_u64(100)).unwrap();
    assert_eq!(v, 0xC0FFEE03);
    let stats = schedule.lock().stats();
    assert_eq!(
        stats.read_errors, 3,
        "all three budgeted faults were injected"
    );
    assert!(!pool.is_poisoned());
}

#[test]
fn fsync_failure_poisons_the_writer_but_readers_survive() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let (pool, pids) = committed_pages(&path);

    let schedule = shared_schedule(
        FaultSchedule::from_seed(
            7,
            FaultConfig {
                sync_error: 1.0,
                ..FaultConfig::default()
            },
        )
        .with_fault_budget(1),
    );
    pool.install_fault_schedule(schedule).unwrap();

    pool.begin_txn().unwrap();
    let pid = pool.allocate_page().unwrap();
    pool.with_page_mut(pid, |p| p.write_u64(0x20, 99)).unwrap();
    let err = pool.commit_txn(true).unwrap_err();
    assert!(
        matches!(err, StorageError::Io(_)),
        "fsync fault surfaces as I/O"
    );
    assert!(pool.is_poisoned());

    // The writer is gone: no new transactions, no checkpoints.
    assert!(matches!(
        pool.begin_txn(),
        Err(StorageError::WriterPoisoned(_))
    ));
    assert!(matches!(pool.flush(), Err(StorageError::WriterPoisoned(_))));

    // Reads keep serving the last committed state.
    let v = pool.with_page(pids[0], |p| p.read_u64(100)).unwrap();
    assert_eq!(v, 0xC0FFEE00);
}

#[test]
fn scrub_detects_and_repairs_latent_corruption() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let (pool, pids) = committed_pages(&path);

    // Latent damage on disk; the WAL still holds committed images.
    for pid in pids.iter().take(5) {
        corrupt_byte(&path, pid.0 * PAGE_SIZE as u64 + 2048);
    }
    let stats = pool.scrub(ScrubOptions::default()).unwrap();
    assert!(stats.pages_scanned >= pids.len() as u64);
    assert!(
        stats.pages_repaired >= 1,
        "scrub must heal from WAL or memory: {stats:?}"
    );
    assert_eq!(stats.pages_quarantined, 0, "{stats:?}");

    for (i, pid) in pids.iter().enumerate() {
        let v = pool.with_page(*pid, |p| p.read_u64(100)).unwrap();
        assert_eq!(v, 0xC0FFEE00 + i as u64);
    }
    assert!(pool.quarantined_pages().is_empty());
}

#[test]
fn degraded_open_quarantines_damage_and_rejects_writes() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let mut db = Database::create(&path).unwrap();
        let t = db
            .create_table(
                "t",
                storage::Schema::new(vec![storage::ColumnDef::not_null(
                    "id",
                    storage::ValueType::Int,
                )]),
            )
            .unwrap();
        for i in 0..2000i64 {
            db.insert(t, &[storage::Value::Int(i)]).unwrap();
        }
        db.flush().unwrap();
    }
    // Damage the last page (user data, allocated after the catalog).
    let page_count = {
        let pager = Pager::open(&path).unwrap();
        pager.page_count()
    };
    assert!(page_count > 4, "need a multi-page file, got {page_count}");
    let victim = page_count - 1;
    corrupt_byte(&path, victim * PAGE_SIZE as u64 + 1000);

    let db = Database::open_degraded(&path, 64).unwrap();
    assert!(db.read_only());
    assert_eq!(db.quarantined_pages(), vec![victim]);

    // Mutations are refused with a typed error.
    let mut db = db;
    let t = db.table("t").unwrap();
    let err = db.insert(t, &[storage::Value::Int(-1)]).unwrap_err();
    assert!(
        matches!(err, StorageError::ReadOnly),
        "degraded mode must refuse writes, got {err:?}"
    );
}

#[test]
fn header_corruption_is_a_typed_invalid_database_error() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    {
        let (pool, _) = committed_pages(&path);
        pool.flush().unwrap();
    }
    // Flip a byte deep in the header page (beyond the magic): the v2
    // full-header checksum must reject it as a typed error, not a panic.
    corrupt_byte(&path, 52);
    match Pager::open(&path) {
        Err(StorageError::InvalidDatabase(_)) | Err(StorageError::Corrupted(_)) => {}
        other => panic!("expected typed header-corruption error, got {other:?}"),
    }
}
