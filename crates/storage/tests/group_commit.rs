//! Group-commit integration tests: concurrent committers pipelining through
//! the commit queue and sharing fsync rounds, async commit + `wait_durable`,
//! and crash injection at the WAL-append and group-fsync points.
//!
//! The crash scenarios pin the batched-fsync contract: a failed group round
//! never commits a *partial* member. Every member of a failed round either
//! surfaces an error to its committer (`WriterPoisoned` / the leader's I/O
//! error) — and on reopen each member's transaction is recovered fully or
//! not at all, never page-by-page.

use std::sync::Arc;
use std::thread;

use storage::buffer::BufferPool;
use storage::pager::Pager;
use storage::{CrashPoint, PageId, StorageError};
use tempfile::tempdir;

/// Byte offset inside each page where the per-transaction marker lives.
const MARKER_OFF: usize = 64;

fn make_pool(path: &std::path::Path, capacity: usize) -> Arc<BufferPool> {
    let pager = Pager::create(path).unwrap();
    Arc::new(BufferPool::with_capacity(pager, capacity).unwrap())
}

fn reopen_pool(path: &std::path::Path, capacity: usize) -> BufferPool {
    let pager = Pager::open(path).unwrap();
    BufferPool::with_capacity(pager, capacity).unwrap()
}

/// `true` iff `pid` exists in the reopened pool and carries `code` at the
/// marker offset. Out-of-range pages (rolled-back allocations) read as "no".
fn has_marker(pool: &BufferPool, pid: PageId, code: u64) -> bool {
    pool.with_page(pid, |p| p.read_u64(MARKER_OFF))
        .map(|v| v == code)
        .unwrap_or(false)
}

/// Run one marker transaction: begin (blocking on the writer slot), dirty
/// `pages` fresh pages with `code`, commit with the requested durability.
/// Returns `true` on a successful commit; on any failure the transaction is
/// rolled back (or was already rolled back by the pool) and `false` is
/// returned. The allocated page ids are recorded either way so crash tests
/// can assert all-or-nothing visibility after reopen.
fn marker_txn(pool: &BufferPool, code: u64, pages: usize, pids_out: &mut Vec<PageId>) -> bool {
    if pool.begin_txn_blocking().is_err() {
        return false;
    }
    for _ in 0..pages {
        let prepared = pool.allocate_page().and_then(|pid| {
            pool.with_page_mut(pid, |p| p.write_u64(MARKER_OFF, code))
                .map(|_| pid)
        });
        match prepared {
            Ok(pid) => pids_out.push(pid),
            Err(_) => {
                // We hold the writer slot (begin succeeded), so this rolls
                // back our own transaction, never a sibling's.
                let _ = pool.rollback_txn();
                return false;
            }
        }
    }
    pool.commit_txn(true).is_ok()
}

#[test]
fn concurrent_committers_share_group_fsync_rounds() {
    const THREADS: u64 = 8;
    const TXNS_PER_THREAD: u64 = 24;
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let pool = make_pool(&path, 256);
    pool.reset_stats();

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let mut written: Vec<(PageId, u64)> = Vec::new();
            for k in 0..TXNS_PER_THREAD {
                let code = 0xBEEF_0000 + t * 1000 + k;
                let mut pids = Vec::new();
                assert!(
                    marker_txn(&pool, code, 1, &mut pids),
                    "commit {t}/{k} failed without fault injection"
                );
                written.push((pids[0], code));
            }
            written
        }));
    }
    let mut written: Vec<(PageId, u64)> = Vec::new();
    for h in handles {
        written.extend(h.join().unwrap());
    }

    // Every committed marker is visible in the live pool.
    for &(pid, code) in &written {
        assert_eq!(
            pool.with_page(pid, |p| p.read_u64(MARKER_OFF)).unwrap(),
            code
        );
    }

    let stats = pool.stats();
    let total = THREADS * TXNS_PER_THREAD;
    assert_eq!(stats.commits, total);
    assert!(stats.group_commits >= 1);
    assert_eq!(
        stats.fsyncs_saved,
        stats.group_commit_members - stats.group_commits,
        "fsyncs_saved must be the members-minus-rounds identity"
    );
    // The pipeline must have batched at least one round: with 8 committers
    // racing, followers enqueue while the leader fsyncs.
    assert!(
        stats.fsyncs_saved > 0,
        "8 threads x 24 txns never shared an fsync round: {stats:?}"
    );
    assert!(
        stats.wal_syncs < total,
        "group commit must issue fewer fsyncs than commits ({} vs {total})",
        stats.wal_syncs
    );

    // Durability: everything survives a crash-reopen (no flush).
    drop(pool);
    let pool = reopen_pool(&path, 256);
    for &(pid, code) in &written {
        assert!(has_marker(&pool, pid, code), "marker {code:#x} lost");
    }
}

#[test]
fn async_commits_ride_one_group_fsync() {
    const TXNS: u64 = 12;
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let pool = make_pool(&path, 64);
    pool.reset_stats();

    let mut written = Vec::new();
    let mut last_lsn = 0;
    for k in 0..TXNS {
        let code = 0xACE_0000 + k;
        pool.begin_txn().unwrap();
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| p.write_u64(MARKER_OFF, code))
            .unwrap();
        let lsn = pool.commit_txn(false).unwrap();
        assert!(lsn > last_lsn, "commit LSNs must be monotone");
        last_lsn = lsn;
        written.push((pid, code));
    }
    // Async commits are acknowledged at their log position, before any
    // fsync: the durable watermark lags the last commit LSN.
    assert!(
        pool.durable_lsn() < last_lsn,
        "async commits must not be durable before wait_durable"
    );
    assert_eq!(pool.stats().wal_syncs, 0, "async commits must not fsync");

    pool.wait_durable(last_lsn).unwrap();
    assert!(pool.durable_lsn() >= last_lsn);

    let stats = pool.stats();
    assert_eq!(stats.commits, TXNS);
    assert_eq!(stats.wal_syncs, 1, "one group fsync covers the batch");
    assert_eq!(stats.group_commits, 1);
    assert_eq!(stats.group_commit_members, TXNS);
    assert_eq!(stats.fsyncs_saved, TXNS - 1);

    drop(pool);
    let pool = reopen_pool(&path, 64);
    for &(pid, code) in &written {
        assert!(has_marker(&pool, pid, code), "marker {code:#x} lost");
    }
}

/// Crash at a WAL append in the middle of a concurrent commit storm. Each
/// member transaction dirties three pages; after reopen every member must be
/// recovered fully or not at all (a commit that returned an error may be
/// durable — indeterminate — but never torn).
#[test]
fn crash_at_wal_append_mid_batch_is_all_or_nothing_per_member() {
    const THREADS: u64 = 6;
    const TXNS_PER_THREAD: u64 = 8;
    const PAGES_PER_TXN: usize = 3;
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let pool = make_pool(&path, 128);

    // Committed baseline, durable before any fault is armed.
    let mut base_pids = Vec::new();
    assert!(marker_txn(&pool, 0xBA5E, 4, &mut base_pids));

    // Trip mid-batch: each member appends 3 page images + 1 commit record,
    // so append 25 lands inside the storm, after a handful of commits.
    pool.inject_crash(CrashPoint::WalAppend(25));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let mut results: Vec<(Vec<PageId>, u64, bool)> = Vec::new();
            for k in 0..TXNS_PER_THREAD {
                let code = 0xC0DE_0000 + t * 1000 + k;
                let mut pids = Vec::new();
                let ok = marker_txn(&pool, code, PAGES_PER_TXN, &mut pids);
                results.push((pids, code, ok));
            }
            results
        }));
    }
    let mut results = Vec::new();
    for h in handles {
        results.extend(h.join().unwrap());
    }
    let committed = results.iter().filter(|(_, _, ok)| *ok).count();
    let failed = results.len() - committed;
    assert!(committed >= 1, "some commits must beat the crash point");
    assert!(failed >= 1, "the crash must interrupt the storm");

    // Crash: drop without flush, reopen, recover.
    drop(pool);
    let pool = reopen_pool(&path, 128);
    pool.recovery_report().expect("reopen must report recovery");
    for pid in &base_pids {
        assert!(has_marker(&pool, *pid, 0xBA5E), "baseline lost");
    }
    for (pids, code, ok) in &results {
        let present = pids
            .iter()
            .filter(|p| has_marker(&pool, **p, *code))
            .count();
        if *ok {
            assert_eq!(
                present, PAGES_PER_TXN,
                "acknowledged member {code:#x} must survive in full"
            );
        } else {
            assert!(
                present == 0 || present == PAGES_PER_TXN,
                "failed member {code:#x} recovered partially ({present}/{PAGES_PER_TXN} pages)"
            );
        }
    }
}

/// Crash at the group fsync itself: the round's members all fail (the
/// leader with the I/O error, followers with `WriterPoisoned`), the writer
/// is poisoned, reads keep serving committed memory, and reopen recovers
/// each member all-or-nothing.
#[test]
fn crash_at_group_fsync_never_commits_a_partial_group() {
    const THREADS: u64 = 6;
    const PAGES_PER_TXN: usize = 2;
    let dir = tempdir().unwrap();
    let path = dir.path().join("db.crdb");
    let pool = make_pool(&path, 64);

    let mut base_pids = Vec::new();
    assert!(marker_txn(&pool, 0xBA5E, 4, &mut base_pids));

    // The very next WAL fsync — the group fsync of the storm below — fails.
    pool.inject_crash(CrashPoint::WalSync(0));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let pool = Arc::clone(&pool);
        handles.push(thread::spawn(move || {
            let code = 0xF5C_0000 + t;
            let mut pids = Vec::new();
            if pool.begin_txn_blocking().is_err() {
                return (pids, code, Err(None));
            }
            for _ in 0..PAGES_PER_TXN {
                match pool.allocate_page().and_then(|pid| {
                    pool.with_page_mut(pid, |p| p.write_u64(MARKER_OFF, code))
                        .map(|_| pid)
                }) {
                    Ok(pid) => pids.push(pid),
                    Err(_) => {
                        let _ = pool.rollback_txn();
                        return (pids, code, Err(None));
                    }
                }
            }
            (pids, code, pool.commit_txn(true).map(|_| ()).map_err(Some))
        }));
    }
    let mut results = Vec::new();
    for h in handles {
        results.push(h.join().unwrap());
    }

    // No member of the failed round may report success, and the surfaced
    // errors are the fsync failure (leader) or WriterPoisoned (followers and
    // later committers) — never a silent partial acknowledgement.
    for (_, code, outcome) in &results {
        let err = outcome
            .as_ref()
            .expect_err(&format!("member {code:#x} must not commit"));
        if let Some(e) = err {
            assert!(
                matches!(e, StorageError::Io(_) | StorageError::WriterPoisoned(_)),
                "member {code:#x}: unexpected error {e:?}"
            );
        }
    }
    assert!(
        pool.is_poisoned(),
        "a failed group fsync poisons the writer"
    );

    // Reads still serve the committed baseline from memory.
    for pid in &base_pids {
        assert_eq!(
            pool.with_page(*pid, |p| p.read_u64(MARKER_OFF)).unwrap(),
            0xBA5E
        );
    }
    // Further write attempts surface WriterPoisoned, they don't hang or lie.
    let attempt = pool.begin_txn().and_then(|_| {
        let pid = pool.allocate_page()?;
        pool.with_page_mut(pid, |p| p.write_u64(MARKER_OFF, 1))?;
        pool.commit_txn(true).map(|_| ())
    });
    assert!(
        matches!(
            attempt,
            Err(StorageError::WriterPoisoned(_) | StorageError::Io(_))
        ),
        "writes after poisoning must fail: {attempt:?}"
    );

    // Crash-reopen: the baseline survives; every member of the failed round
    // is recovered fully or not at all (its durability was indeterminate).
    drop(pool);
    let pool = reopen_pool(&path, 64);
    for pid in &base_pids {
        assert!(has_marker(&pool, *pid, 0xBA5E), "baseline lost");
    }
    for (pids, code, _) in &results {
        if pids.len() < PAGES_PER_TXN {
            continue; // never reached its commit; nothing to check
        }
        let present = pids
            .iter()
            .filter(|p| has_marker(&pool, **p, *code))
            .count();
        assert!(
            present == 0 || present == PAGES_PER_TXN,
            "member {code:#x} recovered partially ({present}/{PAGES_PER_TXN} pages)"
        );
    }
}
