//! The thin blocking client.
//!
//! [`Client`] owns one TCP connection. Two call styles:
//!
//! * **Synchronous**: [`Client::call`] sends one request and blocks for its
//!   response — the simple path for scripts and examples.
//! * **Pipelined**: [`Client::send`] pushes a request and returns its
//!   correlation id immediately; [`Client::recv`] (or
//!   [`Client::recv_matching`]) collects responses in whatever order the
//!   server produced them. This is how a single connection keeps the
//!   server's dispatch batching fed.
//!
//! The client never interprets engine errors: a typed
//! [`Response::Error`] is returned like any other response, and only
//! transport-level failures (socket errors, framing violations from the
//! server — which a correct server never produces) surface as
//! [`ClientError`].

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{encode_frame, FrameBuf, FrameError, DEFAULT_MAX_PAYLOAD};
use crate::msg::{Request, Response, WireDurability};
use crate::wire::WireError;

/// Transport-level client failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket error.
    Io(std::io::Error),
    /// The server's byte stream violated the framing protocol.
    Frame(FrameError),
    /// The server sent a payload that does not decode as a response.
    BadResponse(WireError),
    /// The connection closed before the awaited response arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "socket error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error from server: {e}"),
            ClientError::BadResponse(e) => write!(f, "undecodable response: {e}"),
            ClientError::Disconnected => write!(f, "connection closed mid-call"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// Result alias for client calls.
pub type ClientResult<T> = Result<T, ClientError>;

/// One blocking connection to a crimson server.
pub struct Client {
    stream: TcpStream,
    fb: FrameBuf,
    next_correlation: u64,
    /// Responses that arrived while waiting for a different correlation.
    pending: HashMap<u64, Response>,
    read_buf: Vec<u8>,
}

impl Client {
    /// Connect to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            fb: FrameBuf::new(DEFAULT_MAX_PAYLOAD),
            next_correlation: 1,
            pending: HashMap::new(),
            read_buf: vec![0u8; 16 * 1024],
        })
    }

    /// Send a request without waiting; returns its correlation id.
    pub fn send(&mut self, req: &Request) -> ClientResult<u64> {
        let correlation = self.next_correlation;
        self.next_correlation += 1;
        let frame = encode_frame(&req.encode(correlation));
        self.stream.write_all(&frame)?;
        Ok(correlation)
    }

    /// Receive the next response in arrival order.
    pub fn recv(&mut self) -> ClientResult<(u64, Response)> {
        // Serve from the reorder buffer first.
        if let Some(&k) = self.pending.keys().next() {
            let resp = self.pending.remove(&k).expect("key just seen");
            return Ok((k, resp));
        }
        self.read_one()
    }

    /// Receive (buffering others) until the response for `correlation`
    /// arrives.
    pub fn recv_matching(&mut self, correlation: u64) -> ClientResult<Response> {
        if let Some(resp) = self.pending.remove(&correlation) {
            return Ok(resp);
        }
        loop {
            let (corr, resp) = self.read_one()?;
            if corr == correlation {
                return Ok(resp);
            }
            self.pending.insert(corr, resp);
        }
    }

    /// Send one request and block for its response.
    pub fn call(&mut self, req: &Request) -> ClientResult<Response> {
        let corr = self.send(req)?;
        self.recv_matching(corr)
    }

    fn read_one(&mut self) -> ClientResult<(u64, Response)> {
        loop {
            match self.fb.next_frame() {
                Ok(Some(payload)) => {
                    let (corr, resp) =
                        Response::decode(&payload).map_err(ClientError::BadResponse)?;
                    return Ok((corr, resp));
                }
                Ok(None) => {}
                Err(e) => return Err(ClientError::Frame(e)),
            }
            let n = self.stream.read(&mut self.read_buf)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            let chunk = self.read_buf[..n].to_vec();
            self.fb.push(&chunk);
        }
    }

    // -- convenience wrappers ------------------------------------------

    /// Attach this session to a tenant.
    pub fn attach(&mut self, tenant: &str) -> ClientResult<Response> {
        self.call(&Request::Attach {
            tenant: tenant.to_string(),
        })
    }

    /// Load a Newick tree with the given durability.
    pub fn load_tree(
        &mut self,
        name: &str,
        newick: &str,
        durability: WireDurability,
    ) -> ClientResult<Response> {
        self.call(&Request::LoadTree {
            name: name.to_string(),
            newick: newick.to_string(),
            durability,
        })
    }

    /// Durability barrier for all acknowledged async writes on the tenant.
    pub fn wait_durable(&mut self) -> ClientResult<Response> {
        self.call(&Request::WaitDurable)
    }
}
