//! Typed wire error codes.
//!
//! A served engine must never panic or drop a connection because an engine
//! call failed: every error a request can produce — protocol-layer rejects,
//! session/tenancy errors, admission-control sheds, and the *entire*
//! [`CrimsonError`]/[`storage::StorageError`] surface — maps to a stable
//! `u16` code that travels in an error response frame next to the
//! human-readable message. Codes are append-only: new variants get new
//! numbers, old numbers are never reused, and an unknown code decodes to
//! [`ErrorCode::Internal`] rather than failing the frame.

use crimson::CrimsonError;
use std::fmt;
use storage::StorageError;

/// Stable numeric code of one wire error. Grouped by layer: `1..=99`
/// protocol and session, `100..=199` Crimson engine, `200..=299` storage
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u16)]
pub enum ErrorCode {
    // ---- protocol / session / admission (1..=99) ----
    /// The frame failed structural validation (bad magic or CRC mismatch).
    /// The stream can no longer be trusted; the server sends this reject
    /// and closes the connection.
    BadFrame = 1,
    /// The frame declared a payload longer than the negotiated maximum.
    FrameTooLarge = 2,
    /// The frame was sound but its payload did not decode as a known
    /// request (unknown opcode, truncated body, bad UTF-8). The connection
    /// survives — framing is intact.
    BadMessage = 3,
    /// The request needs a tenant but the session never attached one.
    NoTenant = 4,
    /// The named tenant does not exist (and the server does not
    /// auto-create).
    UnknownTenant = 5,
    /// The tenant name failed validation (path-safe `[A-Za-z0-9_-]`, at
    /// most 64 bytes).
    BadTenantName = 6,
    /// Admission control shed this request: the per-connection in-flight
    /// window or the global dispatch budget is full. Back off and retry;
    /// nothing was executed.
    Overloaded = 7,
    /// The server is draining for shutdown; in-flight requests complete
    /// but new ones are refused.
    ShuttingDown = 8,

    // ---- crimson engine (100..=199) ----
    /// An engine error with no more specific code.
    Internal = 100,
    /// `CrimsonError::UnknownTree`.
    UnknownTree = 101,
    /// `CrimsonError::UnknownTreeId`.
    UnknownTreeId = 102,
    /// `CrimsonError::UnknownSpecies`.
    UnknownSpecies = 103,
    /// `CrimsonError::UnknownNode`.
    UnknownNode = 104,
    /// `CrimsonError::InvalidSample`.
    InvalidSample = 105,
    /// `CrimsonError::DuplicateTree`.
    DuplicateTree = 106,
    /// `CrimsonError::DuplicateExperiment`.
    DuplicateExperiment = 107,
    /// `CrimsonError::UnknownExperiment`.
    UnknownExperiment = 108,
    /// `CrimsonError::MissingSequences`.
    MissingSequences = 109,
    /// `CrimsonError::History`.
    History = 110,
    /// `CrimsonError::CorruptRepository`.
    CorruptRepository = 111,
    /// `CrimsonError::MissingContentAddress`.
    MissingContentAddress = 112,
    /// `CrimsonError::Busy` — the snapshot-retired retry budget ran out.
    Busy = 113,
    /// `CrimsonError::Phylo` — tree parsing or manipulation failed (e.g. a
    /// malformed Newick string in a load request).
    TreeParse = 114,
    /// `CrimsonError::Compare`.
    Compare = 115,
    /// `CrimsonError::Distance`.
    Distance = 116,

    // ---- storage engine (200..=299) ----
    /// `StorageError::Io`.
    StorageIo = 200,
    /// `StorageError::InvalidDatabase`.
    InvalidDatabase = 201,
    /// `StorageError::InvalidPage`.
    InvalidPage = 202,
    /// `StorageError::InvalidRecord`.
    InvalidRecord = 203,
    /// `StorageError::RecordTooLarge`.
    RecordTooLarge = 204,
    /// `StorageError::UnknownTable`.
    UnknownTable = 205,
    /// `StorageError::UnknownIndex`.
    UnknownIndex = 206,
    /// `StorageError::UnknownColumn`.
    UnknownColumn = 207,
    /// `StorageError::AlreadyExists`.
    AlreadyExists = 208,
    /// `StorageError::SchemaMismatch`.
    SchemaMismatch = 209,
    /// `StorageError::DuplicateKey`.
    DuplicateKey = 210,
    /// `StorageError::BulkOutOfOrder`.
    BulkOutOfOrder = 211,
    /// `StorageError::Corrupted`.
    Corrupted = 212,
    /// `StorageError::PoolExhausted`.
    PoolExhausted = 213,
    /// `StorageError::TransactionActive`.
    TransactionActive = 214,
    /// `StorageError::NoActiveTransaction`.
    NoActiveTransaction = 215,
    /// `StorageError::CorruptPage` — a page failed its checksum.
    CorruptPage = 216,
    /// `StorageError::WriterPoisoned` — durability of acked writes is
    /// unknown; the tenant's writer refuses further mutations while reads
    /// keep serving the last committed snapshot.
    WriterPoisoned = 217,
    /// `StorageError::ReadOnly` — the tenant is open in degraded read-only
    /// mode; the mutation was refused.
    ReadOnly = 218,
    /// `StorageError::SnapshotRetired` — a pinned epoch outlived the
    /// bounded version chain (normally absorbed by the dispatch layer's
    /// re-pin fallback; surfacing it here is a server bug guard, not an
    /// expected client experience).
    SnapshotRetired = 219,
}

/// Every defined code, for exhaustive round-trip tests.
pub const ALL_ERROR_CODES: &[ErrorCode] = &[
    ErrorCode::BadFrame,
    ErrorCode::FrameTooLarge,
    ErrorCode::BadMessage,
    ErrorCode::NoTenant,
    ErrorCode::UnknownTenant,
    ErrorCode::BadTenantName,
    ErrorCode::Overloaded,
    ErrorCode::ShuttingDown,
    ErrorCode::Internal,
    ErrorCode::UnknownTree,
    ErrorCode::UnknownTreeId,
    ErrorCode::UnknownSpecies,
    ErrorCode::UnknownNode,
    ErrorCode::InvalidSample,
    ErrorCode::DuplicateTree,
    ErrorCode::DuplicateExperiment,
    ErrorCode::UnknownExperiment,
    ErrorCode::MissingSequences,
    ErrorCode::History,
    ErrorCode::CorruptRepository,
    ErrorCode::MissingContentAddress,
    ErrorCode::Busy,
    ErrorCode::TreeParse,
    ErrorCode::Compare,
    ErrorCode::Distance,
    ErrorCode::StorageIo,
    ErrorCode::InvalidDatabase,
    ErrorCode::InvalidPage,
    ErrorCode::InvalidRecord,
    ErrorCode::RecordTooLarge,
    ErrorCode::UnknownTable,
    ErrorCode::UnknownIndex,
    ErrorCode::UnknownColumn,
    ErrorCode::AlreadyExists,
    ErrorCode::SchemaMismatch,
    ErrorCode::DuplicateKey,
    ErrorCode::BulkOutOfOrder,
    ErrorCode::Corrupted,
    ErrorCode::PoolExhausted,
    ErrorCode::TransactionActive,
    ErrorCode::NoActiveTransaction,
    ErrorCode::CorruptPage,
    ErrorCode::WriterPoisoned,
    ErrorCode::ReadOnly,
    ErrorCode::SnapshotRetired,
];

impl ErrorCode {
    /// The stable numeric value sent on the wire.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decode a wire value. Unknown codes (a newer server talking to an
    /// older client) degrade to [`ErrorCode::Internal`] instead of failing
    /// the frame.
    pub fn from_u16(v: u16) -> ErrorCode {
        ALL_ERROR_CODES
            .iter()
            .copied()
            .find(|c| c.as_u16() == v)
            .unwrap_or(ErrorCode::Internal)
    }

    /// `true` for codes after which the server intentionally closes the
    /// connection (the stream framing can no longer be trusted).
    pub fn closes_connection(self) -> bool {
        matches!(self, ErrorCode::BadFrame | ErrorCode::FrameTooLarge)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}({})", self.as_u16())
    }
}

/// A typed error as it travels on the wire: stable code plus the engine's
/// display message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Stable numeric error code.
    pub code: ErrorCode,
    /// Human-readable message (the engine error's `Display`).
    pub message: String,
}

impl WireError {
    /// Build a wire error from a code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Map a storage error to its wire code.
pub fn storage_code(e: &StorageError) -> ErrorCode {
    match e {
        StorageError::Io(_) => ErrorCode::StorageIo,
        StorageError::InvalidDatabase(_) => ErrorCode::InvalidDatabase,
        StorageError::InvalidPage(_) => ErrorCode::InvalidPage,
        StorageError::InvalidRecord { .. } => ErrorCode::InvalidRecord,
        StorageError::RecordTooLarge(_) => ErrorCode::RecordTooLarge,
        StorageError::UnknownTable(_) => ErrorCode::UnknownTable,
        StorageError::UnknownIndex(_) => ErrorCode::UnknownIndex,
        StorageError::UnknownColumn(_) => ErrorCode::UnknownColumn,
        StorageError::AlreadyExists(_) => ErrorCode::AlreadyExists,
        StorageError::SchemaMismatch(_) => ErrorCode::SchemaMismatch,
        StorageError::DuplicateKey(_) => ErrorCode::DuplicateKey,
        StorageError::BulkOutOfOrder(_) => ErrorCode::BulkOutOfOrder,
        StorageError::Corrupted(_) => ErrorCode::Corrupted,
        StorageError::PoolExhausted(_) => ErrorCode::PoolExhausted,
        StorageError::TransactionActive => ErrorCode::TransactionActive,
        StorageError::NoActiveTransaction => ErrorCode::NoActiveTransaction,
        StorageError::CorruptPage { .. } => ErrorCode::CorruptPage,
        StorageError::WriterPoisoned(_) => ErrorCode::WriterPoisoned,
        StorageError::ReadOnly => ErrorCode::ReadOnly,
        StorageError::SnapshotRetired { .. } => ErrorCode::SnapshotRetired,
    }
}

/// Map a Crimson engine error to its wire code.
pub fn crimson_code(e: &CrimsonError) -> ErrorCode {
    match e {
        CrimsonError::Storage(s) => storage_code(s),
        CrimsonError::Phylo(_) => ErrorCode::TreeParse,
        CrimsonError::Compare(_) => ErrorCode::Compare,
        CrimsonError::Distance(_) => ErrorCode::Distance,
        CrimsonError::UnknownTree(_) => ErrorCode::UnknownTree,
        CrimsonError::UnknownTreeId(_) => ErrorCode::UnknownTreeId,
        CrimsonError::UnknownSpecies(_) => ErrorCode::UnknownSpecies,
        CrimsonError::UnknownNode(_) => ErrorCode::UnknownNode,
        CrimsonError::InvalidSample(_) => ErrorCode::InvalidSample,
        CrimsonError::DuplicateTree(_) => ErrorCode::DuplicateTree,
        CrimsonError::DuplicateExperiment(_) => ErrorCode::DuplicateExperiment,
        CrimsonError::UnknownExperiment(_) => ErrorCode::UnknownExperiment,
        CrimsonError::MissingSequences(_) => ErrorCode::MissingSequences,
        CrimsonError::History(_) => ErrorCode::History,
        CrimsonError::CorruptRepository(_) => ErrorCode::CorruptRepository,
        CrimsonError::MissingContentAddress(_) => ErrorCode::MissingContentAddress,
        CrimsonError::Busy(_) => ErrorCode::Busy,
    }
}

impl From<&CrimsonError> for WireError {
    fn from(e: &CrimsonError) -> WireError {
        WireError::new(crimson_code(e), e.to_string())
    }
}

impl From<CrimsonError> for WireError {
    fn from(e: CrimsonError) -> WireError {
        WireError::from(&e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_round_trip() {
        let mut seen = std::collections::HashSet::new();
        for &code in ALL_ERROR_CODES {
            assert!(seen.insert(code.as_u16()), "duplicate value for {code}");
            assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
        }
    }

    #[test]
    fn unknown_code_degrades_to_internal() {
        assert_eq!(ErrorCode::from_u16(9999), ErrorCode::Internal);
    }

    #[test]
    fn crimson_error_mapping_covers_required_codes() {
        assert_eq!(
            crimson_code(&CrimsonError::Storage(StorageError::WriterPoisoned(
                "fsync".into()
            ))),
            ErrorCode::WriterPoisoned
        );
        assert_eq!(
            crimson_code(&CrimsonError::Storage(StorageError::ReadOnly)),
            ErrorCode::ReadOnly
        );
        assert_eq!(
            crimson_code(&CrimsonError::Storage(StorageError::SnapshotRetired {
                epoch: 1,
                floor: 2
            })),
            ErrorCode::SnapshotRetired
        );
        assert_eq!(
            crimson_code(&CrimsonError::UnknownTree("x".into())),
            ErrorCode::UnknownTree
        );
        assert_eq!(
            crimson_code(&CrimsonError::Busy("storm".into())),
            ErrorCode::Busy
        );
    }
}
