//! The dispatch core: a bounded job queue feeding a small worker pool.
//!
//! Every engine-touching request from every connection flows through here;
//! connection threads only frame, decode, and enqueue. Routing rules:
//!
//! * **Reads coalesce.** When a worker pops a read job it also drains, from
//!   anywhere in the queue, up to `batch_max - 1` further read jobs for the
//!   *same tenant*. The batch pins one snapshot epoch and executes every
//!   job against that [`crimson::PinnedReader`] — adjacent reads from
//!   different connections share the pin, the buffer-pool working set, and
//!   the epoch bookkeeping, which is where the multi-connection throughput
//!   scaling comes from. A job whose pinned epoch is retired mid-batch
//!   falls back to fresh pins of its own.
//! * **Writes are exclusive.** A write job locks its tenant's single
//!   writer, commits (the writer rides
//!   [`crimson::repository::Durability::Async`], so the lock is held only
//!   for the log append), releases the lock, and *then* waits for
//!   durability when the request asked for `Sync` — so fsync rounds are
//!   shared across connections instead of serialized under the lock.
//! * **Admission is bounded.** [`Dispatcher::submit`] rejects once the
//!   queue is at capacity; it never blocks a connection thread.
//!
//! Shutdown is a drain: no new jobs are admitted, workers finish whatever
//! is queued, then exit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crimson::experiment::{DistanceSource, ExperimentRunner, ExperimentSpec, Method};
use crimson::repository::{StoredNodeId, TreeHandle};
use crimson::sampling::SamplingStrategy;
use crimson::{CrimsonError, PinnedReader};

use crate::frame::encode_frame;
use crate::msg::{
    Request, Response, WireComparison, WireDurability, WireIntegrity, WireMethod, WireRf,
    WireStats, WireStrategy, WireTree,
};
use crate::tenant::Tenant;
use crate::wire::WireError;

/// Dispatch pool configuration.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Maximum reads coalesced into one pinned-epoch batch.
    pub batch_max: usize,
    /// Whether to coalesce at all (`false` = one pin per read; the bench
    /// measures the difference).
    pub coalesce: bool,
    /// Queue capacity; submissions beyond it are shed with
    /// [`crate::wire::ErrorCode::Overloaded`].
    pub max_queue: usize,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        let hw = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        DispatchConfig {
            workers: hw.clamp(2, 8),
            batch_max: 32,
            coalesce: true,
            max_queue: 1024,
        }
    }
}

/// Monotonic counters shared by the pool, the server, and the `Stats`
/// request.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Read requests executed.
    pub reads: AtomicU64,
    /// Pinned-epoch batch executions.
    pub read_batches: AtomicU64,
    /// Reads that shared their batch with at least one other read.
    pub coalesced_reads: AtomicU64,
    /// Write requests executed.
    pub writes: AtomicU64,
    /// Requests shed with `Overloaded`.
    pub overloaded: AtomicU64,
    /// Frames/messages rejected at the protocol layer.
    pub protocol_rejects: AtomicU64,
    /// Currently open connections.
    pub connections: AtomicU64,
}

impl ServerStats {
    /// Snapshot for the `Stats` response.
    pub fn snapshot(&self, queue_depth: usize) -> WireStats {
        WireStats {
            reads: self.reads.load(Ordering::Relaxed),
            read_batches: self.read_batches.load(Ordering::Relaxed),
            coalesced_reads: self.coalesced_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            protocol_rejects: self.protocol_rejects.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
        }
    }
}

/// Where a finished job's response goes: the connection's writer channel,
/// paired with its in-flight window counter.
#[derive(Clone)]
pub struct Reply {
    tx: mpsc::Sender<Vec<u8>>,
    in_flight: Arc<AtomicUsize>,
}

impl Reply {
    /// A reply route over the connection's outbound frame channel.
    pub fn new(tx: mpsc::Sender<Vec<u8>>, in_flight: Arc<AtomicUsize>) -> Reply {
        Reply { tx, in_flight }
    }

    /// Encode and enqueue the response frame, releasing one window slot.
    /// A send failure means the connection is gone; the response is
    /// dropped, never the worker.
    pub fn send(&self, correlation: u64, resp: &Response) {
        let frame = encode_frame(&resp.encode(correlation));
        let _ = self.tx.send(frame);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One queued request.
pub struct Job {
    /// The tenant the session was attached to at submission.
    pub tenant: Arc<Tenant>,
    /// Client correlation id, echoed in the response.
    pub correlation: u64,
    /// The decoded request.
    pub request: Request,
    /// Response route.
    pub reply: Reply,
}

struct Queue {
    jobs: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// The dispatch pool handle held by the server.
pub struct Dispatcher {
    queue: Arc<Queue>,
    config: DispatchConfig,
    stats: Arc<ServerStats>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Dispatcher {
    /// Start `config.workers` worker threads.
    pub fn start(config: DispatchConfig, stats: Arc<ServerStats>) -> Dispatcher {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let config = config.clone();
                std::thread::Builder::new()
                    .name(format!("crimson-dispatch-{i}"))
                    .spawn(move || worker_loop(&queue, &config, &stats))
                    .expect("spawn dispatch worker")
            })
            .collect();
        Dispatcher {
            queue,
            config,
            stats,
            workers,
        }
    }

    /// Current queue depth (for `Stats`).
    pub fn queue_depth(&self) -> usize {
        self.queue
            .jobs
            .lock()
            .expect("dispatch queue poisoned")
            .len()
    }

    /// Admit a job, or hand it back when the queue is full or shutting
    /// down. The caller owns the reject response so the in-flight
    /// accounting stays with it. The rejected job rides the `Err` by
    /// value: it is consumed immediately to emit the typed reject, so
    /// boxing it would put an allocation on the overload path.
    #[allow(clippy::result_large_err)]
    pub fn submit(&self, job: Job) -> Result<(), Job> {
        if self.queue.shutdown.load(Ordering::Acquire) {
            return Err(job);
        }
        let mut jobs = self.queue.jobs.lock().expect("dispatch queue poisoned");
        if jobs.len() >= self.config.max_queue {
            drop(jobs);
            self.stats.overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(job);
        }
        jobs.push_back(job);
        drop(jobs);
        self.queue.ready.notify_one();
        Ok(())
    }

    /// Drain the queue and stop the workers. Every queued job still gets
    /// its response before the workers exit.
    pub fn shutdown(mut self) {
        self.queue.shutdown.store(true, Ordering::Release);
        self.queue.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(queue: &Queue, config: &DispatchConfig, stats: &ServerStats) {
    loop {
        let mut jobs = queue.jobs.lock().expect("dispatch queue poisoned");
        while jobs.is_empty() {
            if queue.shutdown.load(Ordering::Acquire) {
                return;
            }
            let (guard, _) = queue
                .ready
                .wait_timeout(jobs, Duration::from_millis(50))
                .expect("dispatch queue poisoned");
            jobs = guard;
        }
        let first = jobs.pop_front().expect("non-empty");
        let mut batch = vec![first];
        if config.coalesce && batch[0].request.is_read() {
            // Pull further reads for the same tenant from anywhere in the
            // queue; other tenants' jobs keep their relative order.
            let tenant = Arc::clone(&batch[0].tenant);
            let mut i = 0;
            while i < jobs.len() && batch.len() < config.batch_max {
                if jobs[i].request.is_read() && Arc::ptr_eq(&jobs[i].tenant, &tenant) {
                    let job = jobs.remove(i).expect("index in range");
                    batch.push(job);
                } else {
                    i += 1;
                }
            }
        }
        drop(jobs);
        if batch[0].request.is_read() {
            execute_read_batch(batch, stats);
        } else {
            let job = batch.pop().expect("exactly one");
            execute_exclusive(job, stats);
        }
    }
}

fn is_snapshot_retired(e: &CrimsonError) -> bool {
    matches!(
        e,
        CrimsonError::Storage(storage::StorageError::SnapshotRetired { .. })
    )
}

/// Run a batch of read jobs against one pinned epoch.
fn execute_read_batch(batch: Vec<Job>, stats: &ServerStats) {
    let n = batch.len() as u64;
    stats.reads.fetch_add(n, Ordering::Relaxed);
    stats.read_batches.fetch_add(1, Ordering::Relaxed);
    if batch.len() > 1 {
        stats.coalesced_reads.fetch_add(n, Ordering::Relaxed);
    }
    let tenant = Arc::clone(&batch[0].tenant);
    match tenant.reader.pin() {
        Ok(pin) => {
            for job in batch {
                let resp = match exec_read(&pin, &job.request) {
                    Ok(resp) => resp,
                    Err(e) if is_snapshot_retired(&e) => read_with_fresh_pin(&job),
                    Err(e) => Response::Error(WireError::from(&e)),
                };
                job.reply.send(job.correlation, &resp);
            }
        }
        Err(e) => {
            // Could not pin at all (e.g. degraded mode): every job in the
            // batch gets the typed error; the connection stays up.
            let wire = WireError::from(&e);
            for job in batch {
                job.reply
                    .send(job.correlation, &Response::Error(wire.clone()));
            }
        }
    }
}

/// Per-job fallback when the batch's shared epoch was retired under it:
/// retry on fresh pins of our own, then report the retirement honestly.
fn read_with_fresh_pin(job: &Job) -> Response {
    let mut last = None;
    for _ in 0..3 {
        let pin = match job.tenant.reader.pin() {
            Ok(p) => p,
            Err(e) => return Response::Error(WireError::from(&e)),
        };
        match exec_read(&pin, &job.request) {
            Ok(resp) => return resp,
            Err(e) if is_snapshot_retired(&e) => last = Some(e),
            Err(e) => return Response::Error(WireError::from(&e)),
        }
    }
    match last {
        Some(e) => Response::Error(WireError::from(&e)),
        None => unreachable!("loop ran at least once"),
    }
}

fn wire_tree(rec: &crimson::repository::TreeRecord) -> WireTree {
    WireTree {
        id: rec.handle.0,
        name: rec.name.clone(),
        leaf_count: rec.leaf_count,
    }
}

fn wire_rf(rf: &reconstruction::compare::RfResult) -> WireRf {
    WireRf {
        distance: rf.distance as u64,
        max_distance: rf.max_distance as u64,
        shared: rf.shared as u64,
        normalized: rf.normalized,
    }
}

fn ids(nodes: Vec<StoredNodeId>) -> Vec<u64> {
    nodes.into_iter().map(|n| n.0).collect()
}

/// Execute one read request against a pinned snapshot.
fn exec_read(pin: &PinnedReader<'_>, req: &Request) -> Result<Response, CrimsonError> {
    Ok(match req {
        Request::ListTrees => Response::Trees(pin.list_trees()?.iter().map(wire_tree).collect()),
        Request::TreeByName { name } => Response::Tree(wire_tree(&pin.tree_by_name(name)?)),
        Request::Leaves { tree } => Response::Nodes(ids(pin.leaves(TreeHandle(*tree))?)),
        Request::Lca { a, b } => Response::Node(pin.lca(StoredNodeId(*a), StoredNodeId(*b))?.0),
        Request::IsAncestor { ancestor, node } => {
            Response::Flag(pin.is_ancestor(StoredNodeId(*ancestor), StoredNodeId(*node))?)
        }
        Request::SpanningClade { nodes } => {
            let stored: Vec<StoredNodeId> = nodes.iter().map(|n| StoredNodeId(*n)).collect();
            Response::Nodes(ids(pin.minimal_spanning_clade(&stored)?))
        }
        Request::Project { tree, leaves } => {
            let stored: Vec<StoredNodeId> = leaves.iter().map(|n| StoredNodeId(*n)).collect();
            let projected = pin.project(TreeHandle(*tree), &stored)?;
            Response::Newick(phylo::newick::write(&projected))
        }
        Request::SampleUniform { tree, k, seed } => Response::Nodes(ids(pin.sample_uniform(
            TreeHandle(*tree),
            *k as usize,
            *seed,
        )?)),
        Request::CompareStored { a, b, triplets } => {
            let cmp = pin.compare_stored(TreeHandle(*a), TreeHandle(*b), *triplets)?;
            Response::Comparison(WireComparison {
                rf: wire_rf(&cmp.rf),
                rooted_rf: wire_rf(&cmp.rooted_rf),
                triplet: cmp.triplet,
            })
        }
        Request::IntegrityCheck => {
            let report = pin.integrity_check()?;
            Response::Integrity(WireIntegrity {
                trees: report.trees,
                nodes: report.nodes,
                species: report.species,
                interval_entries: report.interval_entries,
                experiments: report.experiments,
                experiment_results: report.experiment_results,
            })
        }
        other => {
            debug_assert!(false, "non-read request {other:?} routed to exec_read");
            Response::Error(WireError::new(
                crate::wire::ErrorCode::Internal,
                "request misrouted to the read path",
            ))
        }
    })
}

/// Execute a write / barrier job. The writer lock is held only for the
/// commit; durability waits happen on the shared reader afterwards.
fn execute_exclusive(job: Job, stats: &ServerStats) {
    let resp = match &job.request {
        Request::LoadTree {
            name,
            newick,
            durability,
        } => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
            load_tree(&job.tenant, name, newick, *durability)
        }
        Request::RunExperiment { spec } => {
            stats.writes.fetch_add(1, Ordering::Relaxed);
            run_experiment(&job.tenant, spec)
        }
        Request::WaitDurable => wait_durable(&job.tenant),
        other => {
            debug_assert!(false, "request {other:?} misrouted to the exclusive path");
            Response::Error(WireError::new(
                crate::wire::ErrorCode::Internal,
                "request misrouted to the write path",
            ))
        }
    };
    job.reply.send(job.correlation, &resp);
}

fn load_tree(tenant: &Tenant, name: &str, newick: &str, durability: WireDurability) -> Response {
    // Commit under the lock (log append only — the writer is permanently
    // Durability::Async), then wait for the fsync outside it so concurrent
    // sessions share group-commit rounds.
    let (handle, leaves, lsn) = {
        let mut repo = tenant.writer.lock();
        let report = match repo.load_newick(name, newick) {
            Ok(r) => r,
            Err(e) => return Response::Error(WireError::from(&e)),
        };
        let rec = match repo.tree_record(report.handle) {
            Ok(r) => r,
            Err(e) => return Response::Error(WireError::from(&e)),
        };
        (report.handle, rec.leaf_count, repo.last_commit_lsn())
    };
    tenant.note_async_commit(lsn);
    if durability == WireDurability::Sync {
        if let Err(e) = tenant.reader.wait_durable(lsn) {
            return Response::Error(WireError::from(&e));
        }
    }
    Response::TreeLoaded {
        tree: handle.0,
        leaves,
        commit_lsn: lsn,
    }
}

fn run_experiment(tenant: &Tenant, spec: &crate::msg::WireExperimentSpec) -> Response {
    let engine_spec = ExperimentSpec {
        name: spec.name.clone(),
        methods: spec
            .methods
            .iter()
            .map(|m| match m {
                WireMethod::Upgma => Method::Upgma,
                WireMethod::NeighborJoining => Method::NeighborJoining,
            })
            .collect(),
        strategies: spec
            .strategies
            .iter()
            .map(|s| match s {
                WireStrategy::Uniform { k } => SamplingStrategy::Uniform { k: *k as usize },
                WireStrategy::TimeRespecting { time, k } => SamplingStrategy::TimeRespecting {
                    time: *time,
                    k: *k as usize,
                },
            })
            .collect(),
        replicates: spec.replicates as usize,
        distance_source: DistanceSource::TruePatristic,
        compute_triplets: spec.compute_triplets,
        seed: spec.seed,
        workers: (spec.workers as usize).clamp(1, 8),
        cell_commits: false,
    };
    let (record, lsn) = {
        let mut repo = tenant.writer.lock();
        let gold = match repo.tree_by_name(&spec.gold) {
            Ok(rec) => rec.handle,
            Err(e) => return Response::Error(WireError::from(&e)),
        };
        let record = match ExperimentRunner::new(&mut repo, gold).run(&engine_spec) {
            Ok(r) => r,
            Err(e) => return Response::Error(WireError::from(&e)),
        };
        let lsn = repo.last_commit_lsn();
        (record, lsn)
    };
    tenant.note_async_commit(lsn);
    // Experiments are heavyweight; always make them durable before
    // acknowledging.
    if let Err(e) = tenant.reader.wait_durable(lsn) {
        return Response::Error(WireError::from(&e));
    }
    Response::Experiment {
        id: record.id,
        runs: record.runs,
        wall_ms: record.wall_ms,
    }
}

fn wait_durable(tenant: &Tenant) -> Response {
    let lsn: storage::wal::Lsn = tenant.barrier_lsn();
    if let Err(e) = tenant.reader.wait_durable(lsn) {
        return Response::Error(WireError::from(&e));
    }
    Response::Durable {
        lsn: tenant.reader.durable_lsn(),
    }
}
