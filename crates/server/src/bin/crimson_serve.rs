//! `crimson-serve` — run a crimson server over a tenant root directory.
//!
//! ```text
//! crimson-serve --root DIR [--addr HOST:PORT] [--workers N]
//!               [--batch-max N] [--no-coalesce] [--max-queue N]
//!               [--window N] [--duration SECS]
//! ```
//!
//! Without `--duration` the server runs until the process is killed.
//! The bound address is printed as `LISTENING <addr>` on stdout so
//! harnesses using an ephemeral port (`--addr 127.0.0.1:0`) can find it.

use std::time::Duration;

use crimson_server::server::{Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: crimson-serve --root DIR [--addr HOST:PORT] [--workers N] \
         [--batch-max N] [--no-coalesce] [--max-queue N] [--window N] [--duration SECS]"
    );
    std::process::exit(2);
}

fn main() {
    let mut root: Option<String> = None;
    let mut config = ServerConfig::default();
    let mut duration: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--root" => root = Some(value(&mut i)),
            "--addr" => config.addr = value(&mut i),
            "--workers" => {
                config.dispatch.workers = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--batch-max" => {
                config.dispatch.batch_max = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--no-coalesce" => config.dispatch.coalesce = false,
            "--max-queue" => {
                config.dispatch.max_queue = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--window" => config.conn_window = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--duration" => duration = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    let Some(root) = root else { usage() };

    let server = match Server::start(config, root) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("crimson-serve: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("LISTENING {}", server.addr());

    match duration {
        Some(secs) => {
            std::thread::sleep(Duration::from_secs(secs));
            server.shutdown();
        }
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
}
