//! Length-prefixed, CRC-framed binary transport.
//!
//! Every message travels in one frame:
//!
//! ```text
//! +----------+----------+----------+------------------+
//! | magic u32| len  u32 | crc  u32 | payload (len B)  |
//! +----------+----------+----------+------------------+
//! ```
//!
//! all little-endian. `magic` re-anchors the stream on every frame so a
//! desynchronised peer is detected at the next boundary instead of being
//! misparsed; `len` counts payload bytes only and is validated against the
//! connection's maximum *before* any allocation, so a hostile length prefix
//! cannot balloon memory; `crc` is CRC-32 (the WAL's polynomial) over the
//! payload. A frame that fails any of these checks is unrecoverable — the
//! byte position of the next frame is unknowable — so the peer sends one
//! typed reject ([`crate::wire::ErrorCode::BadFrame`] /
//! [`crate::wire::ErrorCode::FrameTooLarge`]) and closes.
//!
//! [`FrameBuf`] is the reassembly buffer both ends use: push whatever the
//! socket produced, pull zero or more complete frames. It is pure state
//! machine — no I/O — which is what the torn-frame and fuzz tests grip.

use crate::wire::{ErrorCode, WireError};
use storage::wal::crc32;

/// Frame magic: `"CRMS"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"CRMS");

/// Bytes of frame header (magic + len + crc).
pub const HEADER_LEN: usize = 12;

/// Default per-connection payload ceiling (8 MiB). Large enough for a
/// bulk-load Newick string of a ~100k-leaf tree, small enough that a
/// malicious length prefix cannot exhaust memory.
pub const DEFAULT_MAX_PAYLOAD: usize = 8 * 1024 * 1024;

/// Structural frame violations. All of them poison the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The four bytes at the expected frame boundary were not [`MAGIC`].
    BadMagic(u32),
    /// The declared payload length exceeds the connection's maximum.
    TooLarge {
        /// Declared payload length.
        len: usize,
        /// The connection's configured ceiling.
        max: usize,
    },
    /// The payload's CRC-32 did not match the header.
    BadCrc {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload bytes received.
        found: u32,
    },
}

impl FrameError {
    /// The typed wire error this violation is reported as before the
    /// connection closes.
    pub fn to_wire(&self) -> WireError {
        match self {
            FrameError::BadMagic(m) => WireError::new(
                ErrorCode::BadFrame,
                format!("bad frame magic {m:#010x} (expected {MAGIC:#010x})"),
            ),
            FrameError::TooLarge { len, max } => WireError::new(
                ErrorCode::FrameTooLarge,
                format!("frame payload of {len} bytes exceeds the {max}-byte limit"),
            ),
            FrameError::BadCrc { expected, found } => WireError::new(
                ErrorCode::BadFrame,
                format!("frame CRC mismatch: header {expected:#010x}, payload {found:#010x}"),
            ),
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_wire())
    }
}

impl std::error::Error for FrameError {}

/// Wrap a payload in a frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Streaming frame reassembly: feed bytes in arbitrary chunks, pull
/// complete validated payloads.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames (compacted
    /// lazily).
    pos: usize,
    max_payload: usize,
}

impl FrameBuf {
    /// A reassembly buffer with the given payload ceiling.
    pub fn new(max_payload: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            pos: 0,
            max_payload,
        }
    }

    /// Append bytes read from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one frame
        // plus one socket read however long the connection lives.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet returned as a frame. Non-zero
    /// at connection EOF means the peer disconnected mid-frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to extract the next complete frame. `Ok(None)` means more bytes
    /// are needed; an error poisons the stream (the caller must close).
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let magic = u32::from_le_bytes(avail[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let len = u32::from_le_bytes(avail[4..8].try_into().expect("4 bytes")) as usize;
        if len > self.max_payload {
            return Err(FrameError::TooLarge {
                len,
                max: self.max_payload,
            });
        }
        let expected = u32::from_le_bytes(avail[8..12].try_into().expect("4 bytes"));
        if avail.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let payload = avail[HEADER_LEN..HEADER_LEN + len].to_vec();
        let found = crc32(&payload);
        if found != expected {
            return Err(FrameError::BadCrc { expected, found });
        }
        self.pos += HEADER_LEN + len;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_single_and_pipelined() {
        let mut fb = FrameBuf::new(DEFAULT_MAX_PAYLOAD);
        let a = encode_frame(b"hello");
        let b = encode_frame(b"");
        let c = encode_frame(&[7u8; 1000]);
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        stream.extend_from_slice(&c);
        // Feed in awkward 7-byte chunks.
        let mut got = Vec::new();
        for chunk in stream.chunks(7) {
            fb.push(chunk);
            while let Some(p) = fb.next_frame().expect("valid frames") {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], b"hello");
        assert_eq!(got[1], b"");
        assert_eq!(got[2], vec![7u8; 1000]);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut fb = FrameBuf::new(1024);
        fb.push(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0, 0, 0]);
        let err = fb.next_frame().expect_err("must reject");
        assert!(matches!(err, FrameError::BadMagic(_)));
        assert_eq!(err.to_wire().code, ErrorCode::BadFrame);
    }

    #[test]
    fn oversized_len_rejected_before_buffering_payload() {
        let mut fb = FrameBuf::new(64);
        let mut hdr = Vec::new();
        hdr.extend_from_slice(&MAGIC.to_le_bytes());
        hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
        hdr.extend_from_slice(&0u32.to_le_bytes());
        fb.push(&hdr);
        let err = fb.next_frame().expect_err("must reject");
        assert_eq!(err.to_wire().code, ErrorCode::FrameTooLarge);
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut frame = encode_frame(b"payload-bytes");
        let n = frame.len();
        frame[n - 1] ^= 0x01;
        let mut fb = FrameBuf::new(1024);
        fb.push(&frame);
        let err = fb.next_frame().expect_err("must reject");
        assert!(matches!(err, FrameError::BadCrc { .. }));
    }

    #[test]
    fn torn_frame_stays_pending() {
        let frame = encode_frame(b"torn");
        let mut fb = FrameBuf::new(1024);
        fb.push(&frame[..frame.len() - 2]);
        assert!(fb
            .next_frame()
            .expect("incomplete is not an error")
            .is_none());
        assert!(fb.pending() > 0, "mid-frame bytes are observable");
        fb.push(&frame[frame.len() - 2..]);
        assert_eq!(fb.next_frame().unwrap().unwrap(), b"torn");
    }
}
