//! The TCP server: accept loop, per-connection reader/writer threads,
//! session state, admission control, and graceful drain shutdown.
//!
//! Threading model (no async runtime — the build environment is
//! dependency-free, so this is plain blocking I/O):
//!
//! * one accept thread, polling a non-blocking listener;
//! * per connection, a **reader thread** (frame reassembly → decode →
//!   admission → dispatch) and a **writer thread** (drains an mpsc channel
//!   of encoded frames into the socket). Responses are produced by dispatch
//!   workers on other threads; the channel is what lets them complete out
//!   of submission order while the socket writes stay serialized.
//!
//! Admission has two gates, both checked on the reader thread before a job
//! is enqueued: the per-connection in-flight window, and the global
//! dispatch queue budget. Both reject with a typed
//! [`ErrorCode::Overloaded`] response — the connection survives, the client
//! backs off.
//!
//! Shutdown is a drain: the accept loop stops, reader threads stop pulling
//! new frames and reject stragglers with [`ErrorCode::ShuttingDown`],
//! in-flight jobs finish and their responses flush, then sockets close.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::dispatch::{DispatchConfig, Dispatcher, Job, Reply, ServerStats};
use crate::frame::{encode_frame, FrameBuf, DEFAULT_MAX_PAYLOAD};
use crate::msg::{Request, Response};
use crate::tenant::{Tenant, TenantMap, TenantOptions};
use crate::wire::{ErrorCode, WireError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub addr: String,
    /// Dispatch pool settings.
    pub dispatch: DispatchConfig,
    /// Tenant namespace settings.
    pub tenants: TenantOptions,
    /// Per-connection in-flight request window; frames beyond it are shed
    /// with `Overloaded`.
    pub conn_window: usize,
    /// Per-connection frame payload ceiling.
    pub max_payload: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            dispatch: DispatchConfig::default(),
            tenants: TenantOptions::default(),
            conn_window: 64,
            max_payload: DEFAULT_MAX_PAYLOAD,
        }
    }
}

/// A running server; dropping it without calling [`Server::shutdown`]
/// aborts rather than drains.
pub struct Server {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

/// State shared by the accept loop and every connection.
struct Shared {
    dispatcher: Dispatcher,
    tenants: TenantMap,
    stats: Arc<ServerStats>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    /// Connection reader/writer threads still running (joined on
    /// shutdown by polling — threads deregister themselves).
    live_conns: AtomicUsize,
}

impl Server {
    /// Bind, start the dispatch pool and the accept loop, return
    /// immediately.
    pub fn start(
        config: ServerConfig,
        root: impl Into<std::path::PathBuf>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::default());
        let dispatcher = Dispatcher::start(config.dispatch.clone(), Arc::clone(&stats));
        let tenants = TenantMap::new(root, config.tenants.clone())?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            dispatcher,
            tenants,
            stats,
            config,
            shutdown: Arc::clone(&shutdown),
            live_conns: AtomicUsize::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("crimson-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");
        Ok(Server {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared statistics counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Graceful shutdown: stop accepting, let connections drain their
    /// in-flight requests, stop the dispatch pool, join everything.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Connection threads observe the flag within one poll interval and
        // deregister; wait for them before stopping the pool so every
        // in-flight job still has a live reply channel.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while self.shared.live_conns.load(Ordering::Acquire) > 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Dispatcher::shutdown drains the queue before stopping workers.
        let shared = self.shared;
        // The Arc is also held by any connection threads that missed the
        // deadline; only the sole owner can take the dispatcher.
        match Arc::try_unwrap(shared) {
            Ok(s) => s.dispatcher.shutdown(),
            Err(_) => { /* stragglers hold the pool; process exit reaps them */ }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.live_conns.fetch_add(1, Ordering::AcqRel);
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let conn_shared = Arc::clone(&shared);
                let _ = std::thread::Builder::new()
                    .name("crimson-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &conn_shared);
                        conn_shared.live_conns.fetch_sub(1, Ordering::AcqRel);
                        conn_shared
                            .stats
                            .connections
                            .fetch_sub(1, Ordering::Relaxed);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Per-connection session state owned by the reader thread.
struct Session {
    tenant: Option<Arc<Tenant>>,
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let (frame_tx, frame_rx) = mpsc::channel::<Vec<u8>>();
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let writer_thread = std::thread::Builder::new()
        .name("crimson-conn-writer".to_string())
        .spawn(move || writer_loop(writer_stream, frame_rx))
        .expect("spawn connection writer");

    reader_loop(stream, shared, &frame_tx);

    // Dropping our sender once every outstanding Reply clone is gone ends
    // the writer loop; in-flight jobs still hold clones, so the writer
    // stays alive until their responses flush.
    drop(frame_tx);
    let _ = writer_thread.join();
}

fn writer_loop(mut stream: TcpStream, frames: mpsc::Receiver<Vec<u8>>) {
    while let Ok(frame) = frames.recv() {
        if stream.write_all(&frame).is_err() {
            // Peer is gone: keep draining the channel so dispatch workers
            // never block on a dead connection's replies.
            for _ in frames.iter() {}
            return;
        }
    }
    let _ = stream.flush();
}

fn reader_loop(mut stream: TcpStream, shared: &Shared, frame_tx: &mpsc::Sender<Vec<u8>>) {
    let mut fb = FrameBuf::new(shared.config.max_payload);
    let mut session = Session { tenant: None };
    let in_flight = Arc::new(AtomicUsize::new(0));
    let mut read_buf = [0u8; 16 * 1024];
    let mut draining = false;
    loop {
        if shared.shutdown.load(Ordering::Acquire) && !draining {
            draining = true;
        }
        if draining && in_flight.load(Ordering::Acquire) == 0 {
            // All accepted work answered; close cleanly.
            return;
        }
        // Pull every complete frame out of the buffer before reading more.
        loop {
            match fb.next_frame() {
                Ok(Some(payload)) => {
                    if draining {
                        let corr = if payload.len() >= 8 {
                            u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"))
                        } else {
                            0
                        };
                        shed(
                            frame_tx,
                            corr,
                            ErrorCode::ShuttingDown,
                            "server is shutting down",
                        );
                        continue;
                    }
                    handle_payload(&payload, shared, &mut session, frame_tx, &in_flight);
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing violations poison the stream: one typed
                    // reject, then close. In-flight responses still flush
                    // through the writer thread.
                    shared
                        .stats
                        .protocol_rejects
                        .fetch_add(1, Ordering::Relaxed);
                    let resp = Response::Error(e.to_wire());
                    let _ = frame_tx.send(encode_frame(&resp.encode(0)));
                    return;
                }
            }
        }
        match stream.read(&mut read_buf) {
            Ok(0) => {
                if fb.pending() > 0 {
                    // Torn mid-frame disconnect: nothing to reply to
                    // (the frame never completed); just close.
                    shared
                        .stats
                        .protocol_rejects
                        .fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Ok(n) => fb.push(&read_buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Timeout tick: loop to re-check the shutdown flag.
            }
            Err(_) => return,
        }
    }
}

/// Send a typed error without touching the in-flight window.
fn shed(frame_tx: &mpsc::Sender<Vec<u8>>, correlation: u64, code: ErrorCode, msg: &str) {
    let resp = Response::Error(WireError::new(code, msg));
    let _ = frame_tx.send(encode_frame(&resp.encode(correlation)));
}

fn handle_payload(
    payload: &[u8],
    shared: &Shared,
    session: &mut Session,
    frame_tx: &mpsc::Sender<Vec<u8>>,
    in_flight: &Arc<AtomicUsize>,
) {
    let (correlation, request) = match Request::decode(payload) {
        Ok(ok) => ok,
        Err(e) => {
            // The frame was well-formed, so the stream is still in sync:
            // reject just this message, keep the connection.
            shared
                .stats
                .protocol_rejects
                .fetch_add(1, Ordering::Relaxed);
            let corr = if payload.len() >= 8 {
                u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"))
            } else {
                0
            };
            let _ = frame_tx.send(encode_frame(&Response::Error(e).encode(corr)));
            return;
        }
    };

    // Session/control requests answered inline on the reader thread.
    match &request {
        Request::Ping => {
            let resp = Response::Pong {
                max_payload: shared.config.max_payload as u64,
            };
            let _ = frame_tx.send(encode_frame(&resp.encode(correlation)));
            return;
        }
        Request::Stats => {
            let resp = Response::Stats(shared.stats.snapshot(shared.dispatcher.queue_depth()));
            let _ = frame_tx.send(encode_frame(&resp.encode(correlation)));
            return;
        }
        Request::Attach { tenant } => {
            match shared.tenants.attach(tenant) {
                Ok(t) => {
                    let name = t.name.clone();
                    session.tenant = Some(t);
                    let resp = Response::Attached { tenant: name };
                    let _ = frame_tx.send(encode_frame(&resp.encode(correlation)));
                }
                Err(e) => {
                    let _ = frame_tx.send(encode_frame(&Response::Error(e).encode(correlation)));
                }
            }
            return;
        }
        _ => {}
    }

    let Some(tenant) = session.tenant.as_ref() else {
        shed(
            frame_tx,
            correlation,
            ErrorCode::NoTenant,
            "no tenant attached: send Attach first",
        );
        return;
    };

    // Admission gate 1: the per-connection window.
    if in_flight.load(Ordering::Acquire) >= shared.config.conn_window {
        shared.stats.overloaded.fetch_add(1, Ordering::Relaxed);
        shed(
            frame_tx,
            correlation,
            ErrorCode::Overloaded,
            "per-connection in-flight window full",
        );
        return;
    }

    in_flight.fetch_add(1, Ordering::AcqRel);
    let job = Job {
        tenant: Arc::clone(tenant),
        correlation,
        request,
        reply: Reply::new(frame_tx.clone(), Arc::clone(in_flight)),
    };
    // Admission gate 2: the global queue budget (checked in submit).
    if let Err(job) = shared.dispatcher.submit(job) {
        in_flight.fetch_sub(1, Ordering::AcqRel);
        let (code, msg) = if shared.shutdown.load(Ordering::Acquire) {
            (ErrorCode::ShuttingDown, "server is shutting down")
        } else {
            (ErrorCode::Overloaded, "dispatch queue full")
        };
        shed(frame_tx, job.correlation, code, msg);
    }
}
