//! Network serving layer for the Crimson phylogenetic engine.
//!
//! This crate exposes a [`Repository`](crimson::Repository)-per-tenant
//! engine over a length-prefixed, CRC-framed binary protocol on TCP:
//!
//! * [`frame`] — the transport framing (`[magic][len][crc][payload]`) and
//!   the streaming reassembly buffer;
//! * [`msg`] — the request/response messages and their codec, with
//!   client-chosen correlation ids enabling pipelining;
//! * [`wire`] — the typed error codes every engine and protocol failure
//!   maps onto;
//! * [`tenant`] — directory-per-tenant repository namespaces, each with a
//!   single serialized writer and a shared snapshot reader;
//! * [`dispatch`] — the bounded job queue and worker pool that coalesces
//!   adjacent reads into pinned-epoch batches and routes writes through
//!   the group-commit path;
//! * [`server`] — the accept loop, per-connection threads, admission
//!   control, and graceful drain shutdown;
//! * [`client`] — the thin blocking client (synchronous or pipelined).
//!
//! See `ARCHITECTURE.md` §Server for the full protocol and state-machine
//! description.

#![warn(missing_docs)]

pub mod client;
pub mod dispatch;
pub mod frame;
pub mod msg;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientError, ClientResult};
pub use dispatch::{DispatchConfig, ServerStats};
pub use frame::{FrameBuf, FrameError, DEFAULT_MAX_PAYLOAD};
pub use msg::{Request, Response, WireDurability};
pub use server::{Server, ServerConfig};
pub use tenant::{TenantMap, TenantOptions};
pub use wire::{ErrorCode, WireError};
