//! Per-tenant repository namespaces.
//!
//! Each tenant owns one `Repository` in its own subdirectory of the server
//! root — `<root>/<tenant>/` — so tenants share nothing but the process:
//! separate WALs, separate buffer pools, separate catalogs. A tenant name
//! is restricted to a path-safe alphabet *before* it touches the
//! filesystem, which is what makes the directory-per-tenant scheme safe to
//! expose to the network.
//!
//! Concurrency model per tenant:
//!
//! * **One writer.** The `Repository` sits behind a mutex; write requests
//!   from every connection serialize through it. The writer is kept
//!   permanently in [`Durability::Async`]: the commit itself is only a log
//!   append, so the lock is held for microseconds, and the fsync happens
//!   *outside* the lock via [`RepositoryReader::wait_durable`] — which is
//!   how write requests from different connections share one group-commit
//!   fsync round instead of queueing a round each.
//! * **Many readers.** A single shared [`RepositoryReader`] serves every
//!   dispatch worker; each batch pins its own epoch. Readers never take
//!   the writer lock.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crimson::repository::{Durability, Repository, RepositoryOptions};
use crimson::RepositoryReader;
use parking_lot::Mutex;

use crate::wire::{ErrorCode, WireError};

/// Longest accepted tenant name.
pub const MAX_TENANT_NAME: usize = 64;

/// Validate a tenant name: 1–64 chars of `[A-Za-z0-9._-]`, not starting
/// with `.` or `-`. Anything else is rejected before it can touch the
/// filesystem.
pub fn validate_tenant_name(name: &str) -> Result<(), WireError> {
    let bad = |why: &str| {
        Err(WireError::new(
            ErrorCode::BadTenantName,
            format!("invalid tenant name {name:?}: {why}"),
        ))
    };
    if name.is_empty() {
        return bad("empty");
    }
    if name.len() > MAX_TENANT_NAME {
        return bad("longer than 64 bytes");
    }
    if name.starts_with('.') || name.starts_with('-') {
        return bad("must not start with '.' or '-'");
    }
    if !name
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
    {
        return bad("only [A-Za-z0-9._-] allowed");
    }
    Ok(())
}

/// One tenant: a repository directory, its serialized writer, and the
/// shared snapshot reader the dispatch pool executes against.
pub struct Tenant {
    /// Tenant name (validated).
    pub name: String,
    /// The single writer. Hold this lock only for the commit itself;
    /// durability waits happen on `reader` after release.
    pub writer: Mutex<Repository>,
    /// Shared snapshot reader (epoch pinning happens per batch).
    pub reader: RepositoryReader,
    /// Highest async-commit LSN acknowledged to any client of this tenant;
    /// the [`crate::msg::Request::WaitDurable`] barrier flushes to this.
    max_async_lsn: AtomicU64,
}

impl Tenant {
    /// Record an acknowledged async commit so a later durability barrier
    /// covers it.
    pub fn note_async_commit(&self, lsn: u64) {
        self.max_async_lsn.fetch_max(lsn, Ordering::AcqRel);
    }

    /// The LSN a durability barrier must flush to.
    pub fn barrier_lsn(&self) -> u64 {
        self.max_async_lsn.load(Ordering::Acquire)
    }
}

/// Options every tenant repository is opened with.
#[derive(Debug, Clone)]
pub struct TenantOptions {
    /// Forwarded to [`RepositoryOptions`].
    pub frame_depth: usize,
    /// Forwarded to [`RepositoryOptions`].
    pub buffer_pool_pages: usize,
    /// Whether [`TenantMap::attach`] may create missing tenants.
    pub create_missing: bool,
}

impl Default for TenantOptions {
    fn default() -> Self {
        TenantOptions {
            frame_depth: 16,
            buffer_pool_pages: 4096,
            create_missing: true,
        }
    }
}

/// The directory-per-tenant namespace over a server root.
pub struct TenantMap {
    root: PathBuf,
    options: TenantOptions,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
}

impl TenantMap {
    /// A tenant map rooted at `root` (created if missing).
    pub fn new(root: impl Into<PathBuf>, options: TenantOptions) -> std::io::Result<TenantMap> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(TenantMap {
            root,
            options,
            tenants: Mutex::new(HashMap::new()),
        })
    }

    /// The tenants currently open.
    pub fn open_tenants(&self) -> Vec<Arc<Tenant>> {
        self.tenants.lock().values().cloned().collect()
    }

    /// Resolve (opening or creating the repository as needed) the tenant
    /// for an `Attach` request.
    pub fn attach(&self, name: &str) -> Result<Arc<Tenant>, WireError> {
        validate_tenant_name(name)?;
        let mut map = self.tenants.lock();
        if let Some(t) = map.get(name) {
            return Ok(Arc::clone(t));
        }
        let dir = self.root.join(name);
        let exists = dir.join("crimson.db").exists() || dir.exists();
        if !exists && !self.options.create_missing {
            return Err(WireError::new(
                ErrorCode::UnknownTenant,
                format!("tenant {name:?} does not exist and creation is disabled"),
            ));
        }
        // The writer lives in Durability::Async permanently: per-request
        // Sync semantics are implemented by waiting on the durable-LSN
        // watermark *after* the writer lock is released (see dispatch).
        let repo_options = RepositoryOptions {
            frame_depth: self.options.frame_depth,
            buffer_pool_pages: self.options.buffer_pool_pages,
            durability: Durability::Async,
            checkpoint: None,
        };
        let open = |opts: RepositoryOptions| {
            if exists {
                Repository::open(&dir, opts)
            } else {
                Repository::create(&dir, opts)
            }
        };
        let repo = open(repo_options).map_err(|e| WireError::from(&e))?;
        let reader = repo.reader().map_err(|e| WireError::from(&e))?;
        let tenant = Arc::new(Tenant {
            name: name.to_string(),
            writer: Mutex::new(repo),
            reader,
            max_async_lsn: AtomicU64::new(0),
        });
        map.insert(name.to_string(), Arc::clone(&tenant));
        Ok(tenant)
    }

    /// Look up an already-open tenant without creating it.
    pub fn get(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_names_are_path_safe() {
        for ok in ["a", "alpha", "team-1", "x.y_z", "A0"] {
            assert!(validate_tenant_name(ok).is_ok(), "{ok} should be valid");
        }
        for bad in [
            "",
            ".hidden",
            "-flag",
            "a/b",
            "a\\b",
            "..",
            "a b",
            "t\u{e9}l\u{e9}",
            &"x".repeat(65),
        ] {
            let err = validate_tenant_name(bad).expect_err("must reject");
            assert_eq!(err.code, ErrorCode::BadTenantName, "{bad:?}");
        }
    }

    #[test]
    fn attach_creates_and_reuses() {
        let dir = tempfile::tempdir().unwrap();
        let map = TenantMap::new(dir.path(), TenantOptions::default()).unwrap();
        let a1 = map.attach("alpha").unwrap();
        let a2 = map.attach("alpha").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert!(map.get("beta").is_none());
        let b = map.attach("beta").unwrap();
        assert!(!Arc::ptr_eq(&a1, &b));
    }

    #[test]
    fn attach_respects_create_missing() {
        let dir = tempfile::tempdir().unwrap();
        let map = TenantMap::new(
            dir.path(),
            TenantOptions {
                create_missing: false,
                ..TenantOptions::default()
            },
        )
        .unwrap();
        let err = match map.attach("ghost") {
            Err(e) => e,
            Ok(_) => panic!("must reject"),
        };
        assert_eq!(err.code, ErrorCode::UnknownTenant);
    }
}
