//! Request/response messages and their binary codec.
//!
//! A frame payload is `[correlation u64][tag u8][body…]`, all little-endian.
//! The correlation id is chosen by the client and echoed verbatim in the
//! response, which is what makes pipelining work: a connection may have many
//! requests in flight and responses may return out of submission order
//! (reads overtake a slow write, batch peers complete together).
//!
//! Strings are `u32` length + UTF-8 bytes; vectors are `u32` count +
//! elements; `f64` travels as its IEEE-754 bit pattern. Decoding is strictly
//! bounds-checked: a truncated or trailing-garbage body yields a typed
//! [`ErrorCode::BadMessage`] reject, never a panic, and never desynchronises
//! the connection (framing already isolated the payload).

use crate::wire::{ErrorCode, WireError};

/// Per-request durability of a write, mirroring
/// [`crimson::repository::Durability`] on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireDurability {
    /// The response is sent only after the commit is fsync-durable.
    #[default]
    Sync,
    /// The response is sent at log-append time; pair with
    /// [`Request::WaitDurable`] before disconnect.
    Async,
}

/// One sampling strategy in a wire experiment spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireStrategy {
    /// Uniform sample of `k` species.
    Uniform {
        /// Sample size.
        k: u32,
    },
    /// Time-respecting sample of `k` species at evolutionary time `time`.
    TimeRespecting {
        /// Evolutionary time of the sampling frontier.
        time: f64,
        /// Sample size.
        k: u32,
    },
}

/// A reconstruction method selector on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMethod {
    /// UPGMA clustering.
    Upgma,
    /// Neighbor-Joining.
    NeighborJoining,
}

/// The experiment sweep a [`Request::RunExperiment`] asks for.
#[derive(Debug, Clone, PartialEq)]
pub struct WireExperimentSpec {
    /// Unique experiment name within the tenant.
    pub name: String,
    /// Name of the stored gold-standard tree to evaluate against.
    pub gold: String,
    /// Methods under evaluation.
    pub methods: Vec<WireMethod>,
    /// Sampling strategies of the grid.
    pub strategies: Vec<WireStrategy>,
    /// Replicates per (method, strategy) cell.
    pub replicates: u32,
    /// Root seed.
    pub seed: u64,
    /// Requested evaluation workers (the server clamps).
    pub workers: u32,
    /// Whether to compute triplet distances.
    pub compute_triplets: bool,
}

/// A client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; also reports the server's protocol limits.
    Ping,
    /// Bind this session to a tenant namespace (creating it if the server
    /// allows). Subsequent requests address this tenant until the next
    /// attach.
    Attach {
        /// Path-safe tenant name.
        tenant: String,
    },
    /// Load a Newick tree under a unique name (write).
    LoadTree {
        /// Tree name in the tenant's catalog.
        name: String,
        /// Newick source text.
        newick: String,
        /// When to acknowledge: after fsync, or at log append.
        durability: WireDurability,
    },
    /// All trees in the tenant's catalog.
    ListTrees,
    /// Look up a tree by name.
    TreeByName {
        /// Catalog name.
        name: String,
    },
    /// All leaf node ids of a tree.
    Leaves {
        /// Tree handle.
        tree: u64,
    },
    /// Least common ancestor of two stored nodes.
    Lca {
        /// First node.
        a: u64,
        /// Second node.
        b: u64,
    },
    /// Ancestor-or-self test.
    IsAncestor {
        /// Candidate ancestor.
        ancestor: u64,
        /// Candidate descendant.
        node: u64,
    },
    /// Minimal spanning clade of a node set, in pre-order.
    SpanningClade {
        /// The spanned nodes.
        nodes: Vec<u64>,
    },
    /// Projection of a tree onto a leaf selection, returned as Newick.
    Project {
        /// Tree handle.
        tree: u64,
        /// Selected leaves.
        leaves: Vec<u64>,
    },
    /// Uniform random sample of `k` leaves (deterministic per seed).
    SampleUniform {
        /// Tree handle.
        tree: u64,
        /// Sample size.
        k: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Index-native comparison of two stored trees.
    CompareStored {
        /// Reference tree.
        a: u64,
        /// Comparison tree.
        b: u64,
        /// Also compute the cubic triplet distance.
        triplets: bool,
    },
    /// Run a persisted experiment sweep (write; may take a while).
    RunExperiment {
        /// The sweep grid.
        spec: WireExperimentSpec,
    },
    /// Durability barrier: block until every write acknowledged on this
    /// tenant (by any session) is fsync-durable.
    WaitDurable,
    /// Cross-table invariant check over the committed snapshot.
    IntegrityCheck,
    /// Server dispatch/admission statistics (admin; not tenant-scoped).
    Stats,
}

/// Catalog summary of one stored tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireTree {
    /// Tree handle.
    pub id: u64,
    /// Catalog name.
    pub name: String,
    /// Number of leaves.
    pub leaf_count: u64,
}

/// Robinson–Foulds numbers of one comparison side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireRf {
    /// Splits in exactly one tree.
    pub distance: u64,
    /// Maximum possible distance.
    pub max_distance: u64,
    /// Shared splits.
    pub shared: u64,
    /// `distance / max_distance`.
    pub normalized: f64,
}

/// The comparison report of [`Request::CompareStored`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireComparison {
    /// Unrooted RF over bipartitions.
    pub rf: WireRf,
    /// Rooted RF over clades.
    pub rooted_rf: WireRf,
    /// Triplet distance when requested.
    pub triplet: Option<f64>,
}

/// The integrity counters of [`Request::IntegrityCheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireIntegrity {
    /// Trees in the catalog.
    pub trees: u64,
    /// Node rows.
    pub nodes: u64,
    /// Species rows.
    pub species: u64,
    /// Interval-index entries.
    pub interval_entries: u64,
    /// Experiment rows.
    pub experiments: u64,
    /// Experiment result rows.
    pub experiment_results: u64,
}

/// Server-wide dispatch and admission statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireStats {
    /// Read requests executed by the dispatch pool.
    pub reads: u64,
    /// Pinned-epoch executions the pool ran (a batch serves ≥1 read).
    pub read_batches: u64,
    /// Reads that shared their batch with at least one other read — the
    /// coalescing numerator.
    pub coalesced_reads: u64,
    /// Write requests executed.
    pub writes: u64,
    /// Requests shed with [`ErrorCode::Overloaded`].
    pub overloaded: u64,
    /// Frames rejected at the protocol layer.
    pub protocol_rejects: u64,
    /// Currently open connections.
    pub connections: u64,
    /// Current depth of the read dispatch queue.
    pub queue_depth: u64,
}

/// A server response. `Error` carries the typed code; every other variant
/// is the success payload of the matching request.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Typed failure.
    Error(WireError),
    /// Liveness reply: max payload bytes, then server version.
    Pong {
        /// The connection's frame payload ceiling.
        max_payload: u64,
    },
    /// Session is now bound to the echoed tenant.
    Attached {
        /// Tenant name.
        tenant: String,
    },
    /// A tree was loaded and committed.
    TreeLoaded {
        /// New tree handle.
        tree: u64,
        /// Leaves in the tree.
        leaves: u64,
        /// The commit's LSN (what [`Request::WaitDurable`] flushes to).
        commit_lsn: u64,
    },
    /// Catalog listing.
    Trees(Vec<WireTree>),
    /// Single catalog row.
    Tree(WireTree),
    /// A set of stored node ids.
    Nodes(Vec<u64>),
    /// A single stored node id.
    Node(u64),
    /// A boolean reply.
    Flag(bool),
    /// A Newick-serialized tree.
    Newick(String),
    /// A comparison report.
    Comparison(WireComparison),
    /// A persisted experiment summary.
    Experiment {
        /// Experiment id.
        id: u64,
        /// Grid cells persisted.
        runs: u64,
        /// Sweep wall-clock milliseconds.
        wall_ms: f64,
    },
    /// The durability barrier completed up to this LSN.
    Durable {
        /// Durable LSN.
        lsn: u64,
    },
    /// Integrity counters.
    Integrity(WireIntegrity),
    /// Server statistics.
    Stats(WireStats),
}

// ---------------------------------------------------------------------
// Codec plumbing
// ---------------------------------------------------------------------

/// Reason a payload failed to decode (reported as
/// [`ErrorCode::BadMessage`]).
pub type DecodeError = WireError;

fn bad(msg: impl Into<String>) -> DecodeError {
    WireError::new(ErrorCode::BadMessage, msg)
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.buf.len() - self.pos < n {
            return Err(bad(format!(
                "truncated message: needed {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn flag(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(bad(format!("invalid boolean byte {v}"))),
        }
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| bad(format!("invalid UTF-8 string: {e}")))
    }

    fn vec_u64(&mut self) -> Result<Vec<u64>, DecodeError> {
        let n = self.u32()? as usize;
        // The count is attacker-controlled: bound the pre-allocation by
        // what the payload could actually hold.
        if self.buf.len() - self.pos < n * 8 {
            return Err(bad(format!("u64 vector of {n} overruns the payload")));
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u64()?);
        }
        Ok(v)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos != self.buf.len() {
            return Err(bad(format!(
                "{} trailing bytes after message body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_vec_u64(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for x in v {
        put_u64(out, *x);
    }
}

// Request tags.
const REQ_PING: u8 = 1;
const REQ_ATTACH: u8 = 2;
const REQ_LOAD_TREE: u8 = 3;
const REQ_LIST_TREES: u8 = 4;
const REQ_TREE_BY_NAME: u8 = 5;
const REQ_LEAVES: u8 = 6;
const REQ_LCA: u8 = 7;
const REQ_IS_ANCESTOR: u8 = 8;
const REQ_SPANNING_CLADE: u8 = 9;
const REQ_PROJECT: u8 = 10;
const REQ_SAMPLE_UNIFORM: u8 = 11;
const REQ_COMPARE_STORED: u8 = 12;
const REQ_RUN_EXPERIMENT: u8 = 13;
const REQ_WAIT_DURABLE: u8 = 14;
const REQ_INTEGRITY_CHECK: u8 = 15;
const REQ_STATS: u8 = 16;

// Response tags.
const RESP_ERROR: u8 = 0;
const RESP_PONG: u8 = 1;
const RESP_ATTACHED: u8 = 2;
const RESP_TREE_LOADED: u8 = 3;
const RESP_TREES: u8 = 4;
const RESP_TREE: u8 = 5;
const RESP_NODES: u8 = 6;
const RESP_NODE: u8 = 7;
const RESP_FLAG: u8 = 8;
const RESP_NEWICK: u8 = 9;
const RESP_COMPARISON: u8 = 10;
const RESP_EXPERIMENT: u8 = 11;
const RESP_DURABLE: u8 = 12;
const RESP_INTEGRITY: u8 = 13;
const RESP_STATS: u8 = 14;

impl Request {
    /// `true` for requests the dispatch pool executes against a shared
    /// snapshot reader; `false` for writes and session/control traffic.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Request::ListTrees
                | Request::TreeByName { .. }
                | Request::Leaves { .. }
                | Request::Lca { .. }
                | Request::IsAncestor { .. }
                | Request::SpanningClade { .. }
                | Request::Project { .. }
                | Request::SampleUniform { .. }
                | Request::CompareStored { .. }
                | Request::IntegrityCheck
        )
    }

    /// Encode a full frame payload: correlation id + tagged body.
    pub fn encode(&self, correlation: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, correlation);
        match self {
            Request::Ping => out.push(REQ_PING),
            Request::Attach { tenant } => {
                out.push(REQ_ATTACH);
                put_str(&mut out, tenant);
            }
            Request::LoadTree {
                name,
                newick,
                durability,
            } => {
                out.push(REQ_LOAD_TREE);
                put_str(&mut out, name);
                put_str(&mut out, newick);
                out.push(match durability {
                    WireDurability::Sync => 0,
                    WireDurability::Async => 1,
                });
            }
            Request::ListTrees => out.push(REQ_LIST_TREES),
            Request::TreeByName { name } => {
                out.push(REQ_TREE_BY_NAME);
                put_str(&mut out, name);
            }
            Request::Leaves { tree } => {
                out.push(REQ_LEAVES);
                put_u64(&mut out, *tree);
            }
            Request::Lca { a, b } => {
                out.push(REQ_LCA);
                put_u64(&mut out, *a);
                put_u64(&mut out, *b);
            }
            Request::IsAncestor { ancestor, node } => {
                out.push(REQ_IS_ANCESTOR);
                put_u64(&mut out, *ancestor);
                put_u64(&mut out, *node);
            }
            Request::SpanningClade { nodes } => {
                out.push(REQ_SPANNING_CLADE);
                put_vec_u64(&mut out, nodes);
            }
            Request::Project { tree, leaves } => {
                out.push(REQ_PROJECT);
                put_u64(&mut out, *tree);
                put_vec_u64(&mut out, leaves);
            }
            Request::SampleUniform { tree, k, seed } => {
                out.push(REQ_SAMPLE_UNIFORM);
                put_u64(&mut out, *tree);
                put_u32(&mut out, *k);
                put_u64(&mut out, *seed);
            }
            Request::CompareStored { a, b, triplets } => {
                out.push(REQ_COMPARE_STORED);
                put_u64(&mut out, *a);
                put_u64(&mut out, *b);
                out.push(*triplets as u8);
            }
            Request::RunExperiment { spec } => {
                out.push(REQ_RUN_EXPERIMENT);
                put_str(&mut out, &spec.name);
                put_str(&mut out, &spec.gold);
                put_u32(&mut out, spec.methods.len() as u32);
                for m in &spec.methods {
                    out.push(match m {
                        WireMethod::Upgma => 0,
                        WireMethod::NeighborJoining => 1,
                    });
                }
                put_u32(&mut out, spec.strategies.len() as u32);
                for s in &spec.strategies {
                    match s {
                        WireStrategy::Uniform { k } => {
                            out.push(0);
                            put_u32(&mut out, *k);
                        }
                        WireStrategy::TimeRespecting { time, k } => {
                            out.push(1);
                            put_f64(&mut out, *time);
                            put_u32(&mut out, *k);
                        }
                    }
                }
                put_u32(&mut out, spec.replicates);
                put_u64(&mut out, spec.seed);
                put_u32(&mut out, spec.workers);
                out.push(spec.compute_triplets as u8);
            }
            Request::WaitDurable => out.push(REQ_WAIT_DURABLE),
            Request::IntegrityCheck => out.push(REQ_INTEGRITY_CHECK),
            Request::Stats => out.push(REQ_STATS),
        }
        out
    }

    /// Decode a full frame payload into `(correlation, request)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Request), DecodeError> {
        let mut r = Reader::new(payload);
        let correlation = r.u64()?;
        let tag = r.u8()?;
        let req = match tag {
            REQ_PING => Request::Ping,
            REQ_ATTACH => Request::Attach { tenant: r.str()? },
            REQ_LOAD_TREE => {
                let name = r.str()?;
                let newick = r.str()?;
                let durability = match r.u8()? {
                    0 => WireDurability::Sync,
                    1 => WireDurability::Async,
                    v => return Err(bad(format!("invalid durability byte {v}"))),
                };
                Request::LoadTree {
                    name,
                    newick,
                    durability,
                }
            }
            REQ_LIST_TREES => Request::ListTrees,
            REQ_TREE_BY_NAME => Request::TreeByName { name: r.str()? },
            REQ_LEAVES => Request::Leaves { tree: r.u64()? },
            REQ_LCA => Request::Lca {
                a: r.u64()?,
                b: r.u64()?,
            },
            REQ_IS_ANCESTOR => Request::IsAncestor {
                ancestor: r.u64()?,
                node: r.u64()?,
            },
            REQ_SPANNING_CLADE => Request::SpanningClade {
                nodes: r.vec_u64()?,
            },
            REQ_PROJECT => Request::Project {
                tree: r.u64()?,
                leaves: r.vec_u64()?,
            },
            REQ_SAMPLE_UNIFORM => Request::SampleUniform {
                tree: r.u64()?,
                k: r.u32()?,
                seed: r.u64()?,
            },
            REQ_COMPARE_STORED => Request::CompareStored {
                a: r.u64()?,
                b: r.u64()?,
                triplets: r.flag()?,
            },
            REQ_RUN_EXPERIMENT => {
                let name = r.str()?;
                let gold = r.str()?;
                let n_methods = r.u32()? as usize;
                if n_methods > 16 {
                    return Err(bad(format!("{n_methods} methods in experiment spec")));
                }
                let mut methods = Vec::with_capacity(n_methods);
                for _ in 0..n_methods {
                    methods.push(match r.u8()? {
                        0 => WireMethod::Upgma,
                        1 => WireMethod::NeighborJoining,
                        v => return Err(bad(format!("invalid method byte {v}"))),
                    });
                }
                let n_strategies = r.u32()? as usize;
                if n_strategies > 64 {
                    return Err(bad(format!("{n_strategies} strategies in experiment spec")));
                }
                let mut strategies = Vec::with_capacity(n_strategies);
                for _ in 0..n_strategies {
                    strategies.push(match r.u8()? {
                        0 => WireStrategy::Uniform { k: r.u32()? },
                        1 => WireStrategy::TimeRespecting {
                            time: r.f64()?,
                            k: r.u32()?,
                        },
                        v => return Err(bad(format!("invalid strategy byte {v}"))),
                    });
                }
                Request::RunExperiment {
                    spec: WireExperimentSpec {
                        name,
                        gold,
                        methods,
                        strategies,
                        replicates: r.u32()?,
                        seed: r.u64()?,
                        workers: r.u32()?,
                        compute_triplets: r.flag()?,
                    },
                }
            }
            REQ_WAIT_DURABLE => Request::WaitDurable,
            REQ_INTEGRITY_CHECK => Request::IntegrityCheck,
            REQ_STATS => Request::Stats,
            other => return Err(bad(format!("unknown request opcode {other}"))),
        };
        r.finish()?;
        Ok((correlation, req))
    }
}

fn put_rf(out: &mut Vec<u8>, rf: &WireRf) {
    put_u64(out, rf.distance);
    put_u64(out, rf.max_distance);
    put_u64(out, rf.shared);
    put_f64(out, rf.normalized);
}

fn get_rf(r: &mut Reader<'_>) -> Result<WireRf, DecodeError> {
    Ok(WireRf {
        distance: r.u64()?,
        max_distance: r.u64()?,
        shared: r.u64()?,
        normalized: r.f64()?,
    })
}

impl Response {
    /// Encode a full frame payload: correlation id + tagged body.
    pub fn encode(&self, correlation: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        put_u64(&mut out, correlation);
        match self {
            Response::Error(e) => {
                out.push(RESP_ERROR);
                put_u16(&mut out, e.code.as_u16());
                put_str(&mut out, &e.message);
            }
            Response::Pong { max_payload } => {
                out.push(RESP_PONG);
                put_u64(&mut out, *max_payload);
            }
            Response::Attached { tenant } => {
                out.push(RESP_ATTACHED);
                put_str(&mut out, tenant);
            }
            Response::TreeLoaded {
                tree,
                leaves,
                commit_lsn,
            } => {
                out.push(RESP_TREE_LOADED);
                put_u64(&mut out, *tree);
                put_u64(&mut out, *leaves);
                put_u64(&mut out, *commit_lsn);
            }
            Response::Trees(trees) => {
                out.push(RESP_TREES);
                put_u32(&mut out, trees.len() as u32);
                for t in trees {
                    put_u64(&mut out, t.id);
                    put_str(&mut out, &t.name);
                    put_u64(&mut out, t.leaf_count);
                }
            }
            Response::Tree(t) => {
                out.push(RESP_TREE);
                put_u64(&mut out, t.id);
                put_str(&mut out, &t.name);
                put_u64(&mut out, t.leaf_count);
            }
            Response::Nodes(nodes) => {
                out.push(RESP_NODES);
                put_vec_u64(&mut out, nodes);
            }
            Response::Node(n) => {
                out.push(RESP_NODE);
                put_u64(&mut out, *n);
            }
            Response::Flag(f) => {
                out.push(RESP_FLAG);
                out.push(*f as u8);
            }
            Response::Newick(s) => {
                out.push(RESP_NEWICK);
                put_str(&mut out, s);
            }
            Response::Comparison(c) => {
                out.push(RESP_COMPARISON);
                put_rf(&mut out, &c.rf);
                put_rf(&mut out, &c.rooted_rf);
                match c.triplet {
                    None => out.push(0),
                    Some(t) => {
                        out.push(1);
                        put_f64(&mut out, t);
                    }
                }
            }
            Response::Experiment { id, runs, wall_ms } => {
                out.push(RESP_EXPERIMENT);
                put_u64(&mut out, *id);
                put_u64(&mut out, *runs);
                put_f64(&mut out, *wall_ms);
            }
            Response::Durable { lsn } => {
                out.push(RESP_DURABLE);
                put_u64(&mut out, *lsn);
            }
            Response::Integrity(i) => {
                out.push(RESP_INTEGRITY);
                put_u64(&mut out, i.trees);
                put_u64(&mut out, i.nodes);
                put_u64(&mut out, i.species);
                put_u64(&mut out, i.interval_entries);
                put_u64(&mut out, i.experiments);
                put_u64(&mut out, i.experiment_results);
            }
            Response::Stats(s) => {
                out.push(RESP_STATS);
                put_u64(&mut out, s.reads);
                put_u64(&mut out, s.read_batches);
                put_u64(&mut out, s.coalesced_reads);
                put_u64(&mut out, s.writes);
                put_u64(&mut out, s.overloaded);
                put_u64(&mut out, s.protocol_rejects);
                put_u64(&mut out, s.connections);
                put_u64(&mut out, s.queue_depth);
            }
        }
        out
    }

    /// Decode a full frame payload into `(correlation, response)`.
    pub fn decode(payload: &[u8]) -> Result<(u64, Response), DecodeError> {
        let mut r = Reader::new(payload);
        let correlation = r.u64()?;
        let tag = r.u8()?;
        let resp = match tag {
            RESP_ERROR => {
                let code = crate::wire::ErrorCode::from_u16(r.u16()?);
                let message = r.str()?;
                Response::Error(WireError { code, message })
            }
            RESP_PONG => Response::Pong {
                max_payload: r.u64()?,
            },
            RESP_ATTACHED => Response::Attached { tenant: r.str()? },
            RESP_TREE_LOADED => Response::TreeLoaded {
                tree: r.u64()?,
                leaves: r.u64()?,
                commit_lsn: r.u64()?,
            },
            RESP_TREES => {
                let n = r.u32()? as usize;
                if n > 1_000_000 {
                    return Err(bad(format!("{n} trees in listing")));
                }
                let mut trees = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    trees.push(WireTree {
                        id: r.u64()?,
                        name: r.str()?,
                        leaf_count: r.u64()?,
                    });
                }
                Response::Trees(trees)
            }
            RESP_TREE => Response::Tree(WireTree {
                id: r.u64()?,
                name: r.str()?,
                leaf_count: r.u64()?,
            }),
            RESP_NODES => Response::Nodes(r.vec_u64()?),
            RESP_NODE => Response::Node(r.u64()?),
            RESP_FLAG => Response::Flag(r.flag()?),
            RESP_NEWICK => Response::Newick(r.str()?),
            RESP_COMPARISON => {
                let rf = get_rf(&mut r)?;
                let rooted_rf = get_rf(&mut r)?;
                let triplet = if r.flag()? { Some(r.f64()?) } else { None };
                Response::Comparison(WireComparison {
                    rf,
                    rooted_rf,
                    triplet,
                })
            }
            RESP_EXPERIMENT => Response::Experiment {
                id: r.u64()?,
                runs: r.u64()?,
                wall_ms: r.f64()?,
            },
            RESP_DURABLE => Response::Durable { lsn: r.u64()? },
            RESP_INTEGRITY => Response::Integrity(WireIntegrity {
                trees: r.u64()?,
                nodes: r.u64()?,
                species: r.u64()?,
                interval_entries: r.u64()?,
                experiments: r.u64()?,
                experiment_results: r.u64()?,
            }),
            RESP_STATS => Response::Stats(WireStats {
                reads: r.u64()?,
                read_batches: r.u64()?,
                coalesced_reads: r.u64()?,
                writes: r.u64()?,
                overloaded: r.u64()?,
                protocol_rejects: r.u64()?,
                connections: r.u64()?,
                queue_depth: r.u64()?,
            }),
            other => return Err(bad(format!("unknown response opcode {other}"))),
        };
        r.finish()?;
        Ok((correlation, resp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let payload = req.encode(0xDEAD_BEEF_0000_0001);
        let (corr, back) = Request::decode(&payload).expect("decode");
        assert_eq!(corr, 0xDEAD_BEEF_0000_0001);
        assert_eq!(back, req);
    }

    fn round_trip_resp(resp: Response) {
        let payload = resp.encode(42);
        let (corr, back) = Response::decode(&payload).expect("decode");
        assert_eq!(corr, 42);
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Ping);
        round_trip_req(Request::Attach {
            tenant: "alpha".into(),
        });
        round_trip_req(Request::LoadTree {
            name: "t1".into(),
            newick: "((A:1,B:1):1,C:2);".into(),
            durability: WireDurability::Async,
        });
        round_trip_req(Request::ListTrees);
        round_trip_req(Request::TreeByName { name: "t1".into() });
        round_trip_req(Request::Leaves { tree: 7 });
        round_trip_req(Request::Lca { a: 1, b: 2 });
        round_trip_req(Request::IsAncestor {
            ancestor: 3,
            node: 4,
        });
        round_trip_req(Request::SpanningClade {
            nodes: vec![1, 2, 3, u64::MAX],
        });
        round_trip_req(Request::Project {
            tree: 9,
            leaves: vec![5, 6],
        });
        round_trip_req(Request::SampleUniform {
            tree: 9,
            k: 16,
            seed: 77,
        });
        round_trip_req(Request::CompareStored {
            a: 1,
            b: 2,
            triplets: true,
        });
        round_trip_req(Request::RunExperiment {
            spec: WireExperimentSpec {
                name: "sweep".into(),
                gold: "gold".into(),
                methods: vec![WireMethod::Upgma, WireMethod::NeighborJoining],
                strategies: vec![
                    WireStrategy::Uniform { k: 12 },
                    WireStrategy::TimeRespecting { time: 1e6, k: 8 },
                ],
                replicates: 3,
                seed: 42,
                workers: 4,
                compute_triplets: false,
            },
        });
        round_trip_req(Request::WaitDurable);
        round_trip_req(Request::IntegrityCheck);
        round_trip_req(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Error(WireError::new(
            crate::wire::ErrorCode::Overloaded,
            "queue full",
        )));
        round_trip_resp(Response::Pong { max_payload: 8192 });
        round_trip_resp(Response::Attached {
            tenant: "beta".into(),
        });
        round_trip_resp(Response::TreeLoaded {
            tree: 3,
            leaves: 100,
            commit_lsn: 555,
        });
        round_trip_resp(Response::Trees(vec![WireTree {
            id: 1,
            name: "a".into(),
            leaf_count: 10,
        }]));
        round_trip_resp(Response::Nodes(vec![9, 8, 7]));
        round_trip_resp(Response::Node(11));
        round_trip_resp(Response::Flag(true));
        round_trip_resp(Response::Newick("(A,B);".into()));
        round_trip_resp(Response::Comparison(WireComparison {
            rf: WireRf {
                distance: 4,
                max_distance: 10,
                shared: 6,
                normalized: 0.4,
            },
            rooted_rf: WireRf {
                distance: 0,
                max_distance: 0,
                shared: 0,
                normalized: 0.0,
            },
            triplet: Some(0.25),
        }));
        round_trip_resp(Response::Experiment {
            id: 1,
            runs: 18,
            wall_ms: 12.5,
        });
        round_trip_resp(Response::Durable { lsn: 999 });
        round_trip_resp(Response::Integrity(WireIntegrity {
            trees: 2,
            nodes: 30,
            species: 10,
            interval_entries: 30,
            experiments: 1,
            experiment_results: 18,
        }));
        round_trip_resp(Response::Stats(WireStats {
            reads: 100,
            read_batches: 10,
            coalesced_reads: 90,
            writes: 5,
            overloaded: 1,
            protocol_rejects: 0,
            connections: 8,
            queue_depth: 3,
        }));
    }

    #[test]
    fn truncated_and_trailing_bytes_are_typed_rejects() {
        let payload = Request::Lca { a: 1, b: 2 }.encode(5);
        for cut in 1..payload.len() {
            let err = Request::decode(&payload[..cut]).expect_err("truncation must fail");
            assert_eq!(err.code, crate::wire::ErrorCode::BadMessage);
        }
        let mut extended = payload.clone();
        extended.push(0);
        let err = Request::decode(&extended).expect_err("trailing bytes must fail");
        assert_eq!(err.code, crate::wire::ErrorCode::BadMessage);
    }

    #[test]
    fn unknown_opcode_is_typed() {
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.push(250);
        let err = Request::decode(&payload).expect_err("unknown opcode");
        assert_eq!(err.code, crate::wire::ErrorCode::BadMessage);
    }
}
