//! Satellite: hostile and broken byte streams. Every case must end in a
//! typed reject or a clean close — never a hang, never a server panic, and
//! never a poisoned server (a fresh connection always works afterwards).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crimson_server::frame::{encode_frame, FrameBuf, DEFAULT_MAX_PAYLOAD, MAGIC};
use crimson_server::msg::{Request, Response};
use crimson_server::server::{Server, ServerConfig};
use crimson_server::wire::ErrorCode;
use crimson_server::Client;

fn start_server() -> (Server, tempfile::TempDir) {
    let dir = tempfile::tempdir().unwrap();
    let server = Server::start(ServerConfig::default(), dir.path()).unwrap();
    (server, dir)
}

/// Read frames from a raw socket until one decodes, EOF, or timeout.
/// Returns `None` on clean EOF.
fn read_response(stream: &mut TcpStream) -> Option<(u64, Response)> {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut fb = FrameBuf::new(DEFAULT_MAX_PAYLOAD);
    let mut buf = [0u8; 4096];
    loop {
        if let Some(payload) = fb.next_frame().expect("server frames are always valid") {
            return Some(Response::decode(&payload).expect("server payloads always decode"));
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => fb.push(&buf[..n]),
            Err(e) => panic!("read timed out or failed: {e}"),
        }
    }
}

/// Garbage at the frame boundary: typed BadFrame reject, then close.
#[test]
fn garbage_bytes_get_typed_reject_then_close() {
    let (server, _dir) = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    match read_response(&mut s) {
        Some((_, Response::Error(e))) => {
            assert_eq!(e.code, ErrorCode::BadFrame);
            assert!(e.code.closes_connection());
        }
        other => panic!("expected BadFrame, got {other:?}"),
    }
    // And the stream then closes cleanly.
    assert!(read_response(&mut s).is_none(), "server must close");
    server.shutdown();
}

/// An oversized length prefix: typed FrameTooLarge before any payload is
/// accepted.
#[test]
fn oversized_frame_rejected_up_front() {
    let (server, _dir) = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&MAGIC.to_le_bytes());
    hdr.extend_from_slice(&(u32::MAX).to_le_bytes());
    hdr.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&hdr).unwrap();
    match read_response(&mut s) {
        Some((_, Response::Error(e))) => assert_eq!(e.code, ErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    assert!(read_response(&mut s).is_none(), "server must close");
    server.shutdown();
}

/// A corrupted payload (CRC mismatch): typed BadFrame, then close.
#[test]
fn corrupt_crc_rejected() {
    let (server, _dir) = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut frame = encode_frame(&Request::Ping.encode(1));
    let n = frame.len();
    frame[n - 1] ^= 0x40;
    s.write_all(&frame).unwrap();
    match read_response(&mut s) {
        Some((_, Response::Error(e))) => assert_eq!(e.code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    server.shutdown();
}

/// A valid frame whose body is not a known request: typed BadMessage with
/// the sender's correlation id, and the connection SURVIVES.
#[test]
fn unknown_opcode_keeps_connection() {
    let (server, _dir) = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut payload = Vec::new();
    payload.extend_from_slice(&77u64.to_le_bytes());
    payload.push(250); // unknown opcode
    s.write_all(&encode_frame(&payload)).unwrap();
    match read_response(&mut s) {
        Some((corr, Response::Error(e))) => {
            assert_eq!(corr, 77);
            assert_eq!(e.code, ErrorCode::BadMessage);
            assert!(!e.code.closes_connection());
        }
        other => panic!("expected BadMessage, got {other:?}"),
    }
    // Same socket still answers a real request.
    s.write_all(&encode_frame(&Request::Ping.encode(78)))
        .unwrap();
    match read_response(&mut s) {
        Some((78, Response::Pong { .. })) => {}
        other => panic!("expected Pong after recovery, got {other:?}"),
    }
    server.shutdown();
}

/// A truncated body inside a valid frame: typed BadMessage, connection
/// survives.
#[test]
fn truncated_body_keeps_connection() {
    let (server, _dir) = start_server();
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let full = Request::Lca { a: 1, b: 2 }.encode(9);
    s.write_all(&encode_frame(&full[..full.len() - 3])).unwrap();
    match read_response(&mut s) {
        Some((9, Response::Error(e))) => assert_eq!(e.code, ErrorCode::BadMessage),
        other => panic!("expected BadMessage, got {other:?}"),
    }
    s.write_all(&encode_frame(&Request::Ping.encode(10)))
        .unwrap();
    match read_response(&mut s) {
        Some((10, Response::Pong { .. })) => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    server.shutdown();
}

/// Disconnecting mid-frame: the server just closes its side; the next
/// connection is unaffected.
#[test]
fn torn_mid_frame_disconnect_is_clean() {
    let (server, _dir) = start_server();
    for cut in [1usize, 6, 11, 14] {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        let frame = encode_frame(&Request::Ping.encode(1));
        s.write_all(&frame[..cut.min(frame.len() - 1)]).unwrap();
        drop(s); // torn disconnect
    }
    // Server is alive and correct afterwards.
    let mut client = Client::connect(server.addr()).unwrap();
    match client.call(&Request::Ping).unwrap() {
        Response::Pong { .. } => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    server.shutdown();
}

/// Fuzz feeder: deterministic pseudo-random byte salads. Every connection
/// must end in either a typed error response or a clean close within the
/// timeout — and the server must keep serving fresh connections.
#[test]
fn random_byte_fuzz_never_hangs() {
    let (server, _dir) = start_server();
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        // splitmix64 — deterministic, dependency-free.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for round in 0..24 {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let len = 1 + (next() % 512) as usize;
        let mut bytes = Vec::with_capacity(len);
        for _ in 0..len {
            bytes.push(next() as u8);
        }
        // Half the rounds lead with valid magic so deeper layers get
        // exercised too.
        if round % 2 == 0 {
            bytes.splice(0..0, MAGIC.to_le_bytes());
        }
        let _ = s.write_all(&bytes);
        // Drain whatever the server says until close or error; both are
        // acceptable, hanging is not (read_timeout turns a hang into Err).
        let mut buf = [0u8; 1024];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Stream still open with no reject: only legal if the
                    // bytes so far parse as an incomplete frame (the
                    // server is waiting for the rest). Closing is clean.
                    break;
                }
                Err(_) => break,
            }
        }
    }
    // After the storm: server still healthy.
    let mut client = Client::connect(server.addr()).unwrap();
    match client.call(&Request::Ping).unwrap() {
        Response::Pong { .. } => {}
        other => panic!("expected Pong after fuzz, got {other:?}"),
    }
    server.shutdown();
}

/// Pipelining sanity over a raw socket: many requests written as one blob,
/// responses come back for every correlation id.
#[test]
fn pipelined_requests_all_answered() {
    let (server, _dir) = start_server();
    let mut client = Client::connect(server.addr()).unwrap();
    client.attach("pipe").unwrap();
    match client
        .load_tree(
            "t",
            "((A:1,B:1):1,(C:1,D:1):1);",
            crimson_server::WireDurability::Sync,
        )
        .unwrap()
    {
        Response::TreeLoaded { .. } => {}
        other => panic!("load failed: {other:?}"),
    }
    let mut corrs = Vec::new();
    for _ in 0..32 {
        corrs.push(client.send(&Request::ListTrees).unwrap());
    }
    for corr in corrs {
        match client.recv_matching(corr).unwrap() {
            Response::Trees(trees) => assert_eq!(trees.len(), 1),
            other => panic!("expected Trees, got {other:?}"),
        }
    }
    server.shutdown();
}
