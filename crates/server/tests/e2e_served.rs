//! Satellite: end-to-end serving. N concurrent connections across two
//! tenants drive mixed lca/clade/projection/compare/load/experiment
//! traffic over loopback, and every deterministic response is
//! cross-validated byte-for-byte against a direct in-process `Repository`
//! mirror that applied the identical setup operations. Afterwards each
//! tenant passes its integrity check and the server reports zero protocol
//! errors.

use std::sync::Arc;

use crimson::experiment::{DistanceSource, ExperimentRunner, ExperimentSpec, Method};
use crimson::repository::{Repository, RepositoryOptions, StoredNodeId, TreeHandle};
use crimson::sampling::SamplingStrategy;
use crimson_server::dispatch::DispatchConfig;
use crimson_server::msg::{
    Request, Response, WireDurability, WireExperimentSpec, WireMethod, WireStrategy,
};
use crimson_server::server::{Server, ServerConfig};
use crimson_server::Client;

/// A deterministic ~32-leaf caterpillar-of-cherries Newick string.
fn gold_newick() -> String {
    let mut s = String::from("(L0:1.0,L1:1.0):0.5");
    for i in 1..16 {
        s = format!(
            "(({s},(L{}:1.0,L{}:1.0):0.5):0.25,X{i}:2.0):0.5",
            2 * i,
            2 * i + 1
        );
    }
    format!("({s},OUT:3.0);")
}

/// A small per-connection tree, unique per (tenant, thread).
fn small_newick(tag: &str) -> String {
    format!("((A_{tag}:1,B_{tag}:1):1,(C_{tag}:1,D_{tag}:1):1);")
}

/// Everything the concurrent phase cross-validates, precomputed from the
/// in-process mirror.
struct Expected {
    gold: TreeHandle,
    leaves: Vec<u64>,
    /// (a, b) -> lca for a few deterministic pairs.
    lcas: Vec<(u64, u64, u64)>,
    /// spanning clade of the first three leaves.
    clade_input: Vec<u64>,
    clade: Vec<u64>,
    /// projection of the first five leaves, as Newick.
    proj_input: Vec<u64>,
    proj_newick: String,
    /// seeded uniform sample.
    sample: Vec<u64>,
}

fn build_mirror(dir: &std::path::Path, tenant: &str) -> Expected {
    let mut repo = Repository::create(dir.join(tenant), RepositoryOptions::default()).unwrap();
    repo.load_newick("gold", &gold_newick()).unwrap();
    let reader = repo.reader().unwrap();
    let gold = reader.tree_by_name("gold").unwrap().handle;
    let leaf_ids = reader.leaves(gold).unwrap();
    let leaves: Vec<u64> = leaf_ids.iter().map(|n| n.0).collect();
    let mut lcas = Vec::new();
    for i in 0..6 {
        let a = leaf_ids[i * 3 % leaf_ids.len()];
        let b = leaf_ids[(i * 7 + 2) % leaf_ids.len()];
        let l = reader.lca(a, b).unwrap();
        lcas.push((a.0, b.0, l.0));
    }
    let clade_in: Vec<StoredNodeId> = leaf_ids.iter().take(3).copied().collect();
    let clade = reader
        .minimal_spanning_clade(&clade_in)
        .unwrap()
        .iter()
        .map(|n| n.0)
        .collect();
    let proj_in: Vec<StoredNodeId> = leaf_ids.iter().take(5).copied().collect();
    let proj_newick = phylo::newick::write(&reader.project(gold, &proj_in).unwrap());
    let sample = reader
        .sample_uniform(gold, 8, 0xC0FFEE)
        .unwrap()
        .iter()
        .map(|n| n.0)
        .collect();
    // Mirror the experiment the served side will run, so record counts are
    // comparable.
    let spec = ExperimentSpec {
        name: "e2e-sweep".into(),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![SamplingStrategy::Uniform { k: 8 }],
        replicates: 1,
        distance_source: DistanceSource::TruePatristic,
        compute_triplets: false,
        seed: 42,
        workers: 2,
        cell_commits: false,
    };
    let record = ExperimentRunner::new(&mut repo, gold).run(&spec).unwrap();
    assert_eq!(record.runs, 2, "mirror sweep is 2 methods x 1 strategy x 1");
    Expected {
        gold,
        leaves,
        lcas,
        clade_input: clade_in.iter().map(|n| n.0).collect(),
        clade,
        proj_input: proj_in.iter().map(|n| n.0).collect(),
        proj_newick,
        sample,
    }
}

fn assert_reads_match(client: &mut Client, exp: &Expected) {
    match client.call(&Request::ListTrees).unwrap() {
        Response::Trees(trees) => {
            let gold = trees
                .iter()
                .find(|t| t.name == "gold")
                .expect("gold listed");
            assert_eq!(gold.id, exp.gold.0);
        }
        other => panic!("ListTrees: {other:?}"),
    }
    match client.call(&Request::Leaves { tree: exp.gold.0 }).unwrap() {
        Response::Nodes(ids) => assert_eq!(ids, exp.leaves, "leaves differ from mirror"),
        other => panic!("Leaves: {other:?}"),
    }
    for &(a, b, want) in &exp.lcas {
        match client.call(&Request::Lca { a, b }).unwrap() {
            Response::Node(got) => assert_eq!(got, want, "lca({a},{b})"),
            other => panic!("Lca: {other:?}"),
        }
        match client
            .call(&Request::IsAncestor {
                ancestor: want,
                node: a,
            })
            .unwrap()
        {
            Response::Flag(f) => assert!(f, "lca must be an ancestor"),
            other => panic!("IsAncestor: {other:?}"),
        }
    }
    match client
        .call(&Request::SpanningClade {
            nodes: exp.clade_input.clone(),
        })
        .unwrap()
    {
        Response::Nodes(ids) => assert_eq!(ids, exp.clade, "spanning clade differs"),
        other => panic!("SpanningClade: {other:?}"),
    }
    match client
        .call(&Request::Project {
            tree: exp.gold.0,
            leaves: exp.proj_input.clone(),
        })
        .unwrap()
    {
        Response::Newick(s) => assert_eq!(s, exp.proj_newick, "projection differs byte-for-byte"),
        other => panic!("Project: {other:?}"),
    }
    match client
        .call(&Request::SampleUniform {
            tree: exp.gold.0,
            k: 8,
            seed: 0xC0FFEE,
        })
        .unwrap()
    {
        Response::Nodes(ids) => assert_eq!(ids, exp.sample, "seeded sample differs"),
        other => panic!("SampleUniform: {other:?}"),
    }
    match client
        .call(&Request::CompareStored {
            a: exp.gold.0,
            b: exp.gold.0,
            triplets: false,
        })
        .unwrap()
    {
        Response::Comparison(c) => {
            assert_eq!(c.rf.distance, 0);
            assert_eq!(c.rooted_rf.distance, 0);
        }
        other => panic!("CompareStored: {other:?}"),
    }
}

#[test]
fn served_traffic_matches_in_process_engine() {
    let server_root = tempfile::tempdir().unwrap();
    let mirror_root = tempfile::tempdir().unwrap();
    let tenants = ["alpha", "beta"];

    // The in-process ground truth, same ops in the same order.
    let expected: Vec<Expected> = tenants
        .iter()
        .map(|t| build_mirror(mirror_root.path(), t))
        .collect();

    let config = ServerConfig {
        dispatch: DispatchConfig {
            workers: 4,
            ..DispatchConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start(config, server_root.path()).unwrap();
    let addr = server.addr();

    // Deterministic setup phase: one connection per tenant performs the
    // exact op sequence the mirror ran, so stored ids line up.
    for (t, exp) in tenants.iter().zip(&expected) {
        let mut c = Client::connect(addr).unwrap();
        c.attach(t).unwrap();
        match c
            .load_tree("gold", &gold_newick(), WireDurability::Sync)
            .unwrap()
        {
            Response::TreeLoaded { tree, .. } => assert_eq!(tree, exp.gold.0),
            other => panic!("gold load: {other:?}"),
        }
        match c
            .call(&Request::RunExperiment {
                spec: WireExperimentSpec {
                    name: "e2e-sweep".into(),
                    gold: "gold".into(),
                    methods: vec![WireMethod::Upgma, WireMethod::NeighborJoining],
                    strategies: vec![WireStrategy::Uniform { k: 8 }],
                    replicates: 1,
                    seed: 42,
                    workers: 2,
                    compute_triplets: false,
                },
            })
            .unwrap()
        {
            Response::Experiment { runs, .. } => assert_eq!(runs, 2),
            other => panic!("experiment: {other:?}"),
        }
    }

    // Concurrent phase: 8 connections (4 per tenant), mixed traffic.
    let expected = Arc::new(expected);
    let mut handles = Vec::new();
    for conn in 0..8usize {
        let tenant = tenants[conn % 2].to_string();
        let exp = Arc::clone(&expected);
        handles.push(std::thread::spawn(move || {
            let eidx = conn % 2;
            let mut client = Client::connect(addr).unwrap();
            client.attach(&tenant).unwrap();
            for round in 0..5 {
                assert_reads_match(&mut client, &exp[eidx]);
                // Writes ride along: async-durability load, then barrier.
                let tag = format!("c{conn}r{round}");
                let name = format!("conn-{tag}");
                let loaded = match client
                    .load_tree(&name, &small_newick(&tag), WireDurability::Async)
                    .unwrap()
                {
                    Response::TreeLoaded { tree, leaves, .. } => {
                        assert_eq!(leaves, 4);
                        tree
                    }
                    other => panic!("small load: {other:?}"),
                };
                match client.wait_durable().unwrap() {
                    Response::Durable { .. } => {}
                    other => panic!("WaitDurable: {other:?}"),
                }
                // The loaded tree compares clean against itself.
                match client
                    .call(&Request::CompareStored {
                        a: loaded,
                        b: loaded,
                        triplets: true,
                    })
                    .unwrap()
                {
                    Response::Comparison(c) => {
                        assert_eq!(c.rf.distance, 0);
                        assert_eq!(c.triplet, Some(0.0));
                    }
                    other => panic!("self-compare: {other:?}"),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }

    // Post-run: integrity is clean per tenant and the counts add up —
    // mirror state plus the 4 connections x 5 rounds of 7-node trees.
    for (t, exp) in tenants.iter().zip(expected.iter()) {
        let mut c = Client::connect(addr).unwrap();
        c.attach(t).unwrap();
        match c.call(&Request::IntegrityCheck).unwrap() {
            Response::Integrity(i) => {
                assert_eq!(i.experiments, 1);
                assert_eq!(i.experiment_results, 2);
                // gold + 2 reconstructions + 20 connection trees.
                assert_eq!(i.trees, 23, "tenant {t}");
                assert_eq!(i.interval_entries, i.nodes);
            }
            other => panic!("IntegrityCheck: {other:?}"),
        }
        // The gold tree still reads identically after all the writes.
        assert_reads_match(&mut c, exp);
    }

    // Zero protocol errors across the whole run.
    let mut c = Client::connect(addr).unwrap();
    match c.call(&Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.protocol_rejects, 0, "no protocol errors in e2e");
            assert!(s.reads > 0 && s.writes > 0);
        }
        other => panic!("Stats: {other:?}"),
    }

    server.shutdown();
}

/// Admission control: a tiny queue and window shed load with typed
/// `Overloaded`, and the connection keeps working.
#[test]
fn overload_is_shed_with_typed_response() {
    let dir = tempfile::tempdir().unwrap();
    let config = ServerConfig {
        dispatch: DispatchConfig {
            workers: 1,
            max_queue: 2,
            ..DispatchConfig::default()
        },
        conn_window: 4,
        ..ServerConfig::default()
    };
    let server = Server::start(config, dir.path()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.attach("t").unwrap();
    match client
        .load_tree("base", &gold_newick(), WireDurability::Sync)
        .unwrap()
    {
        Response::TreeLoaded { .. } => {}
        other => panic!("load: {other:?}"),
    }

    // Flood far past window + queue; some must be shed as Overloaded and
    // every correlation must still get exactly one response.
    let mut corrs = Vec::new();
    for _ in 0..64 {
        corrs.push(client.send(&Request::ListTrees).unwrap());
    }
    let mut ok = 0usize;
    let mut shed = 0usize;
    for corr in corrs {
        match client.recv_matching(corr).unwrap() {
            Response::Trees(_) => ok += 1,
            Response::Error(e) if e.code == crimson_server::ErrorCode::Overloaded => shed += 1,
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(ok + shed, 64);
    assert!(shed > 0, "a 2-deep queue under a 64-burst must shed");
    assert!(ok > 0, "admitted requests still succeed");

    // And afterwards the connection is healthy.
    match client.call(&Request::ListTrees).unwrap() {
        Response::Trees(trees) => assert_eq!(trees.len(), 1),
        other => panic!("post-overload: {other:?}"),
    }
    server.shutdown();
}
