//! Satellite: the full error surface maps to typed wire codes, round-trips
//! through the codec, and never costs the client its connection when the
//! failure is the engine's (not the framing's).

use crimson::CrimsonError;
use crimson_server::msg::{Request, Response, WireDurability};
use crimson_server::server::{Server, ServerConfig};
use crimson_server::wire::{crimson_code, storage_code, ErrorCode, WireError, ALL_ERROR_CODES};
use crimson_server::Client;
use storage::StorageError;

/// Every defined code survives `encode(Response::Error) -> decode`
/// byte-for-byte, including its message.
#[test]
fn every_error_code_round_trips_on_the_wire() {
    for (i, &code) in ALL_ERROR_CODES.iter().enumerate() {
        let err = WireError::new(code, format!("message #{i} for {code:?}"));
        let resp = Response::Error(err.clone());
        let payload = resp.encode(i as u64);
        let (corr, back) = Response::decode(&payload).expect("decode");
        assert_eq!(corr, i as u64);
        assert_eq!(back, Response::Error(err));
    }
}

/// `from_u16` is the inverse of `as_u16` over the whole surface, and
/// unknown numbers degrade to `Internal` instead of panicking.
#[test]
fn code_numbers_are_stable_and_total() {
    for &code in ALL_ERROR_CODES {
        assert_eq!(ErrorCode::from_u16(code.as_u16()), code);
    }
    assert_eq!(ErrorCode::from_u16(0xFFFE), ErrorCode::Internal);
}

/// The storage-side mapping hits the codes the protocol contract names.
#[test]
fn storage_variants_map_to_required_codes() {
    assert_eq!(
        storage_code(&StorageError::WriterPoisoned("fsync failed".into())),
        ErrorCode::WriterPoisoned
    );
    assert_eq!(storage_code(&StorageError::ReadOnly), ErrorCode::ReadOnly);
    assert_eq!(
        storage_code(&StorageError::SnapshotRetired { epoch: 3, floor: 9 }),
        ErrorCode::SnapshotRetired
    );
    assert_eq!(
        storage_code(&StorageError::Corrupted("bad page".into())),
        ErrorCode::Corrupted
    );
}

/// The crimson-side mapping distinguishes caller mistakes from damage, and
/// forwards wrapped storage errors unchanged.
#[test]
fn crimson_variants_map_to_required_codes() {
    assert_eq!(
        crimson_code(&CrimsonError::UnknownTree("x".into())),
        ErrorCode::UnknownTree
    );
    assert_eq!(
        crimson_code(&CrimsonError::UnknownNode(5)),
        ErrorCode::UnknownNode
    );
    assert_eq!(
        crimson_code(&CrimsonError::DuplicateTree("x".into())),
        ErrorCode::DuplicateTree
    );
    assert_eq!(
        crimson_code(&CrimsonError::Busy("burst".into())),
        ErrorCode::Busy
    );
    assert_eq!(
        crimson_code(&CrimsonError::Storage(StorageError::ReadOnly)),
        ErrorCode::ReadOnly
    );
    assert_eq!(
        crimson_code(&CrimsonError::Storage(StorageError::WriterPoisoned(
            "died".into()
        ))),
        ErrorCode::WriterPoisoned
    );
    // The message carries the engine's Display text.
    let wire = WireError::from(&CrimsonError::UnknownTree("oak".into()));
    assert!(wire.message.contains("oak"), "{}", wire.message);
}

/// Engine errors over a live connection are typed responses, not
/// disconnects: the same session keeps working afterwards.
#[test]
fn engine_errors_do_not_drop_the_connection() {
    let dir = tempfile::tempdir().unwrap();
    let server = Server::start(ServerConfig::default(), dir.path()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Request before attach: typed NoTenant.
    match client.call(&Request::ListTrees).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::NoTenant),
        other => panic!("expected NoTenant, got {other:?}"),
    }

    client.attach("t1").unwrap();

    // Unknown tree name: typed UnknownTree.
    match client
        .call(&Request::TreeByName {
            name: "nope".into(),
        })
        .unwrap()
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownTree),
        other => panic!("expected UnknownTree, got {other:?}"),
    }

    // Unknown handle: typed UnknownTreeId.
    match client
        .call(&Request::CompareStored {
            a: 999,
            b: 999,
            triplets: false,
        })
        .unwrap()
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownTreeId),
        other => panic!("expected UnknownTreeId, got {other:?}"),
    }

    // Unknown node id: typed UnknownNode.
    match client
        .call(&Request::Lca {
            a: u64::MAX - 1,
            b: u64::MAX,
        })
        .unwrap()
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::UnknownNode),
        other => panic!("expected UnknownNode, got {other:?}"),
    }

    // Malformed Newick: typed TreeParse.
    match client
        .load_tree("bad", "((A,B", WireDurability::Sync)
        .unwrap()
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::TreeParse),
        other => panic!("expected TreeParse, got {other:?}"),
    }

    // Bad tenant names: typed BadTenantName, session unharmed.
    for bad in ["../escape", "", ".hidden", "a/b"] {
        match client.attach(bad).unwrap() {
            Response::Error(e) => assert_eq!(e.code, ErrorCode::BadTenantName, "{bad:?}"),
            other => panic!("expected BadTenantName for {bad:?}, got {other:?}"),
        }
    }

    // Duplicate tree: first load fine, second typed DuplicateTree.
    match client
        .load_tree("t", "((A:1,B:1):1,C:2);", WireDurability::Sync)
        .unwrap()
    {
        Response::TreeLoaded { .. } => {}
        other => panic!("expected TreeLoaded, got {other:?}"),
    }
    match client
        .load_tree("t", "((A:1,B:1):1,C:2);", WireDurability::Sync)
        .unwrap()
    {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::DuplicateTree),
        other => panic!("expected DuplicateTree, got {other:?}"),
    }

    // After that parade of failures the connection still answers reads.
    match client.call(&Request::ListTrees).unwrap() {
        Response::Trees(trees) => assert_eq!(trees.len(), 1),
        other => panic!("expected Trees, got {other:?}"),
    }

    server.shutdown();
}
