//! Cross-validation and cost assertions for the interval-index structure
//! query engine.
//!
//! * Property tests: on random birth–death trees and random attachment-shape
//!   trees, the interval implementations of `lca` / `is_ancestor` /
//!   `minimal_spanning_clade` / `project` must agree with the label-walk /
//!   BFS reference implementations (and with the in-memory tree).
//! * Cost tests: on a 10k-leaf simulated tree, the interval paths must beat
//!   the reference paths by ≥5× in buffer-pool page reads, asserted via
//!   `BufferStats` — the scoreboard the benches measure wall-clock on.
//! * Capacity test: a repository scan over a file much larger than the pool
//!   keeps residency bounded with nonzero evictions.

use crimson::prelude::*;
use phylo::Tree;
use rand::prelude::*;
use simulation::birth_death::yule_tree;
use tempfile::tempdir;

fn fresh_repo(
    tree: &Tree,
    frame_depth: usize,
    pages: usize,
) -> (tempfile::TempDir, Repository, TreeHandle) {
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("repo.crimson"),
        RepositoryOptions {
            frame_depth,
            buffer_pool_pages: pages,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = repo.load_tree("t", tree).unwrap();
    (dir, repo, handle)
}

/// Build a random tree from a shape vector (same construction as the
/// labeling property tests): element `i` attaches node `i+1` to parent
/// `shape[i] % (i+1)`, reaching every rooted topology with positive
/// probability.
fn tree_from_shape(shape: &[usize]) -> Tree {
    let mut tree = Tree::new();
    let mut ids = vec![tree.add_node()];
    for (i, &s) in shape.iter().enumerate() {
        let parent = ids[s % (i + 1)];
        let child = tree
            .add_child(
                parent,
                Some(format!("n{}", i + 1)),
                Some((s % 7) as f64 * 0.5 + 0.1),
            )
            .unwrap();
        ids.push(child);
    }
    tree
}

#[test]
fn interval_lca_matches_label_walk_on_random_trees() {
    let mut rng = StdRng::seed_from_u64(0x1CA);
    for case in 0..24 {
        // Alternate birth–death simulations and adversarial random shapes.
        let tree = if case % 2 == 0 {
            yule_tree(rng.gen_range(8usize..80), 1.0, rng.gen_range(0u64..1000))
        } else {
            let len = rng.gen_range(1usize..150);
            let shape: Vec<usize> = (0..len).map(|_| rng.gen_range(0usize..1000)).collect();
            tree_from_shape(&shape)
        };
        let f = rng.gen_range(2usize..10);
        let (_d, repo, handle) = fresh_repo(&tree, f, 512);
        let rec = repo.tree_record(handle).unwrap();

        // Random stored-node pairs: leaves and internals alike.
        let clade = repo.minimal_spanning_clade(&[rec.root]).unwrap();
        assert_eq!(
            clade.len(),
            tree.node_count(),
            "case {case}: root clade is the whole tree"
        );
        for _ in 0..60 {
            let a = clade[rng.gen_range(0..clade.len())];
            let b = clade[rng.gen_range(0..clade.len())];
            let via_interval = repo.lca(a, b).unwrap();
            let via_labels = repo.lca_label_walk(a, b).unwrap();
            assert_eq!(via_interval, via_labels, "case {case}: lca({a}, {b}) f={f}");
            assert_eq!(
                repo.is_ancestor(a, b).unwrap(),
                repo.lca_label_walk(a, b).unwrap() == a,
                "case {case}: is_ancestor({a}, {b})"
            );
        }
    }
}

#[test]
fn interval_clade_and_projection_match_references_on_random_trees() {
    let mut rng = StdRng::seed_from_u64(0xC1ADE);
    for case in 0..12 {
        let tree = yule_tree(rng.gen_range(10usize..60), 1.0, rng.gen_range(0u64..1000));
        let (_d, repo, handle) = fresh_repo(&tree, rng.gen_range(2usize..8), 512);
        let leaves = repo.leaves(handle).unwrap();

        for set_size in [2usize, 3, 5] {
            let set: Vec<StoredNodeId> = leaves
                .choose_multiple(&mut rng, set_size.min(leaves.len()))
                .copied()
                .collect();
            let mut fast = repo.minimal_spanning_clade(&set).unwrap();
            let mut reference = repo.minimal_spanning_clade_reference(&set).unwrap();
            fast.sort();
            reference.sort();
            assert_eq!(fast, reference, "case {case}: clade of {set_size} leaves");

            let fast = repo.project(handle, &set).unwrap();
            let reference = repo.project_reference(handle, &set).unwrap();
            assert!(
                phylo::ops::isomorphic_with_lengths(&fast, &reference, 1e-9),
                "case {case}: projection of {set_size} leaves\nfast:\n{}\nreference:\n{}",
                phylo::render::ascii(&fast),
                phylo::render::ascii(&reference)
            );
        }
    }
}

#[test]
fn projection_dense_and_sparse_paths_agree() {
    // Dense (range-scan) and sparse (per-pair walk) pair-LCA strategies must
    // produce identical projections. Selecting most leaves of a clade forces
    // the dense path; a two-leaf selection of a large tree forces the sparse
    // path; mid-size selections land near the threshold.
    let tree = yule_tree(300, 1.0, 7);
    let (_d, repo, handle) = fresh_repo(&tree, 8, 1024);
    let leaves = repo.leaves(handle).unwrap();
    let mut rng = StdRng::seed_from_u64(9);
    for take in [2usize, 5, 20, 150, 290] {
        let set: Vec<StoredNodeId> = leaves.choose_multiple(&mut rng, take).copied().collect();
        let fast = repo.project(handle, &set).unwrap();
        let reference = repo.project_reference(handle, &set).unwrap();
        assert!(
            phylo::ops::isomorphic_with_lengths(&fast, &reference, 1e-9),
            "selection of {take} leaves"
        );
    }
}

#[test]
fn interval_paths_read_5x_fewer_pages_on_10k_leaf_tree() {
    let tree = yule_tree(10_000, 1.0, 42);
    let (_d, repo, handle) = fresh_repo(&tree, 16, 8192);
    let leaves = repo.leaves(handle).unwrap();
    let mut rng = StdRng::seed_from_u64(5);

    // --- minimal spanning clade over 32 random leaves ---
    let set: Vec<StoredNodeId> = leaves.choose_multiple(&mut rng, 32).copied().collect();

    repo.clear_cache().unwrap();
    repo.reset_buffer_stats();
    let fast = repo.minimal_spanning_clade(&set).unwrap();
    let fast_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().unwrap();
    repo.reset_buffer_stats();
    let reference = repo.minimal_spanning_clade_reference(&set).unwrap();
    let reference_reads = repo.buffer_stats().page_reads();

    assert_eq!(fast.len(), reference.len());
    eprintln!("clade/32-leaves: interval {fast_reads} page reads, reference {reference_reads}");
    assert!(
        reference_reads >= 5 * fast_reads,
        "clade: interval path read {fast_reads} pages, reference read {reference_reads} — \
         expected ≥5× improvement"
    );

    // --- projection of 1000 evenly spread leaves (dense scan path) ---
    let step = leaves.len() / 1000;
    let sample: Vec<StoredNodeId> = leaves.iter().step_by(step.max(1)).copied().collect();

    repo.clear_cache().unwrap();
    repo.reset_buffer_stats();
    let fast = repo.project(handle, &sample).unwrap();
    let fast_reads = repo.buffer_stats().page_reads();

    repo.clear_cache().unwrap();
    repo.reset_buffer_stats();
    let reference = repo.project_reference(handle, &sample).unwrap();
    let reference_reads = repo.buffer_stats().page_reads();

    assert!(phylo::ops::isomorphic_with_lengths(&fast, &reference, 1e-9));
    eprintln!(
        "projection/1000-leaves: interval {fast_reads} page reads, reference {reference_reads}"
    );
    assert!(
        reference_reads >= 5 * fast_reads,
        "projection: interval path read {fast_reads} pages, reference read {reference_reads} — \
         expected ≥5× improvement"
    );
}

#[test]
fn repository_scan_stays_within_pool_capacity() {
    // A pool far smaller than the repository file: scanning every node must
    // complete, keep residency bounded, and evict.
    let tree = yule_tree(2_000, 1.0, 11);
    let (_d, repo, handle) = fresh_repo(&tree, 8, 64);
    let (_, capacity) = repo.buffer_utilization();
    assert_eq!(capacity, 64);

    let rec = repo.tree_record(handle).unwrap();
    let clade = repo.minimal_spanning_clade(&[rec.root]).unwrap();
    assert_eq!(clade.len() as u64, rec.node_count);
    // Touch every node row, sweeping the whole heap through the small pool.
    for &node in &clade {
        let _ = repo.node_record(node).unwrap();
        let (resident, capacity) = repo.buffer_utilization();
        assert!(
            resident <= capacity,
            "resident {resident} exceeded capacity {capacity}"
        );
    }
    assert!(
        repo.buffer_stats().evictions > 0,
        "a scan larger than the pool must evict"
    );
}

#[test]
fn record_cache_serves_repeated_queries() {
    let tree = yule_tree(200, 1.0, 3);
    let (_d, repo, handle) = fresh_repo(&tree, 8, 1024);
    let leaves = repo.leaves(handle).unwrap();
    let ((_, _), _) = repo.record_cache_stats();
    // First projection warms the cache; the second is served from it.
    let sample: Vec<StoredNodeId> = leaves.iter().step_by(3).copied().collect();
    let _ = repo.project(handle, &sample).unwrap();
    let ((_, misses_after_first), _) = repo.record_cache_stats();
    let _ = repo.project(handle, &sample).unwrap();
    let ((hits, misses_after_second), len) = repo.record_cache_stats();
    assert_eq!(
        misses_after_first, misses_after_second,
        "second identical projection must not decode any new rows"
    );
    assert!(hits > 0);
    assert!(len > 0);
}
