//! Property tests for the bulk-load fast path: repositories loaded through
//! the streaming bulk pipeline must be indistinguishable — query for query —
//! from repositories loaded through the row-at-a-time reference path, and a
//! crash at any point inside a bulk load must recover to the clean pre-load
//! state.

use crimson::prelude::*;
use crimson::repository::RepositoryOptions;
use rand::prelude::*;
use simulation::birth_death::{birth_death_tree, BirthDeathConfig};
use storage::CrashPoint;
use tempfile::tempdir;

fn options(frame_depth: usize) -> RepositoryOptions {
    RepositoryOptions {
        frame_depth,
        buffer_pool_pages: 512,
        ..Default::default()
    }
}

/// A random birth–death tree with mildly varied shape parameters.
fn random_tree(rng: &mut StdRng) -> phylo::Tree {
    let leaves = rng.gen_range(8usize..60);
    let death = if rng.gen_bool(0.5) { 0.0 } else { 0.3 };
    birth_death_tree(
        &BirthDeathConfig {
            leaves,
            birth_rate: 1.0,
            death_rate: death,
            prune_extinct: death > 0.0 && rng.gen_bool(0.5),
            ..BirthDeathConfig::default()
        }
        .with_seed(rng.gen()),
    )
}

/// Bulk-load and reference-load the same 50 random trees into two
/// repositories, then cross-validate LCA, ancestor tests, spanning clades,
/// projections and the integrity check between them. Stored node ids are
/// `(tree_id << 32) | arena_id` in both repositories, so query answers must
/// be *identical*, not merely isomorphic.
#[test]
fn bulk_and_reference_loads_answer_identically_on_random_trees() {
    let dir = tempdir().unwrap();
    let mut bulk = Repository::create(dir.path().join("bulk.crimson"), options(4)).unwrap();
    let mut reference = Repository::create(dir.path().join("ref.crimson"), options(4)).unwrap();
    let mut rng = StdRng::seed_from_u64(20260727);
    for case in 0..50 {
        let tree = random_tree(&mut rng);
        let name = format!("tree-{case}");
        let hb = bulk.load_tree(&name, &tree).unwrap();
        let hr = reference.load_tree_reference(&name, &tree).unwrap();
        assert_eq!(hb, hr, "case {case}: handles must line up");

        let mut leaves_b = bulk.leaves(hb).unwrap();
        let mut leaves_r = reference.leaves(hr).unwrap();
        leaves_b.sort();
        leaves_r.sort();
        assert_eq!(leaves_b, leaves_r, "case {case}: leaf sets differ");

        // LCA + ancestor tests over sampled pairs, also cross-checked
        // against the reference repository's label-walk implementation.
        for _ in 0..12 {
            let a = *leaves_b.choose(&mut rng).unwrap();
            let b = *leaves_b.choose(&mut rng).unwrap();
            let lb = bulk.lca(a, b).unwrap();
            let lr = reference.lca(a, b).unwrap();
            assert_eq!(lb, lr, "case {case}: lca({a}, {b})");
            assert_eq!(
                reference.lca_label_walk(a, b).unwrap(),
                lb,
                "case {case}: label walk disagrees"
            );
            assert!(
                bulk.is_ancestor(lb, a).unwrap() && bulk.is_ancestor(lb, b).unwrap(),
                "case {case}: lca must cover both"
            );
        }

        // Minimal spanning clade of a random leaf subset.
        let set: Vec<StoredNodeId> = leaves_b
            .choose_multiple(&mut rng, 4.min(leaves_b.len()))
            .copied()
            .collect();
        let mut cb = bulk.minimal_spanning_clade(&set).unwrap();
        let mut cr = reference.minimal_spanning_clade(&set).unwrap();
        cb.sort();
        cr.sort();
        assert_eq!(cb, cr, "case {case}: spanning clades differ");

        // Projection of an evenly spread leaf sample.
        let sample: Vec<StoredNodeId> = leaves_b.iter().step_by(3).copied().collect();
        if sample.len() >= 2 {
            let pb = bulk.project(hb, &sample).unwrap();
            let pr = reference.project(hr, &sample).unwrap();
            assert!(
                phylo::ops::isomorphic_with_lengths(&pb, &pr, 1e-9),
                "case {case}: projections differ"
            );
        }

        // Node records agree field for field on a sample.
        for &leaf in leaves_b.iter().take(5) {
            assert_eq!(
                bulk.node_record(leaf).unwrap(),
                reference.node_record(leaf).unwrap(),
                "case {case}: node record differs"
            );
        }
    }
    let rb = bulk.integrity_check().unwrap();
    let rr = reference.integrity_check().unwrap();
    assert_eq!(rb, rr, "integrity reports must match");
    assert_eq!(rb.trees, 50);
}

/// Bulk-loaded and reference-loaded trees coexist in one repository file:
/// the second and later loads bulk-append behind existing keys (or fall back
/// per index), and cross-tree integrity holds.
#[test]
fn mixed_load_paths_share_one_repository() {
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(dir.path().join("mixed.crimson"), options(3)).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let mut handles = Vec::new();
    for case in 0..8 {
        let tree = random_tree(&mut rng);
        let name = format!("t{case}");
        let handle = if case % 2 == 0 {
            repo.load_tree(&name, &tree).unwrap()
        } else {
            repo.load_tree_reference(&name, &tree).unwrap()
        };
        handles.push(handle);
    }
    repo.integrity_check().unwrap();
    for &handle in &handles {
        let leaves = repo.leaves(handle).unwrap();
        let a = leaves[0];
        let b = *leaves.last().unwrap();
        let lca = repo.lca(a, b).unwrap();
        assert_eq!(repo.lca_label_walk(a, b).unwrap(), lca);
        assert!(repo.is_ancestor(lca, b).unwrap());
    }
    // Queries across distinct trees still refuse to mix.
    let l0 = repo.leaves(handles[0]).unwrap()[0];
    let l1 = repo.leaves(handles[1]).unwrap()[0];
    assert!(repo.lca(l0, l1).is_err());
}

/// Crash a bulk load at a sweep of WAL-append and data-write kill points;
/// every recovery must restore the exact pre-load state (committed tree
/// intact, victim invisible, integrity green), and a retried load must then
/// succeed.
#[test]
fn bulk_load_crash_recovers_to_pre_load_state() {
    let committed_tree = simulation::birth_death::yule_tree(120, 1.0, 11);
    let victim_tree = simulation::birth_death::yule_tree(400, 1.0, 12);
    let points = [
        CrashPoint::WalAppend(0),
        CrashPoint::WalAppend(2),
        CrashPoint::WalAppend(25),
        CrashPoint::DataWrite(0),
        CrashPoint::DataWrite(3),
    ];
    for point in points {
        let dir = tempdir().unwrap();
        let path = dir.path().join("crash.crimson");
        {
            // A pool smaller than the victim load forces mid-bulk steals,
            // so the DataWrite points trip while the transaction is open.
            let mut repo = Repository::create(
                &path,
                RepositoryOptions {
                    frame_depth: 8,
                    buffer_pool_pages: 64,
                    ..Default::default()
                },
            )
            .unwrap();
            repo.load_tree("committed", &committed_tree).unwrap();
            repo.inject_crash(point);
            assert!(
                repo.load_tree("victim", &victim_tree).is_err(),
                "{point:?}: the injected crash must interrupt the bulk load"
            );
            // Crash: drop without flush.
        }
        let mut repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        repo.recovery_report().expect("recovery must be reported");
        repo.integrity_check()
            .unwrap_or_else(|e| panic!("{point:?}: integrity after recovery: {e}"));
        let rec = repo.tree_by_name("committed").unwrap();
        assert_eq!(rec.node_count as usize, committed_tree.node_count());
        assert!(
            repo.find_tree("victim").unwrap().is_none(),
            "{point:?}: interrupted bulk load must vanish"
        );
        // The recovered repository accepts the retried bulk load.
        let handle = repo.load_tree("victim", &victim_tree).unwrap();
        assert_eq!(
            repo.tree_record(handle).unwrap().leaf_count as usize,
            victim_tree.leaf_count()
        );
        repo.integrity_check().unwrap();
    }
}

/// The bulk path refuses the same invalid inputs as the reference path.
#[test]
fn bulk_load_rejects_empty_and_duplicate_trees() {
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(dir.path().join("r.crimson"), options(4)).unwrap();
    assert!(repo.load_tree("empty", &phylo::Tree::new()).is_err());
    let tree = simulation::birth_death::yule_tree(16, 1.0, 3);
    repo.load_tree("dup", &tree).unwrap();
    assert!(matches!(
        repo.load_tree("dup", &tree),
        Err(crimson::CrimsonError::DuplicateTree(_))
    ));
    // The failed loads left nothing behind.
    assert_eq!(repo.integrity_check().unwrap().trees, 1);
}
