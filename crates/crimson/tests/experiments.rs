//! Integration tests for the persistent experiment subsystem: full-grid
//! sweeps surviving close/reopen, spec-level determinism across worker
//! counts, and crash injection mid-experiment-commit.

use crimson::experiment::cell_seed;
use crimson::prelude::*;
use simulation::gold::{GoldStandard, GoldStandardBuilder};
use simulation::seqevo::Model;
use storage::CrashPoint;
use tempfile::tempdir;

fn build_gold(leaves: usize, sites: usize, seed: u64) -> GoldStandard {
    GoldStandardBuilder::new()
        .leaves(leaves)
        .sequence_length(sites)
        .model(Model::Jc69 { rate: 0.1 })
        .seed(seed)
        .build()
        .unwrap()
}

fn opts() -> RepositoryOptions {
    RepositoryOptions {
        frame_depth: 8,
        buffer_pool_pages: 1024,
        ..Default::default()
    }
}

fn grid_spec(name: &str, seed: u64, workers: usize) -> ExperimentSpec {
    ExperimentSpec {
        name: name.to_string(),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![
            SamplingStrategy::Uniform { k: 8 },
            SamplingStrategy::Uniform { k: 12 },
            // A generous age keeps the whole tree below the frontier, so
            // the draw always has enough species.
            SamplingStrategy::TimeRespecting { time: 1e6, k: 10 },
        ],
        replicates: 3,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed,
        workers,
        cell_commits: false,
    }
}

/// Collect the comparable footprint of an experiment: per-result metrics
/// plus each result's (size, agrees) clade rows.
#[allow(clippy::type_complexity)]
fn footprint(
    repo: &Repository,
    experiment: u64,
) -> Vec<(
    String,
    usize,
    usize,
    u64,
    usize,
    (usize, usize, usize),
    (usize, usize, usize),
    Vec<(u32, bool)>,
)> {
    repo.experiment_results(experiment)
        .unwrap()
        .iter()
        .map(|r| {
            let clades: Vec<(u32, bool)> = repo
                .experiment_clades(r.id)
                .unwrap()
                .iter()
                .map(|c| (c.size, c.agrees))
                .collect();
            (
                r.method.name().to_string(),
                r.strategy_index,
                r.replicate,
                r.cell_seed,
                r.sample_size,
                (r.rf.distance, r.rf.max_distance, r.rf.shared),
                (
                    r.rooted_rf.distance,
                    r.rooted_rf.max_distance,
                    r.rooted_rf.shared,
                ),
                clades,
            )
        })
        .collect()
}

#[test]
fn full_grid_sweep_survives_close_and_reopen() {
    let gold = build_gold(64, 300, 41);
    let dir = tempdir().unwrap();
    let path = dir.path().join("exp.crimson");
    let spec = grid_spec("grid", 2026, 4);
    let (exp_id, before, handle) = {
        let mut repo = Repository::create(&path, opts()).unwrap();
        let handle = repo.load_gold_standard("gold", &gold).unwrap();
        let record = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
        assert_eq!(record.runs, 18, "2 methods × 3 samplings × 3 replicates");
        let before = footprint(&repo, record.id);
        repo.integrity_check().unwrap();
        repo.flush().unwrap();
        (record.id, before, handle)
    };

    let repo = Repository::open(&path, opts()).unwrap();
    let report = repo.integrity_check().unwrap();
    assert_eq!(report.experiments, 1);
    assert_eq!(report.experiment_results, 18);
    assert!(report.experiment_clades > 0);
    // 1 gold + 18 reconstructions.
    assert_eq!(repo.list_trees().unwrap().len(), 19);

    let record = repo.experiment_by_name("grid").unwrap();
    assert_eq!(record.id, exp_id);
    assert_eq!(record.gold, handle);
    assert_eq!(record.spec.methods, spec.methods);
    assert_eq!(record.spec.strategies, spec.strategies);
    assert_eq!(record.seed, 2026);
    assert_eq!(
        footprint(&repo, exp_id),
        before,
        "metrics changed on reopen"
    );

    // Every reconstruction is a first-class stored tree: queryable and
    // comparable through the interval index.
    let results = repo.experiment_results(exp_id).unwrap();
    for r in &results {
        let tree = repo.tree_record(r.recon).unwrap();
        assert_eq!(tree.leaf_count as usize, r.sample_size);
        let leaves = repo.leaves(r.recon).unwrap();
        let projection = repo.project(r.recon, &leaves).unwrap();
        assert_eq!(projection.leaf_count(), r.sample_size);
        // Index-native self-comparison of a stored reconstruction is exact.
        let self_cmp = repo.compare_stored(r.recon, r.recon, false).unwrap();
        assert_eq!(self_cmp.rf.distance, 0);
    }
    // Snapshot readers see the whole catalog too.
    let reader = repo.reader().unwrap();
    assert_eq!(reader.experiment_by_name("grid").unwrap().id, exp_id);
    assert_eq!(reader.experiment_results(exp_id).unwrap().len(), 18);
    assert!(!reader.experiment_clades(results[0].id).unwrap().is_empty());

    // The history entry carries spec, seed and tree handles, fetchable like
    // every other kind.
    let history = repo.history_of_kind(QueryKind::Experiment).unwrap();
    assert_eq!(history.len(), 1);
    let entry = repo.history_entry(history[0].id).unwrap();
    assert_eq!(entry.params["name"], "grid");
    assert_eq!(entry.params["seed"], 2026);
    assert_eq!(entry.params["gold_tree"], handle.0);
    assert_eq!(entry.params["spec"]["replicates"], 3);
    assert_eq!(entry.params["recon_trees"].as_array().unwrap().len(), 18);
    assert_eq!(entry.params["result_ids"].as_array().unwrap().len(), 18);
}

#[test]
fn same_spec_twice_produces_identical_metrics() {
    let gold = build_gold(48, 200, 7);
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(dir.path().join("det.crimson"), opts()).unwrap();
    let handle = repo.load_gold_standard("gold", &gold).unwrap();

    // Same seed, different names AND different worker counts: neither the
    // grid name nor the parallel schedule may leak into the metrics.
    let mut first = grid_spec("first", 99, 1);
    first.compute_triplets = true;
    let mut second = grid_spec("second", 99, 4);
    second.compute_triplets = true;
    let a = ExperimentRunner::new(&mut repo, handle)
        .run(&first)
        .unwrap();
    let b = ExperimentRunner::new(&mut repo, handle)
        .run(&second)
        .unwrap();

    let fa = footprint(&repo, a.id);
    let fb = footprint(&repo, b.id);
    assert_eq!(fa, fb, "same spec must reproduce identical metrics");
    // Triplets too (not part of the footprint tuple).
    let ra = repo.experiment_results(a.id).unwrap();
    let rb = repo.experiment_results(b.id).unwrap();
    for (x, y) in ra.iter().zip(&rb) {
        assert_eq!(x.triplet, y.triplet);
    }
    // And a third run through `rerun` reproduces them again.
    let c = ExperimentRunner::new(&mut repo, handle)
        .rerun("first", "third")
        .unwrap();
    assert_eq!(footprint(&repo, c.id), fa);
}

#[test]
fn cell_seeds_differ_across_replicates_and_methods() {
    // The reproducibility contract: every cell draws from its own derived
    // seed, so replicates are independent yet reproducible.
    let gold = build_gold(64, 120, 3);
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(dir.path().join("seeds.crimson"), opts()).unwrap();
    let handle = repo.load_gold_standard("gold", &gold).unwrap();
    let spec = ExperimentSpec {
        name: "seeds".to_string(),
        methods: vec![Method::NeighborJoining],
        strategies: vec![SamplingStrategy::Uniform { k: 10 }],
        replicates: 4,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed: 5,
        workers: 2,
        cell_commits: false,
    };
    let record = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
    let results = repo.experiment_results(record.id).unwrap();
    assert_eq!(results.len(), 4);
    let mut samples = std::collections::HashSet::new();
    for (ri, r) in results.iter().enumerate() {
        assert_eq!(r.cell_seed, cell_seed(5, 0, ri));
        // Different replicate seeds draw different samples (the leaves of
        // the stored reconstructions differ).
        let mut names = repo.names_of(&repo.leaves(r.recon).unwrap()).unwrap();
        names.sort();
        samples.insert(names);
    }
    assert!(
        samples.len() > 1,
        "replicates must draw distinct samples, got {samples:?}"
    );
}

#[test]
fn cell_commits_sweep_matches_single_transaction_sweep() {
    // The incremental path (one group commit per cell + a finalizing
    // transaction) must persist exactly the same grid as the one-shot
    // transaction, and leave the same queryable record behind.
    let gold = build_gold(64, 200, 53);
    let dir = tempdir().unwrap();
    let path = dir.path().join("cells.crimson");
    let (mono_fp, cells_fp, cells_id) = {
        let mut repo = Repository::create(&path, opts()).unwrap();
        let handle = repo.load_gold_standard("gold", &gold).unwrap();
        let mono = grid_spec("mono", 77, 2);
        let mut cells = grid_spec("cells", 77, 2);
        cells.cell_commits = true;
        let a = ExperimentRunner::new(&mut repo, handle).run(&mono).unwrap();
        let b = ExperimentRunner::new(&mut repo, handle)
            .run(&cells)
            .unwrap();
        assert_eq!(a.runs, b.runs, "both sweeps cover the full grid");
        let record = repo.experiment_by_name("cells").unwrap();
        assert_eq!(record.runs, 18, "final row replaces the provisional one");
        assert!(record.wall_ms > 0.0, "final row carries the measured time");
        repo.integrity_check().unwrap();
        (footprint(&repo, a.id), footprint(&repo, b.id), b.id)
    };
    assert_eq!(
        mono_fp, cells_fp,
        "cell commits must not change the metrics"
    );

    // Reopen without flush: every per-cell group commit was durable.
    let repo = Repository::open(&path, opts()).unwrap();
    repo.integrity_check().unwrap();
    assert_eq!(footprint(&repo, cells_id), cells_fp);
    assert_eq!(
        repo.history_of_kind(QueryKind::Experiment).unwrap().len(),
        2
    );
}

#[test]
fn crash_mid_cell_commits_sweep_keeps_committed_prefix() {
    // With per-cell commits an interrupted sweep is *not* all-or-nothing —
    // that is the point: the committed prefix of cells survives, anchored
    // by the provisional experiment row, and the integrity check stays
    // green. A retry under a fresh name completes the study.
    let gold = build_gold(96, 150, 17);
    let dir = tempdir().unwrap();
    let path = dir.path().join("crash-cells.crimson");
    let small = RepositoryOptions {
        frame_depth: 8,
        buffer_pool_pages: 32,
        ..Default::default()
    };
    let mut spec = ExperimentSpec {
        name: "doomed".to_string(),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![SamplingStrategy::Uniform { k: 24 }],
        replicates: 3,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed: 23,
        workers: 2,
        cell_commits: true,
    };
    let handle;
    {
        let mut repo = Repository::create(&path, small.clone()).unwrap();
        handle = repo.load_gold_standard("gold", &gold).unwrap();
        repo.flush().unwrap();
        // Deep enough that the provisional row and some cells commit first.
        repo.inject_crash(CrashPoint::WalAppend(60));
        let run = ExperimentRunner::new(&mut repo, handle).run(&spec);
        assert!(run.is_err(), "injected crash must interrupt the sweep");
        // Crash: drop without flush (the in-process cleanup also died).
    }

    let mut repo = Repository::open(&path, small).unwrap();
    repo.recovery_report().expect("reopen reports recovery");
    let report = repo.integrity_check().unwrap();
    assert_eq!(
        report.experiments, 1,
        "the provisional row anchors the prefix"
    );
    assert!(
        (report.experiment_results as usize) < 6,
        "the crash must interrupt before the grid completes"
    );
    let record = repo.experiment_by_name("doomed").unwrap();
    let committed = repo.experiment_results(record.id).unwrap();
    assert_eq!(committed.len() as u64, report.experiment_results);
    for r in &committed {
        // Each committed cell is complete: metrics, clade rows and a
        // queryable reconstruction landed in its own group commit.
        assert!(!repo.experiment_clades(r.id).unwrap().is_empty());
        assert_eq!(
            repo.leaves(r.recon).unwrap().len(),
            r.sample_size,
            "committed cell's reconstruction must be intact"
        );
    }

    // The study completes under a fresh name on the recovered repository.
    spec.name = "retry".to_string();
    let retry = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
    assert_eq!(retry.runs, 6);
    let after = repo.integrity_check().unwrap();
    assert_eq!(after.experiments, 2);
    assert_eq!(after.experiment_results as usize, 6 + committed.len());
}

/// Arm a crash point, attempt a sweep (it must fail), "die" without
/// flushing, reopen and verify that recovery leaves no trace of the
/// experiment; then retry the identical sweep successfully.
fn crash_scenario(point: CrashPoint, label: &str) {
    let gold = build_gold(96, 150, 17);
    let dir = tempdir().unwrap();
    let path = dir.path().join(format!("crash-{label}.crimson"));
    let small = RepositoryOptions {
        frame_depth: 8,
        // A tiny pool forces evictions mid-sweep so data-write crash
        // points land on the steal path as well as the commit path.
        buffer_pool_pages: 32,
        ..Default::default()
    };
    let spec = ExperimentSpec {
        name: "doomed".to_string(),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![SamplingStrategy::Uniform { k: 24 }],
        replicates: 3,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed: 23,
        workers: 2,
        cell_commits: false,
    };
    let handle;
    {
        let mut repo = Repository::create(&path, small.clone()).unwrap();
        handle = repo.load_gold_standard("gold", &gold).unwrap();
        repo.flush().unwrap();
        repo.inject_crash(point);
        let run = ExperimentRunner::new(&mut repo, handle).run(&spec);
        assert!(run.is_err(), "{label}: injected crash must interrupt");
        // Crash: drop without flush.
    }

    let mut repo = Repository::open(&path, small).unwrap();
    repo.recovery_report()
        .expect("reopen after crash reports recovery");
    let report = repo.integrity_check().unwrap();
    assert_eq!(report.experiments, 0, "{label}: no orphan experiment row");
    assert_eq!(report.experiment_results, 0, "{label}: no orphan results");
    assert_eq!(report.experiment_clades, 0, "{label}: no orphan clade rows");
    assert_eq!(
        repo.list_trees().unwrap().len(),
        1,
        "{label}: no orphan reconstructed tree"
    );
    assert!(
        repo.history_of_kind(QueryKind::Experiment)
            .unwrap()
            .is_empty(),
        "{label}: no orphan history entry"
    );

    // The retried run succeeds and persists the full grid.
    let record = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
    assert_eq!(record.runs, 6);
    let after = repo.integrity_check().unwrap();
    assert_eq!(after.experiments, 1);
    assert_eq!(after.experiment_results, 6);
    assert!(after.experiment_clades > 0);
}

#[test]
fn crash_at_wal_append_mid_commit_leaves_no_orphans() {
    crash_scenario(CrashPoint::WalAppend(5), "wal-append");
}

#[test]
fn crash_at_data_write_mid_sweep_leaves_no_orphans() {
    crash_scenario(CrashPoint::DataWrite(3), "data-write");
}

#[test]
fn crash_at_checkpoint_truncate_after_sweep_keeps_the_experiment() {
    // A crash at checkpoint truncation happens *after* the commit: the
    // experiment must survive recovery intact.
    let gold = build_gold(32, 120, 29);
    let dir = tempdir().unwrap();
    let path = dir.path().join("crash-ckpt.crimson");
    let spec = ExperimentSpec {
        name: "survivor".to_string(),
        methods: vec![Method::NeighborJoining],
        strategies: vec![SamplingStrategy::Uniform { k: 8 }],
        replicates: 2,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed: 31,
        workers: 2,
        cell_commits: false,
    };
    let (exp_id, before) = {
        let mut repo = Repository::create(&path, opts()).unwrap();
        let handle = repo.load_gold_standard("gold", &gold).unwrap();
        let record = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
        let before = footprint(&repo, record.id);
        repo.inject_crash(CrashPoint::CheckpointTruncate);
        assert!(repo.flush().is_err(), "injected checkpoint crash");
        (record.id, before)
        // Crash: drop without a successful flush.
    };
    let repo = Repository::open(&path, opts()).unwrap();
    repo.integrity_check().unwrap();
    assert_eq!(repo.experiment_by_name("survivor").unwrap().id, exp_id);
    assert_eq!(footprint(&repo, exp_id), before);
}
