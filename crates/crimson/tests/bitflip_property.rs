//! Bit-flip property test: any single flipped bit in a cleanly-written
//! repository file must be *detected* — either the open fails with a typed
//! error, or a scrub pass flags the damaged page. Zero false accepts, and
//! never a panic.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crimson::{Repository, RepositoryOptions};
use phylo::newick;
use simulation::birth_death::yule_tree;
use storage::PAGE_SIZE;

/// splitmix64: the same deterministic generator the fault schedule uses.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn flip_bit(path: &Path, byte_offset: u64, bit: u32) {
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .unwrap();
    f.seek(SeekFrom::Start(byte_offset)).unwrap();
    let mut b = [0u8; 1];
    f.read_exact(&mut b).unwrap();
    b[0] ^= 1 << bit;
    f.seek(SeekFrom::Start(byte_offset)).unwrap();
    f.write_all(&b).unwrap();
    f.sync_all().unwrap();
}

fn small_opts() -> RepositoryOptions {
    RepositoryOptions {
        frame_depth: 4,
        buffer_pool_pages: 64,
        ..Default::default()
    }
}

/// Build a repository, load a tree, checkpoint and close cleanly.
fn build_repo(path: &Path) {
    let tree = yule_tree(60, 1.0, 11);
    let nwk = newick::write(&tree);
    let mut repo = Repository::create(path, small_opts()).unwrap();
    repo.load_newick("prop", &nwk).unwrap();
    repo.flush().unwrap();
}

#[test]
fn every_single_bit_flip_in_a_data_page_is_detected() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    build_repo(&path);
    let file_len = std::fs::metadata(&path).unwrap().len();
    let page_count = file_len / PAGE_SIZE as u64;
    assert!(
        page_count > 4,
        "need a multi-page repository, got {page_count}"
    );

    let mut rng = 0x0B17_F11F_u64;
    let trials = 220usize;
    let mut detected = 0usize;
    for trial in 0..trials {
        // Pick a non-header page and a bit within it.
        let pid = 1 + splitmix64(&mut rng) % (page_count - 1);
        let byte = splitmix64(&mut rng) % PAGE_SIZE as u64;
        let bit = (splitmix64(&mut rng) % 8) as u32;
        let offset = pid * PAGE_SIZE as u64 + byte;
        flip_bit(&path, offset, bit);

        // Detection = the open itself fails typed, or the scrub pass flags
        // the damaged page. Either way: no panic, no silent acceptance.
        let caught = match Repository::open(&path, small_opts()) {
            Err(e) => {
                assert!(
                    format!("{e}").contains("checksum")
                        || format!("{e}").contains("corrupt")
                        || format!("{e}").contains("not a Crimson database")
                        || format!("{e}").contains("invalid"),
                    "trial {trial}: open error must be typed corruption, got {e}"
                );
                true
            }
            Ok(repo) => {
                let report = repo.scrub(Default::default()).unwrap();
                report.pages.pages_quarantined + report.pages.pages_repaired >= 1
            }
        };
        assert!(
            caught,
            "trial {trial}: flipped bit {bit} of byte {offset} (page {pid}) was silently accepted"
        );
        detected += 1;

        // Undo the flip; the file is bit-identical again.
        flip_bit(&path, offset, bit);
    }
    assert_eq!(detected, trials, "zero false accepts required");

    // After all that, the pristine file still opens and verifies cleanly.
    let repo = Repository::open(&path, small_opts()).unwrap();
    let report = repo.scrub(Default::default()).unwrap();
    assert_eq!(report.pages.pages_quarantined, 0);
    assert!(report.integrity.is_some());
}

#[test]
fn header_bit_flips_yield_a_typed_invalid_database_error() {
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    build_repo(&path);

    let mut rng = 0x0EADu64;
    for trial in 0..24 {
        let byte = splitmix64(&mut rng) % PAGE_SIZE as u64;
        let bit = (splitmix64(&mut rng) % 8) as u32;
        flip_bit(&path, byte, bit);
        match Repository::open(&path, small_opts()) {
            Err(e) => {
                let msg = format!("{e}");
                assert!(
                    msg.contains("not a Crimson database")
                        || msg.contains("invalid")
                        || msg.contains("checksum")
                        || msg.contains("corrupt"),
                    "trial {trial}: header flip must be a typed error, got {msg}"
                );
            }
            Ok(_) => panic!("trial {trial}: header flip (byte {byte} bit {bit}) was accepted"),
        }
        flip_bit(&path, byte, bit);
    }
}
