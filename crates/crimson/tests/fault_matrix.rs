//! Fault matrix: randomized fault schedules crossed with representative
//! workloads. Under injected media faults every workload must either
//! complete correctly, fail with a typed error, or repair itself — never
//! panic, and never return wrong results (reads are cross-validated against
//! a fault-free rerun and the `*_reference` query paths).

use crimson::prelude::*;
use phylo::newick;
use simulation::birth_death::yule_tree;
use simulation::gold::GoldStandardBuilder;
use storage::{shared_schedule, FaultConfig, FaultSchedule, ScrubOptions, SharedFaultSchedule};
use tempfile::tempdir;

fn small_opts() -> RepositoryOptions {
    RepositoryOptions {
        frame_depth: 4,
        buffer_pool_pages: 48,
        ..Default::default()
    }
}

fn tree_newick(leaves: usize, seed: u64) -> String {
    newick::write(&yule_tree(leaves, 1.0, seed))
}

/// Interval-index query paths must agree with the reference paths.
fn cross_validate(repo: &Repository, handle: TreeHandle) {
    let leaves = repo.leaves(handle).expect("leaves");
    assert!(!leaves.is_empty());
    for i in 0..12usize {
        let a = leaves[(i * 7) % leaves.len()];
        let b = leaves[(i * 13 + 3) % leaves.len()];
        assert_eq!(
            repo.lca(a, b).expect("lca"),
            repo.lca_label_walk(a, b).expect("reference lca")
        );
    }
    let sample: Vec<StoredNodeId> = leaves.iter().step_by(4).take(20).copied().collect();
    let mut clade = repo.minimal_spanning_clade(&sample).expect("clade");
    let mut clade_ref = repo
        .minimal_spanning_clade_reference(&sample)
        .expect("reference clade");
    clade.sort_unstable();
    clade_ref.sort_unstable();
    assert_eq!(clade, clade_ref);
}

struct Baseline {
    base: TreeHandle,
    gold: TreeHandle,
}

/// Create a clean repository with a committed base tree and gold standard.
fn build_baseline(path: &std::path::Path, seed: u64) -> (Repository, Baseline) {
    let mut repo = Repository::create(path, small_opts()).unwrap();
    let base = repo
        .load_newick("base", &tree_newick(90, seed | 1))
        .unwrap()
        .handle;
    let gold_data = GoldStandardBuilder::new()
        .leaves(40)
        .sequence_length(60)
        .seed(seed | 1)
        .build()
        .unwrap();
    let gold = repo.load_gold_standard("gold", &gold_data).unwrap();
    repo.flush().unwrap();
    (repo, Baseline { base, gold })
}

fn install_faults(repo: &Repository, seed: u64) -> SharedFaultSchedule {
    let schedule =
        shared_schedule(FaultSchedule::from_seed(seed, FaultConfig::light()).with_fault_budget(16));
    repo.install_fault_schedule(schedule.clone()).unwrap();
    schedule
}

/// After the faulty phase: the repository (in-process, faults disarmed)
/// must be scrubbable; if the scrub quarantines nothing, the catalog and
/// query paths must be fully intact. Then a fresh fault-free open of the
/// same file must come up clean, degraded, or fail typed — never panic.
fn assert_recoverable(repo: Repository, baseline: &Baseline, path: &std::path::Path) {
    if !repo.is_poisoned() {
        let report = repo
            .scrub(ScrubOptions::default())
            .expect("scrub never panics");
        if report.pages.pages_quarantined == 0 {
            repo.integrity_check().expect("integrity on clean pages");
            cross_validate(&repo, baseline.base);
        }
    }
    drop(repo);

    match Repository::open(path, small_opts()) {
        Ok(reopened) => {
            let report = reopened.scrub(ScrubOptions::default()).expect("scrub");
            if report.pages.pages_quarantined == 0 {
                reopened.integrity_check().expect("integrity after reopen");
            } else {
                // Persisted damage with no repair source left: the degraded
                // open must still produce a survey instead of panicking.
                drop(reopened);
                let (degraded, survey) =
                    Repository::open_degraded(path, small_opts()).expect("degraded open");
                assert!(degraded.read_only());
                assert!(!degraded.quarantined_pages().is_empty());
                let _ = survey.is_clean();
            }
        }
        Err(e) => {
            // A typed refusal is acceptable (e.g. a flipped WAL/header byte);
            // the degraded path may also refuse, but only with a typed error.
            let _ = format!("{e}");
            if let Ok((degraded, _survey)) = Repository::open_degraded(path, small_opts()) {
                assert!(degraded.read_only());
            }
        }
    }
}

#[test]
fn bulk_load_under_fault_schedules() {
    for seed in [3u64, 17, 40, 71] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let (mut repo, baseline) = build_baseline(&path, seed);
        let schedule = install_faults(&repo, seed);

        let mut loaded = Vec::new();
        for (i, leaves) in [120usize, 150, 180].iter().enumerate() {
            let nwk = tree_newick(*leaves, seed.wrapping_mul(31) + i as u64);
            match repo.load_newick(&format!("bulk-{i}"), &nwk) {
                Ok(report) => loaded.push(report.handle),
                Err(e) => {
                    // Typed failure; the repository must stay consistent.
                    let _ = format!("{e}");
                    break;
                }
            }
        }
        schedule.lock().disarm();
        // Heal any latent damage first, then every successfully-loaded tree
        // must answer queries identically on both index paths.
        let report = repo.scrub(ScrubOptions::default()).expect("scrub");
        if report.pages.pages_quarantined == 0 {
            for handle in loaded {
                cross_validate(&repo, handle);
            }
        }
        assert_recoverable(repo, &baseline, &path);
    }
}

#[test]
fn experiment_sweeps_under_fault_schedules() {
    for seed in [5u64, 23, 58] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let (mut repo, baseline) = build_baseline(&path, seed);
        let schedule = install_faults(&repo, seed);

        let spec = ExperimentSpec {
            name: format!("sweep-{seed}"),
            methods: vec![Method::Upgma, Method::NeighborJoining],
            strategies: vec![SamplingStrategy::Uniform { k: 8 }],
            replicates: 2,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed,
            workers: 2,
            cell_commits: false,
        };
        let gold = baseline.gold;
        match ExperimentRunner::new(&mut repo, gold).run(&spec) {
            Ok(record) => {
                schedule.lock().disarm();
                let results = repo.experiment_results(record.id).expect("results");
                assert_eq!(results.len(), spec.methods.len() * spec.replicates);
            }
            Err(e) => {
                let _ = format!("{e}");
            }
        }
        schedule.lock().disarm();
        assert_recoverable(repo, &baseline, &path);
    }
}

#[test]
fn mixed_query_batches_under_fault_schedules() {
    for seed in [9u64, 33, 64] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let (repo, baseline) = build_baseline(&path, seed);
        let leaves = repo.leaves(baseline.base).unwrap();
        let mut batch = QueryBatch::new();
        for i in 0..10usize {
            let a = leaves[(i * 5) % leaves.len()];
            let b = leaves[(i * 11 + 2) % leaves.len()];
            batch.push(BatchQuery::Lca(a, b));
            batch.push(BatchQuery::IsAncestor(a, b));
        }
        batch.push(BatchQuery::SpanningClade(
            leaves.iter().step_by(6).take(12).copied().collect(),
        ));

        let schedule = install_faults(&repo, seed);
        let faulty = batch.execute(&repo, 3).expect("batch dispatch");
        schedule.lock().disarm();
        let reference = batch.execute(&repo, 1).expect("reference batch");

        // Every answer produced under faults must match the fault-free
        // rerun; failures must be typed errors, never wrong answers.
        assert_eq!(faulty.len(), reference.len());
        for (i, (f, r)) in faulty.iter().zip(reference.iter()).enumerate() {
            match (f, r) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(
                        format!("{a:?}"),
                        format!("{b:?}"),
                        "query {i} answer differs"
                    );
                }
                (Err(e), _) => {
                    let _ = format!("{e}");
                }
                (Ok(_), Err(e)) => panic!("reference rerun failed without faults: {e}"),
            }
        }
        assert_recoverable(repo, &baseline, &path);
    }
}

#[test]
fn repeated_checkpoints_under_fault_schedules() {
    for seed in [13u64, 47, 88] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let (mut repo, baseline) = build_baseline(&path, seed);
        let schedule = install_faults(&repo, seed);

        for round in 0..3u64 {
            let nwk = tree_newick(40, seed.wrapping_mul(7) + round);
            let load = repo.load_newick(&format!("ckpt-{round}"), &nwk);
            let flush = repo.flush();
            if let Err(e) = load.map(|_| ()).and(flush) {
                let _ = format!("{e}");
                break;
            }
        }
        schedule.lock().disarm();
        assert_recoverable(repo, &baseline, &path);
    }
}
