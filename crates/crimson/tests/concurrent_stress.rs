//! Concurrency stress harness for the shared read path.
//!
//! Four reader threads hammer LCA / ancestor / spanning-clade / projection
//! queries on trees loaded before they start, while the main thread keeps
//! loading new trees, recording history and checkpointing — the shared-
//! service workload the paper pitches. Every fast-path result is
//! cross-validated in-thread against the pre-interval-index `*_reference`
//! implementation (or a semantic invariant), so a single torn read, stale
//! cache entry or latch bug surfaces as an assertion failure, not a flaky
//! number.
//!
//! The harness asserts ≥ 10,000 cross-validated queries across ≥ 4 reader
//! threads with zero mismatches, that every concurrent load committed, and
//! that the repository passes its integrity check afterwards. Run it under
//! `RUST_TEST_THREADS=1` to keep the wall-clock budget honest — the test
//! brings its own threads.

use crimson::prelude::*;
use rand::prelude::*;
use simulation::birth_death::yule_tree;
use std::sync::atomic::{AtomicU64, Ordering};

const READERS: usize = 4;
const ITERS: usize = 800;
const WRITER_LOADS: usize = 6;

#[test]
fn four_readers_cross_validate_while_writer_loads() {
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("stress.crimson"),
        RepositoryOptions {
            frame_depth: 8,
            buffer_pool_pages: 2048,
            ..Default::default()
        },
    )
    .unwrap();
    let t1 = repo.load_tree("base1", &yule_tree(300, 1.0, 11)).unwrap();
    let t2 = repo.load_tree("base2", &yule_tree(250, 1.0, 22)).unwrap();
    repo.flush().unwrap();
    let leaves1 = repo.leaves(t1).unwrap();
    let leaves2 = repo.leaves(t2).unwrap();
    let baseline_stats = repo.buffer_stats();

    let validated = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for reader_id in 0..READERS {
            let reader = repo.reader().unwrap();
            let leaves1 = &leaves1;
            let leaves2 = &leaves2;
            let validated = &validated;
            scope.spawn(move || {
                // Deterministic per-thread seed: the workload is
                // reproducible, the threads diverge.
                let mut rng = StdRng::seed_from_u64(0x9E3779B97F4A7C15 ^ (reader_id as u64 + 1));
                for i in 0..ITERS {
                    let (handle, leaves) = if i % 2 == 0 {
                        (t1, &leaves1[..])
                    } else {
                        (t2, &leaves2[..])
                    };
                    let a = *leaves.choose(&mut rng).expect("non-empty");
                    let b = *leaves.choose(&mut rng).expect("non-empty");

                    // LCA: interval walk vs. Dewey label walk.
                    let fast = reader.lca(a, b).expect("lca");
                    let slow = reader.lca_label_walk(a, b).expect("reference lca");
                    assert_eq!(fast, slow, "lca mismatch for ({a}, {b})");
                    validated.fetch_add(1, Ordering::Relaxed);

                    // Ancestor tests: the LCA must cover both arguments, and
                    // a leaf never covers a distinct LCA.
                    assert!(reader.is_ancestor(fast, a).expect("ancestor a"));
                    assert!(reader.is_ancestor(fast, b).expect("ancestor b"));
                    if fast != a {
                        assert!(!reader.is_ancestor(a, fast).expect("reverse"));
                    }
                    validated.fetch_add(2, Ordering::Relaxed);

                    if i % 8 == 0 {
                        let c = *leaves.choose(&mut rng).expect("non-empty");
                        let set = [a, b, c];
                        let mut clade = reader.minimal_spanning_clade(&set).expect("clade");
                        let mut reference = reader
                            .minimal_spanning_clade_reference(&set)
                            .expect("reference clade");
                        // The fast path yields pre-order, the reference BFS
                        // order; compare as sets.
                        clade.sort();
                        reference.sort();
                        assert_eq!(clade, reference, "clade mismatch for {set:?}");
                        validated.fetch_add(1, Ordering::Relaxed);
                    }

                    if i % 16 == 0 {
                        let sel: Vec<StoredNodeId> = leaves
                            .iter()
                            .skip(i % 5)
                            .step_by(7 + reader_id % 3)
                            .copied()
                            .collect();
                        let fast = reader.project(handle, &sel).expect("projection");
                        let slow = reader
                            .project_reference(handle, &sel)
                            .expect("reference projection");
                        assert!(
                            phylo::ops::isomorphic_with_lengths(&fast, &slow, 1e-9),
                            "projection mismatch on {} leaves",
                            sel.len()
                        );
                        validated.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        // The writer keeps the repository busy the whole time: new trees,
        // history rows, checkpoints. None of this may disturb the readers.
        // The group-commit counters are sampled after every load: they must
        // grow monotonically under concurrency (no lost or torn updates).
        let mut prev = baseline_stats;
        for i in 0..WRITER_LOADS {
            let tree = yule_tree(150 + i * 20, 1.0, 100 + i as u64);
            let handle = repo
                .load_tree(&format!("load{i}"), &tree)
                .expect("concurrent load");
            assert_eq!(repo.leaves(handle).unwrap().len(), tree.leaf_count());
            repo.record_query(
                QueryKind::Load,
                serde_json::json!({ "tree": format!("load{i}") }),
                "stress load",
            )
            .expect("history row");
            if i % 2 == 1 {
                repo.flush().expect("checkpoint under readers");
            }
            let now = repo.buffer_stats();
            assert!(now.group_commits > prev.group_commits, "load {i} committed");
            assert!(now.group_commit_members >= prev.group_commit_members);
            assert!(now.fsyncs_saved >= prev.fsyncs_saved);
            // Versioned reads pin an epoch instead of racing the commit:
            // the retry counter (now only the cold snapshot-retired
            // re-pin) must stay flat however fast the writer commits.
            assert_eq!(
                now.reader_retries, baseline_stats.reader_retries,
                "a reader re-pinned under load {i}: versioned reads must not retry"
            );
            assert_eq!(
                now.fsyncs_saved,
                now.group_commit_members - now.group_commits,
                "members-minus-rounds identity broken at load {i}"
            );
            prev = now;
        }
    });

    let total = validated.load(Ordering::Relaxed);
    assert!(
        total >= 10_000,
        "stress harness must cross-validate ≥ 10k queries, got {total}"
    );

    // No counter updates were lost to races: every page request was counted
    // as either a hit or a miss (monotone, and far beyond the baseline).
    let stats = repo.buffer_stats();
    assert!(stats.page_reads() > baseline_stats.page_reads());
    assert_eq!(
        stats.reader_retries, baseline_stats.reader_retries,
        "zero snapshot re-pins across the whole stress run"
    );

    // Version-chain GC leaves nothing pinned behind: with every reader
    // dropped and no transaction open, the pool's version accounting is
    // back to baseline (no leaked epochs, no leaked page versions).
    assert_eq!(repo.pinned_epochs(), 0, "leaked reader epoch pins");
    assert_eq!(repo.version_pages(), 0, "leaked page version chains");

    // Everything the writer did landed, and the repository is intact.
    assert_eq!(repo.list_trees().unwrap().len(), 2 + WRITER_LOADS);
    assert_eq!(
        repo.history_of_kind(QueryKind::Load).unwrap().len(),
        WRITER_LOADS
    );
    repo.flush().unwrap();
    let report = repo.integrity_check().expect("integrity after stress");
    assert_eq!(report.trees, 2 + WRITER_LOADS as u64);
}

/// A reader created *before* any tree exists must pick up later commits —
/// the generation-based catalog refresh path.
#[test]
fn reader_created_on_empty_repository_sees_later_loads() {
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("fresh.crimson"),
        RepositoryOptions {
            frame_depth: 4,
            buffer_pool_pages: 512,
            ..Default::default()
        },
    )
    .unwrap();
    let reader = repo.reader().unwrap();
    assert!(reader.list_trees().unwrap().is_empty());
    let handle = repo.load_tree("late", &yule_tree(60, 1.0, 3)).unwrap();
    assert_eq!(reader.list_trees().unwrap().len(), 1);
    let leaves = reader.leaves(handle).unwrap();
    assert_eq!(leaves.len(), 60);
    let lca = reader.lca(leaves[0], leaves[59]).unwrap();
    assert_eq!(lca, reader.lca_label_walk(leaves[0], leaves[59]).unwrap());
}
