//! Reader-starvation regression test for versioned (epoch-pinned) reads.
//!
//! Before MVCC, a snapshot read bracketed the pool's read generation and
//! retried when a commit landed mid-operation: a reader with a two-attempt
//! budget racing a writer committing back-to-back was all but guaranteed to
//! exhaust its budget and fail `CrimsonError::Busy`. With versioned reads
//! the same configuration must observe **zero** `Busy` errors and zero
//! cross-validation mismatches, because every operation runs against a
//! pinned epoch that commits cannot disturb — and a long-lived pin must see
//! a frozen tree list across all one hundred commits.

use crimson::prelude::*;
use rand::prelude::*;
use simulation::birth_death::yule_tree;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[test]
fn two_attempt_reader_never_starves_under_continuous_commits() {
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("starve.crimson"),
        RepositoryOptions {
            frame_depth: 8,
            buffer_pool_pages: 2048,
            ..Default::default()
        },
    )
    .unwrap();
    // Same leaf count (and thus the same generated leaf set) so the
    // stored comparison is well-defined; different seeds give different
    // topologies.
    let ta = repo.load_tree("base_a", &yule_tree(100, 1.0, 7)).unwrap();
    let tb = repo.load_tree("base_b", &yule_tree(100, 1.0, 8)).unwrap();
    repo.flush().unwrap();
    let leaves_a = repo.leaves(ta).unwrap();
    let baseline = repo.buffer_stats();

    // attempts: 2 previously guaranteed Busy against a back-to-back
    // committer; under MVCC the budget is never touched.
    let mut reader = repo.reader().unwrap();
    reader.set_read_retry(ReadRetry {
        attempts: 2,
        ..Default::default()
    });
    let reader = reader;

    let stop = AtomicBool::new(false);
    let queries = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let reader_ref = &reader;
        let stop_ref = &stop;
        let queries_ref = &queries;
        let leaves = &leaves_a;
        scope.spawn(move || {
            let mut rng = StdRng::seed_from_u64(42);
            let mut done = false;
            // Keep querying until the writer finishes, then one more full
            // round so some queries demonstrably overlap the commit storm.
            while !done {
                done = stop_ref.load(Ordering::Relaxed);
                let trees = reader_ref
                    .list_trees()
                    .expect("list_trees must never go Busy");
                assert!(trees.len() >= 2, "base trees must always be visible");
                let cmp = reader_ref
                    .compare_stored(ta, tb, false)
                    .expect("compare_stored must never go Busy");
                // The bases never change: the multi-page comparison must
                // come back identical every round, whatever commits land.
                assert_eq!(cmp.rf, reader_ref.compare_stored(ta, tb, false).unwrap().rf);
                let a = *leaves.choose(&mut rng).unwrap();
                let b = *leaves.choose(&mut rng).unwrap();
                let fast = reader_ref.lca(a, b).expect("lca");
                let slow = reader_ref.lca_label_walk(a, b).expect("reference lca");
                assert_eq!(fast, slow, "lca mismatch under commit storm");
                queries_ref.fetch_add(3, Ordering::Relaxed);
            }
        });

        // A pinned epoch taken before the storm must see a frozen tree
        // list across every one of the hundred commits.
        let pinned = reader.pin().expect("pin epoch");
        let frozen = pinned.list_trees().expect("pinned list").len();
        assert_eq!(frozen, 2);
        for i in 0..100 {
            let tree = yule_tree(20 + i % 7, 1.0, 1000 + i as u64);
            repo.load_tree(&format!("storm{i}"), &tree)
                .expect("storm load");
            assert_eq!(
                pinned.list_trees().expect("pinned list under storm").len(),
                frozen,
                "pinned epoch saw commit {i}"
            );
        }
        drop(pinned);
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        queries.load(Ordering::Relaxed) > 0,
        "the reader thread must have run"
    );
    // Zero re-pins: the retry counter (now only the cold snapshot-retired
    // path) never moved, so the two-attempt budget was never touched.
    let stats = repo.buffer_stats();
    assert_eq!(
        stats.reader_retries, baseline.reader_retries,
        "versioned reads must not retry under a continuous committer"
    );
    // A fresh snapshot sees everything the storm committed, and nothing
    // leaked from the long-held pin.
    assert_eq!(repo.list_trees().unwrap().len(), 102);
    let reader2 = repo.reader().unwrap();
    assert_eq!(reader2.list_trees().unwrap().len(), 102);
    assert_eq!(repo.pinned_epochs(), 0, "leaked epoch pins");
    assert_eq!(repo.version_pages(), 0, "leaked version chains");
}
