//! Crash-injection harness for the repository layer.
//!
//! Each scenario loads a committed baseline tree, injects a simulated crash
//! at a WAL-append, data-write (eviction / checkpoint flush) or
//! checkpoint-truncation point, attempts a second load, "dies" (drops the
//! repository without flushing), reopens, and asserts that exactly the
//! committed loads are visible:
//!
//! * [`Repository::integrity_check`] passes — no orphan node / frame /
//!   species rows, interval indexes consistent with the node table;
//! * the interval-index query paths cross-validate against the pre-index
//!   `*_reference` implementations on the recovered data;
//! * the Query Repository holds exactly one `Load` entry per committed load
//!   (loads and their history entries commit atomically).

use crimson::prelude::*;
use phylo::newick;
use simulation::birth_death::yule_tree;
use storage::CrashPoint;
use tempfile::tempdir;

fn small_opts() -> RepositoryOptions {
    // A tiny pool forces evictions (steals) during the victim load, so
    // data-write crash points land on the eviction path too.
    RepositoryOptions {
        frame_depth: 4,
        buffer_pool_pages: 32,
        ..Default::default()
    }
}

fn tree_newick(leaves: usize, seed: u64) -> String {
    newick::write(&yule_tree(leaves, 1.0, seed))
}

/// Cross-validate the interval-index query paths against the label-walk /
/// BFS reference paths on the recovered repository.
fn cross_validate(repo: &Repository, handle: TreeHandle) {
    let leaves = repo.leaves(handle).expect("leaves");
    assert!(!leaves.is_empty());
    for i in 0..20usize {
        let a = leaves[(i * 7) % leaves.len()];
        let b = leaves[(i * 13 + 3) % leaves.len()];
        let fast = repo.lca(a, b).expect("lca");
        let reference = repo.lca_label_walk(a, b).expect("reference lca");
        assert_eq!(fast, reference, "lca({a}, {b}) disagrees after recovery");
    }
    let sample: Vec<StoredNodeId> = leaves.iter().step_by(5).take(24).copied().collect();
    // The fast path yields pre-order, the reference BFS order; compare sets.
    let mut clade = repo.minimal_spanning_clade(&sample).expect("clade");
    let mut clade_ref = repo
        .minimal_spanning_clade_reference(&sample)
        .expect("reference clade");
    clade.sort_unstable();
    clade_ref.sort_unstable();
    assert_eq!(clade, clade_ref, "spanning clade disagrees after recovery");
    let proj = repo.project(handle, &sample).expect("projection");
    let proj_ref = repo
        .project_reference(handle, &sample)
        .expect("reference projection");
    assert!(
        phylo::ops::isomorphic_with_lengths(&proj, &proj_ref, 1e-9),
        "projection disagrees after recovery"
    );
}

/// Run one crash scenario; returns the number of committed trees observed
/// after recovery (1 = crash interrupted the victim load, 2 = the workload
/// outran the injection point).
fn crash_scenario(point: CrashPoint) -> usize {
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    let base = tree_newick(90, 7);
    let victim = tree_newick(260, 8);
    let victim_committed;
    {
        let mut repo = Repository::create(&path, small_opts()).unwrap();
        repo.load_newick("base", &base).unwrap();
        repo.inject_crash(point);
        victim_committed = repo.load_newick("victim", &victim).is_ok();
        // Crash: drop without flush.
    }
    let repo = Repository::open(&path, small_opts()).unwrap();
    let report = repo.recovery_report().expect("reopen must report recovery");
    let committed = if victim_committed { 2 } else { 1 };

    let integrity = repo
        .integrity_check()
        .unwrap_or_else(|e| panic!("integrity check failed after crash at {point:?}: {e}"));
    assert_eq!(
        integrity.trees as usize, committed,
        "crash at {point:?}: wrong tree count (recovery: {report:?})"
    );
    // The Query Repository matches the committed loads exactly.
    let loads = repo.history_of_kind(QueryKind::Load).unwrap();
    assert_eq!(
        loads.len(),
        committed,
        "crash at {point:?}: history entries must match committed loads"
    );

    let base_rec = repo
        .tree_by_name("base")
        .expect("committed baseline must survive");
    cross_validate(&repo, base_rec.handle);
    if victim_committed {
        let victim_rec = repo
            .tree_by_name("victim")
            .expect("committed victim must survive");
        cross_validate(&repo, victim_rec.handle);
    } else {
        assert!(
            repo.find_tree("victim").unwrap().is_none(),
            "crash at {point:?}: interrupted load must be invisible"
        );
    }
    committed
}

#[test]
fn crash_during_wal_appends_recovers_committed_state() {
    let mut interrupted = 0;
    for n in [0u64, 1, 2, 3, 5, 9, 17, 33] {
        if crash_scenario(CrashPoint::WalAppend(n)) == 1 {
            interrupted += 1;
        }
    }
    assert!(
        interrupted >= 4,
        "most WAL-append points must interrupt the load"
    );
}

#[test]
fn crash_during_evictions_recovers_committed_state() {
    let mut interrupted = 0;
    for n in [0u64, 1, 2, 4, 8, 16, 32] {
        if crash_scenario(CrashPoint::DataWrite(n)) == 1 {
            interrupted += 1;
        }
    }
    assert!(
        interrupted >= 3,
        "most data-write points must interrupt the load"
    );
}

#[test]
fn crash_at_group_fsync_is_all_or_nothing_and_cross_validates() {
    // The group fsync is the batched durability point: when it fails, the
    // victim load surfaces an error and the writer is poisoned, but the
    // victim's log records may already sit in the WAL file (fsync failure
    // leaves durability *indeterminate*, not rolled back). After reopen the
    // victim is therefore recovered fully or not at all — and whatever is
    // present must pass the integrity check and agree with the `*_reference`
    // query paths.
    for n in [0u64, 1] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let base = tree_newick(90, 21);
        let victim = tree_newick(200, 22);
        let victim_committed;
        {
            let mut repo = Repository::create(&path, small_opts()).unwrap();
            repo.load_newick("base", &base).unwrap();
            repo.inject_crash(CrashPoint::WalSync(n));
            victim_committed = repo.load_newick("victim", &victim).is_ok();
            // Crash: drop without flush.
        }
        let repo = Repository::open(&path, small_opts()).unwrap();
        let integrity = repo
            .integrity_check()
            .unwrap_or_else(|e| panic!("integrity failed after group-fsync crash {n}: {e}"));
        // All-or-nothing per member: the victim is a whole tree or absent.
        let victim_present = repo.find_tree("victim").unwrap().is_some();
        if victim_committed {
            assert!(victim_present, "acknowledged load must survive (n={n})");
        }
        let committed = if victim_present { 2 } else { 1 };
        assert_eq!(integrity.trees as usize, committed, "n={n}");
        assert_eq!(
            repo.history_of_kind(QueryKind::Load).unwrap().len(),
            committed,
            "n={n}: loads and history commit atomically"
        );
        let base_rec = repo.tree_by_name("base").unwrap();
        cross_validate(&repo, base_rec.handle);
        if victim_present {
            let victim_rec = repo.tree_by_name("victim").unwrap();
            cross_validate(&repo, victim_rec.handle);
        }
    }
}

#[test]
fn crash_before_checkpoint_truncation_replays_idempotently() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    let base = tree_newick(90, 11);
    {
        let mut repo = Repository::create(&path, small_opts()).unwrap();
        repo.load_newick("base", &base).unwrap();
        repo.inject_crash(CrashPoint::CheckpointTruncate);
        // The checkpoint wrote and fsynced the data file, then "died" before
        // truncating the log; replaying the log must be harmless.
        assert!(repo.flush().is_err());
    }
    let repo = Repository::open(&path, small_opts()).unwrap();
    repo.integrity_check()
        .expect("integrity after checkpoint crash");
    let base_rec = repo.tree_by_name("base").unwrap();
    cross_validate(&repo, base_rec.handle);
    assert_eq!(repo.history_of_kind(QueryKind::Load).unwrap().len(), 1);
}

#[test]
fn crash_during_gold_standard_load_loses_tree_and_species_together() {
    use simulation::gold::GoldStandardBuilder;
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    let gold = GoldStandardBuilder::new()
        .leaves(40)
        .sequence_length(60)
        .seed(5)
        .build()
        .unwrap();
    {
        let mut repo = Repository::create(&path, small_opts()).unwrap();
        repo.load_gold_standard("committed", &gold).unwrap();
        // Crash partway through the second gold-standard load: the tree may
        // already be inserted when the species inserts die, but the whole
        // load is one transaction, so neither may survive.
        repo.inject_crash(CrashPoint::WalAppend(2));
        assert!(repo.load_gold_standard("victim", &gold).is_err());
    }
    let repo = Repository::open(&path, small_opts()).unwrap();
    let integrity = repo.integrity_check().unwrap();
    assert_eq!(integrity.trees, 1);
    let committed = repo.tree_by_name("committed").unwrap();
    assert_eq!(repo.species_count(committed.handle).unwrap(), 40);
    assert!(repo.find_tree("victim").unwrap().is_none());
    assert_eq!(integrity.species, 40, "no orphan species rows may survive");
}

#[test]
fn clean_reopen_reports_empty_recovery() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    {
        let mut repo = Repository::create(&path, small_opts()).unwrap();
        repo.load_newick("base", &tree_newick(40, 3)).unwrap();
        repo.flush().unwrap();
    }
    let repo = Repository::open(&path, small_opts()).unwrap();
    let report = repo
        .recovery_report()
        .expect("open of existing file reports recovery");
    assert!(
        !report.did_work(),
        "a checkpointed file needs no recovery: {report:?}"
    );
    repo.integrity_check().unwrap();
}

#[test]
fn reopen_without_flush_replays_the_load() {
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    {
        let mut repo = Repository::create(&path, small_opts()).unwrap();
        repo.load_newick("base", &tree_newick(120, 13)).unwrap();
        // No flush: commit durability comes from the WAL alone.
    }
    let repo = Repository::open(&path, small_opts()).unwrap();
    let report = repo.recovery_report().unwrap();
    assert!(report.committed_txns >= 1);
    assert!(report.pages_redone > 0);
    repo.integrity_check().unwrap();
    let base = repo.tree_by_name("base").unwrap();
    cross_validate(&repo, base.handle);
}

#[test]
fn crash_mid_dedup_store_leaves_no_dangling_hash_state() {
    // Crash partway through a content-addressed store (the miss path: a
    // full load plus hash-index and stats writes, all one transaction).
    // Recovery must leave the hash catalog exactly per-tree complete — the
    // integrity invariants reject dangling `hash_by_pre` / `hash_idx`
    // entries or stats rows for a vanished tree — and the retried store
    // must succeed and then dedup.
    for point in [
        CrashPoint::WalAppend(2),
        CrashPoint::WalAppend(9),
        CrashPoint::DataWrite(1),
        CrashPoint::DataWrite(8),
    ] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let base = yule_tree(90, 1.0, 7);
        let victim = yule_tree(260, 1.0, 8);
        let victim_committed;
        {
            let mut repo = Repository::create(&path, small_opts()).unwrap();
            let (_, hit) = repo.store_tree_dedup("base", &base).unwrap();
            assert!(!hit);
            repo.inject_crash(point);
            victim_committed = repo.store_tree_dedup("victim", &victim).is_ok();
            // Crash: drop without flush.
        }
        let mut repo = Repository::open(&path, small_opts()).unwrap();
        let integrity = repo.integrity_check().unwrap_or_else(|e| {
            panic!("integrity failed after dedup-store crash at {point:?}: {e}")
        });
        let committed = if victim_committed { 2 } else { 1 };
        assert_eq!(integrity.trees as usize, committed, "crash at {point:?}");
        // Every surviving tree carries a complete content address and the
        // hash indexes hold entries for surviving trees only.
        assert_eq!(integrity.hashed_trees, integrity.trees);
        assert_eq!(integrity.clade_refs, 0);
        if !victim_committed {
            assert!(repo.find_tree("victim").unwrap().is_none());
            let (_, hit) = repo.store_tree_dedup("victim", &victim).unwrap();
            assert!(!hit, "retried store must be a fresh miss at {point:?}");
        }
        // The recovered (or retried) content addresses still dedup.
        let victim_handle = repo.tree_by_name("victim").unwrap().handle;
        let (dup, hit) = repo.store_tree_dedup("victim-dup", &victim).unwrap();
        assert!(hit, "identical tree must dedup after recovery at {point:?}");
        assert_eq!(dup, victim_handle);
        repo.integrity_check().unwrap();
    }
}

#[test]
fn crash_mid_shared_store_leaves_no_dangling_bridges() {
    // Crash partway through a structurally-shared (cold) store: bridge
    // reference rows, spine hash entries and the stats row are one
    // transaction, so recovery must roll them back together — a bridge
    // whose owning tree vanished would fail the integrity invariants.
    for point in [CrashPoint::WalAppend(2), CrashPoint::DataWrite(1)] {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let tree = yule_tree(260, 1.0, 31);
        let victim_committed;
        {
            let mut repo = Repository::create(&path, small_opts()).unwrap();
            repo.load_tree("hot", &tree).unwrap();
            repo.inject_crash(point);
            victim_committed = repo.store_tree_shared("cold", &tree, 1).is_ok();
            // Crash: drop without flush.
        }
        let mut repo = Repository::open(&path, small_opts()).unwrap();
        let integrity = repo.integrity_check().unwrap_or_else(|e| {
            panic!("integrity failed after shared-store crash at {point:?}: {e}")
        });
        if !victim_committed {
            assert_eq!(integrity.trees, 1, "crash at {point:?}");
            assert_eq!(
                integrity.clade_refs, 0,
                "no bridge may survive its tree at {point:?}"
            );
            assert!(repo.find_tree("cold").unwrap().is_none());
            // Retry: the interrupted cold store succeeds from scratch.
            let hc = repo.store_tree_shared("cold", &tree, 1).unwrap();
            assert!(!repo.clade_refs_of(hc).unwrap().is_empty());
        }
        let integrity = repo.integrity_check().unwrap();
        assert_eq!(integrity.trees, 2);
        assert!(integrity.clade_refs > 0, "crash at {point:?}");
        // The cold tree reads transparently through its bridges.
        let hot = repo.tree_by_name("hot").unwrap().handle;
        let cold = repo.tree_by_name("cold").unwrap().handle;
        let cmp = repo.compare_stored(hot, cold, false).unwrap();
        assert_eq!(cmp.rf.distance, 0);
    }
}

#[test]
fn async_commit_survives_clean_close() {
    // Clean-close durability for `Durability::Async`: an acknowledged
    // async commit sits in the pipelined WAL queue until some later sync.
    // Dropping the repository without flush() or sync() must drain and
    // fsync that queue (the pool's flush-on-drop), so the tree is present
    // on reopen rather than silently vanishing.
    let dir = tempdir().unwrap();
    let path = dir.path().join("repo.crimson");
    let opts = RepositoryOptions {
        durability: Durability::Async,
        ..small_opts()
    };
    {
        let mut repo = Repository::create(&path, opts.clone()).unwrap();
        repo.load_newick("async_tree", &tree_newick(80, 29))
            .unwrap();
        // No flush, no sync: drop while the commit may still be queued.
    }
    let repo = Repository::open(&path, opts).unwrap();
    repo.integrity_check().unwrap();
    let tree = repo
        .tree_by_name("async_tree")
        .expect("async-committed tree lost across a clean close");
    cross_validate(&repo, tree.handle);
}
