//! Property test for index-native comparison: for random birth-death trees
//! with random perturbations, the RF / rooted-RF / triplet distances
//! computed by streaming the persistent interval index equal
//! `reconstruction::compare` on the materialized trees **exactly** —
//! distance, max, shared and normalized alike.

use crimson::prelude::*;
use rand::prelude::*;
use reconstruction::compare::{robinson_foulds, rooted_robinson_foulds, triplet_distance};
use simulation::birth_death::yule_tree;
use tempfile::tempdir;

/// Swap the names of `swaps` random leaf pairs — a topology-preserving
/// relabeling that perturbs every comparison metric.
fn swap_leaf_names(tree: &phylo::Tree, swaps: usize, rng: &mut StdRng) -> phylo::Tree {
    let mut out = tree.clone();
    let leaves: Vec<phylo::NodeId> = out.leaf_ids().collect();
    for _ in 0..swaps {
        let a = leaves[rng.gen_range(0..leaves.len())];
        let b = leaves[rng.gen_range(0..leaves.len())];
        if a == b {
            continue;
        }
        let na = out.name(a).unwrap().to_string();
        let nb = out.name(b).unwrap().to_string();
        out.set_name(a, nb).unwrap();
        out.set_name(b, na).unwrap();
    }
    out
}

#[test]
fn index_native_distances_equal_materialized_compare_on_random_trees() {
    let dir = tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("prop.crimson"),
        RepositoryOptions {
            frame_depth: 8,
            buffer_pool_pages: 4096,
            ..Default::default()
        },
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(20260727);

    for case in 0..50u64 {
        let n = 4 + (rng.gen_range(0..90usize));
        let a = yule_tree(n, 1.0, 1000 + case);
        // Perturbation menu: identical copy, leaf-name swaps, or an
        // independently grown topology over the same leaf-name set.
        let b = match case % 3 {
            0 => a.clone(),
            1 => swap_leaf_names(&a, 1 + rng.gen_range(0..n), &mut rng),
            _ => yule_tree(n, 1.0, 5000 + case),
        };

        let ha = repo.load_tree(&format!("a{case}"), &a).unwrap();
        let hb = repo.load_tree(&format!("b{case}"), &b).unwrap();

        // The cubic triplet distance stays cheap below ~40 leaves.
        let triplets = n <= 40;
        let stored = repo.compare_stored(ha, hb, triplets).unwrap();
        let rf = robinson_foulds(&a, &b).unwrap();
        let rrf = rooted_robinson_foulds(&a, &b).unwrap();
        assert_eq!(stored.rf, rf, "case {case} (n={n}): unrooted RF differs");
        assert_eq!(
            stored.rooted_rf, rrf,
            "case {case} (n={n}): rooted RF differs"
        );
        if triplets {
            let expected = triplet_distance(&a, &b).unwrap();
            let got = stored.triplet.expect("triplets requested");
            assert!(
                (got - expected).abs() < 1e-15,
                "case {case} (n={n}): triplet distance differs: {got} vs {expected}"
            );
        }

        // Stored-vs-in-memory takes the same streaming path on one side
        // only; it must agree with both the stored-stored and the
        // materialized comparison.
        let mixed = repo.compare_stored_with_tree(ha, &b, false).unwrap();
        assert_eq!(mixed.rf, rf, "case {case}: mixed unrooted RF differs");
        assert_eq!(mixed.rooted_rf, rrf, "case {case}: mixed rooted RF differs");

        // Identical-copy cases must be exactly zero with full sharing.
        if case % 3 == 0 {
            assert_eq!(stored.rf.distance, 0);
            assert_eq!(stored.rf.shared * 2, stored.rf.max_distance);
            assert!(stored.clades.iter().all(|c| c.agrees));
        }
    }
    repo.integrity_check().unwrap();
}
