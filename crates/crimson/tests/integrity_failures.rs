//! Failure-mode coverage for `Repository::integrity_check`.
//!
//! The happy path (a report with matching counts) is exercised all over the
//! crash-recovery suites; these tests corrupt a *closed* repository file
//! through the raw storage engine — an orphan node row, a deleted node row,
//! a missing interval entry, a contradictory interval mapping — reopen it,
//! and assert that the check fails with the specific
//! `CrimsonError::CorruptRepository` message for that corruption.

use crimson::prelude::*;
use phylo::builder::figure1_tree;
use std::path::Path;
use storage::value::Value;
use storage::Database;

/// Build a small repository with one tree + species data, checkpoint it and
/// close it, returning its path.
fn build_repo(dir: &tempfile::TempDir) -> std::path::PathBuf {
    let path = dir.path().join("victim.crimson");
    let mut repo = Repository::create(
        &path,
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let tree = figure1_tree();
    let handle = repo.load_tree("fig1", &tree).unwrap();
    let mut seqs = std::collections::HashMap::new();
    seqs.insert("Bha".to_string(), "ACGT".to_string());
    repo.load_species(handle, &seqs).unwrap();
    repo.integrity_check().expect("pristine repository passes");
    repo.flush().unwrap();
    path
}

fn reopen_and_expect_corrupt(path: &Path, needle: &str) {
    let repo = Repository::open(path, RepositoryOptions::default()).unwrap();
    match repo.integrity_check() {
        Err(CrimsonError::CorruptRepository(msg)) => {
            assert!(
                msg.contains(needle),
                "error should mention `{needle}`, got: {msg}"
            );
        }
        other => panic!("integrity check must fail with CorruptRepository, got {other:?}"),
    }
}

#[test]
fn orphan_node_row_is_detected() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_repo(&dir);
    {
        // Tamper through the raw storage engine: a node row pointing at a
        // tree that is not in the catalog (what an un-rolled-back partial
        // load would leave behind).
        let mut db = Database::open(&path).unwrap();
        let nodes = db.table("nodes").unwrap();
        let ghost_tree: i64 = 999;
        db.insert(
            nodes,
            &[
                Value::Int((ghost_tree << 32) | 1), // node_id
                Value::Int(ghost_tree),             // tree_id
                Value::Int(-1),                     // parent_id
                Value::text("ghost"),               // name
                Value::Null,                        // branch_length
                Value::Float(0.0),                  // root_dist
                Value::Int(0),                      // depth
                Value::Int(0),                      // preorder
                Value::Int(ghost_tree << 32),       // frame_id
                Value::bytes(vec![]),               // label
                Value::Bool(true),                  // is_leaf
                Value::Int(ghost_tree),             // leaf_of_tree
                Value::Float(0.0),                  // subtree_height
            ],
        )
        .unwrap();
        db.flush().unwrap();
    }
    reopen_and_expect_corrupt(&path, "orphan node row");
}

#[test]
fn deleted_node_row_breaks_tree_counts() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_repo(&dir);
    {
        let mut db = Database::open(&path).unwrap();
        let nodes = db.table("nodes").unwrap();
        // Delete the physically first node row of the tree.
        let (rid, _) = db.scan(nodes).unwrap().into_iter().next().unwrap();
        db.delete(nodes, rid).unwrap();
        db.flush().unwrap();
    }
    reopen_and_expect_corrupt(&path, "nodes/leaves but");
}

#[test]
fn missing_interval_entry_is_detected() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_repo(&dir);
    {
        let mut db = Database::open(&path).unwrap();
        let ivl = db.raw_index("ivl_by_pre").unwrap();
        let (first_key, _) = db
            .raw_range(ivl, None, None)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        assert!(db.raw_delete(ivl, &first_key).unwrap());
        db.flush().unwrap();
    }
    reopen_and_expect_corrupt(&path, "interval indexes hold");
}

#[test]
fn contradictory_interval_mapping_is_detected() {
    let dir = tempfile::tempdir().unwrap();
    let path = build_repo(&dir);
    {
        let mut db = Database::open(&path).unwrap();
        let ivl = db.raw_index("ivl_by_node").unwrap();
        let (key, packed) = db
            .raw_range(ivl, None, None)
            .unwrap()
            .next()
            .unwrap()
            .unwrap();
        // Shift the stored pre-order rank by one: the mapping now
        // contradicts the node row's rank (count stays intact, so only the
        // per-node consistency check can catch it).
        let pre = (packed >> 32) as u32;
        let end = packed as u32;
        let wrong = (((pre + 1) as u64) << 32) | (end + 1) as u64;
        assert!(db.raw_delete(ivl, &key).unwrap());
        db.raw_insert(ivl, &key, wrong).unwrap();
        db.flush().unwrap();
    }
    reopen_and_expect_corrupt(&path, "contradicts its pre-order rank");
}
