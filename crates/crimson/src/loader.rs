//! The Data Loader (§3 "Loading Data").
//!
//! Users may load a phylogenetic tree with species data, load a tree
//! structure only, or append species data to an existing tree. Input can be
//! an in-memory [`Tree`], a Newick string or a NEXUS document; status
//! messages are collected in a [`LoadReport`] mirroring the progress messages
//! the Crimson GUI displays.

use crate::error::{CrimsonError, CrimsonResult};
use crate::history::QueryKind;
use crate::repository::{Repository, TreeHandle};
use phylo::nexus::NexusDocument;
use phylo::{newick, nexus};
use serde_json::json;
use std::collections::HashMap;

/// What to load from the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Load the tree structure only, ignoring any species data.
    TreeOnly,
    /// Load the tree structure and any species data present.
    TreeWithSpecies,
    /// Append species data to an already loaded tree (the input's tree
    /// block, if any, is ignored).
    AppendSpecies,
}

/// Outcome of a load operation.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The tree the data went into.
    pub handle: TreeHandle,
    /// Number of tree nodes stored by this operation (0 for appends).
    pub nodes_loaded: usize,
    /// Number of species sequences stored by this operation.
    pub species_loaded: usize,
    /// Human-readable status messages, in order.
    pub messages: Vec<String>,
}

/// Human-readable load throughput for the status messages: the GUI-style
/// progress line now carries the bulk path's rows/sec.
fn throughput(rows: usize, elapsed: std::time::Duration) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    format!("{:.0} rows/s", rows as f64 / secs)
}

impl Repository {
    /// Load a Newick string as a new tree (structure only — Newick carries no
    /// sequences). The load and its Query-Repository history entry are one
    /// atomic transaction: after a crash either both are visible or neither.
    pub fn load_newick(&mut self, name: &str, text: &str) -> CrimsonResult<LoadReport> {
        let tree = newick::parse(text).map_err(phylo::PhyloError::from)?;
        let node_count = tree.node_count();
        self.with_txn(|repo| {
            let start = std::time::Instant::now();
            let handle = repo.load_tree(name, &tree)?;
            let report = LoadReport {
                handle,
                nodes_loaded: node_count,
                species_loaded: 0,
                messages: vec![format!(
                    "loaded tree `{name}` with {node_count} nodes from Newick ({})",
                    throughput(node_count, start.elapsed())
                )],
            };
            repo.record_load(name, &report)?;
            Ok(report)
        })
    }

    /// Load a NEXUS document according to `mode`.
    ///
    /// * [`LoadMode::TreeOnly`] — stores the first tree in the document.
    /// * [`LoadMode::TreeWithSpecies`] — stores the first tree and every
    ///   sequence from the DATA/CHARACTERS block.
    /// * [`LoadMode::AppendSpecies`] — appends the document's sequences to
    ///   the existing tree `name`.
    pub fn load_nexus(
        &mut self,
        name: &str,
        doc: &NexusDocument,
        mode: LoadMode,
    ) -> CrimsonResult<LoadReport> {
        match mode {
            LoadMode::TreeOnly | LoadMode::TreeWithSpecies => {
                let named = doc.trees.first().ok_or_else(|| {
                    CrimsonError::Phylo(phylo::PhyloError::Parse(phylo::ParseError::new(
                        0,
                        1,
                        "NEXUS document contains no TREES block",
                    )))
                })?;
                let node_count = named.tree.node_count();
                // The whole load — tree, species, history entry — is one
                // atomic transaction.
                self.with_txn(|repo| {
                    let mut messages = Vec::new();
                    let start = std::time::Instant::now();
                    let handle = repo.load_tree(name, &named.tree)?;
                    messages.push(format!(
                        "loaded tree `{}` ({} nodes, {} leaves) from NEXUS tree `{}` ({})",
                        name,
                        node_count,
                        named.tree.leaf_count(),
                        named.name,
                        throughput(node_count, start.elapsed())
                    ));
                    let mut species_loaded = 0;
                    if mode == LoadMode::TreeWithSpecies && !doc.sequences.is_empty() {
                        species_loaded = repo.load_species(handle, &doc.sequences)?;
                        messages.push(format!("loaded {species_loaded} species sequences"));
                    }
                    let report = LoadReport {
                        handle,
                        nodes_loaded: node_count,
                        species_loaded,
                        messages,
                    };
                    repo.record_load(name, &report)?;
                    Ok(report)
                })
            }
            LoadMode::AppendSpecies => {
                let record = self.tree_by_name(name)?;
                if doc.sequences.is_empty() {
                    return Err(CrimsonError::MissingSequences(name.to_string()));
                }
                self.with_txn(|repo| {
                    let species_loaded = repo.load_species(record.handle, &doc.sequences)?;
                    let report = LoadReport {
                        handle: record.handle,
                        nodes_loaded: 0,
                        species_loaded,
                        messages: vec![format!(
                            "appended {species_loaded} species sequences to tree `{name}`"
                        )],
                    };
                    repo.record_load(name, &report)?;
                    Ok(report)
                })
            }
        }
    }

    /// Load many Newick trees, one transaction per tree. Each per-tree
    /// commit rides the storage engine's group-commit path; under
    /// [`crate::Durability::Async`] the commits return at log-append time
    /// and the single [`Repository::sync`] at the end forces the one group
    /// fsync covering the whole batch — the bulk-load configuration the
    /// writer-throughput bench measures.
    pub fn load_newick_batch(
        &mut self,
        items: &[(String, String)],
    ) -> CrimsonResult<Vec<LoadReport>> {
        let mut reports = Vec::with_capacity(items.len());
        for (name, text) in items {
            reports.push(self.load_newick(name, text)?);
        }
        self.sync()?;
        Ok(reports)
    }

    /// Parse NEXUS text and load it (convenience wrapper over
    /// [`Repository::load_nexus`]).
    pub fn load_nexus_text(
        &mut self,
        name: &str,
        text: &str,
        mode: LoadMode,
    ) -> CrimsonResult<LoadReport> {
        let doc = nexus::parse(text).map_err(phylo::PhyloError::from)?;
        self.load_nexus(name, &doc, mode)
    }

    /// Append raw species sequences to an existing tree (atomically, with
    /// the history entry).
    pub fn append_species(
        &mut self,
        name: &str,
        sequences: &HashMap<String, String>,
    ) -> CrimsonResult<LoadReport> {
        let record = self.tree_by_name(name)?;
        self.with_txn(|repo| {
            let species_loaded = repo.load_species(record.handle, sequences)?;
            let report = LoadReport {
                handle: record.handle,
                nodes_loaded: 0,
                species_loaded,
                messages: vec![format!(
                    "appended {species_loaded} species sequences to `{name}`"
                )],
            };
            repo.record_load(name, &report)?;
            Ok(report)
        })
    }

    /// Export a stored tree (and its species data) back to a NEXUS document —
    /// the "view results as NEXUS files" output path of §3.
    pub fn export_nexus(&self, name: &str) -> CrimsonResult<NexusDocument> {
        let record = self.tree_by_name(name)?;
        let leaves = self.leaves(record.handle)?;
        let tree = self.project(record.handle, &leaves)?;
        let mut doc = NexusDocument::new();
        let leaf_names = self.names_of(&leaves)?;
        // Attach sequences when present; taxa without sequences still get a
        // TAXA entry.
        for leaf_name in leaf_names {
            match self.sequences_for(record.handle, std::slice::from_ref(&leaf_name)) {
                Ok(seqs) => doc.push_sequence(leaf_name.clone(), seqs[&leaf_name].clone()),
                Err(_) => doc.taxa.push(leaf_name),
            }
        }
        doc.push_tree(name, tree);
        Ok(doc)
    }

    fn record_load(&mut self, name: &str, report: &LoadReport) -> CrimsonResult<()> {
        self.record_query(
            QueryKind::Load,
            json!({
                "tree": name,
                "nodes": report.nodes_loaded,
                "species": report.species_loaded,
            }),
            report.messages.last().map(|s| s.as_str()).unwrap_or("load"),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::ops::isomorphic;
    use simulation::gold::GoldStandardBuilder;
    use tempfile::tempdir;

    const FIG1_NEWICK: &str = "((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);";

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: 4,
                buffer_pool_pages: 512,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, repo)
    }

    #[test]
    fn load_newick_records_history() {
        let (_d, mut repo) = repo();
        let report = repo.load_newick("fig1", FIG1_NEWICK).unwrap();
        assert_eq!(report.nodes_loaded, 8);
        assert_eq!(report.species_loaded, 0);
        assert!(report.messages[0].contains("fig1"));
        let history = repo.history_of_kind(QueryKind::Load).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].params["nodes"], 8);
    }

    #[test]
    fn load_nexus_tree_with_species() {
        let (_d, mut repo) = repo();
        let gold = GoldStandardBuilder::new()
            .leaves(10)
            .sequence_length(30)
            .seed(4)
            .build()
            .unwrap();
        let doc = gold.to_nexus();
        let report = repo
            .load_nexus("gold", &doc, LoadMode::TreeWithSpecies)
            .unwrap();
        assert_eq!(report.nodes_loaded, gold.tree.node_count());
        assert_eq!(report.species_loaded, 10);
        assert_eq!(repo.species_count(report.handle).unwrap(), 10);
    }

    #[test]
    fn load_nexus_tree_only_then_append() {
        let (_d, mut repo) = repo();
        let gold = GoldStandardBuilder::new()
            .leaves(8)
            .sequence_length(20)
            .seed(6)
            .build()
            .unwrap();
        let doc = gold.to_nexus();
        let report = repo.load_nexus("gold", &doc, LoadMode::TreeOnly).unwrap();
        assert_eq!(report.species_loaded, 0);
        assert_eq!(repo.species_count(report.handle).unwrap(), 0);
        // Append the species data afterwards (§3: "append species data to an
        // existing phylogenetic tree").
        let report = repo
            .load_nexus("gold", &doc, LoadMode::AppendSpecies)
            .unwrap();
        assert_eq!(report.species_loaded, 8);
        assert_eq!(repo.species_count(report.handle).unwrap(), 8);
    }

    #[test]
    fn append_to_missing_tree_errors() {
        let (_d, mut repo) = repo();
        let gold = GoldStandardBuilder::new()
            .leaves(4)
            .sequence_length(10)
            .seed(1)
            .build()
            .unwrap();
        let doc = gold.to_nexus();
        assert!(matches!(
            repo.load_nexus("ghost", &doc, LoadMode::AppendSpecies),
            Err(CrimsonError::UnknownTree(_))
        ));
    }

    #[test]
    fn load_errors_are_reported() {
        let (_d, mut repo) = repo();
        assert!(repo.load_newick("bad", "((A,B)").is_err());
        assert!(repo
            .load_nexus_text("bad", "not nexus at all", LoadMode::TreeOnly)
            .is_err());
        let nexus_without_trees = "#NEXUS\nBEGIN TAXA;\nTAXLABELS A B;\nEND;\n";
        assert!(repo
            .load_nexus_text("bad", nexus_without_trees, LoadMode::TreeOnly)
            .is_err());
    }

    #[test]
    fn export_roundtrip() {
        let (_d, mut repo) = repo();
        let gold = GoldStandardBuilder::new()
            .leaves(12)
            .sequence_length(25)
            .seed(8)
            .build()
            .unwrap();
        repo.load_gold_standard("gold", &gold).unwrap();
        let doc = repo.export_nexus("gold").unwrap();
        assert_eq!(doc.sequences.len(), 12);
        assert_eq!(doc.trees.len(), 1);
        // The exported tree is isomorphic to the original gold standard.
        assert!(isomorphic(&doc.trees[0].tree, &gold.tree));
        // And the document parses back through the NEXUS layer.
        let text = phylo::nexus::write(&doc);
        let parsed = phylo::nexus::parse(&text).unwrap();
        assert_eq!(parsed.sequences.len(), 12);
    }
}
