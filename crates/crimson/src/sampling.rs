//! Species sampling (§2.2 and §3 "Tree Projection" selection methods).
//!
//! Crimson supports three ways of selecting species to benchmark against:
//! uniform random sampling, random sampling *with respect to an evolutionary
//! time*, and an explicit user-supplied list. The time-respecting method
//! follows the paper's two-step strategy: first find every node whose
//! cumulative weight from the root exceeds the requested time but whose
//! parent's does not (the *frontier* — `{Bha, x, Syn, Bsu}` in the worked
//! example for t = 1), then draw an equal number of leaves from the subtree
//! under each frontier node.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{ReadCtx, Repository, StoredNodeId, TreeHandle};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use storage::db::DbRead;
use storage::value::Value;

/// How to select species for a benchmark run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// Uniformly random sample of `k` species.
    Uniform {
        /// Number of species to draw.
        k: usize,
    },
    /// Random sample of `k` species drawn evenly from the subtrees rooted at
    /// the evolutionary-time frontier at `time`.
    TimeRespecting {
        /// The evolutionary distance from the root defining the frontier.
        time: f64,
        /// Number of species to draw.
        k: usize,
    },
    /// An explicit list of species names.
    UserList {
        /// The species names to use.
        names: Vec<String>,
    },
}

impl SamplingStrategy {
    /// Short label for reports and history entries.
    pub fn label(&self) -> String {
        match self {
            SamplingStrategy::Uniform { k } => format!("uniform(k={k})"),
            SamplingStrategy::TimeRespecting { time, k } => format!("time(t={time},k={k})"),
            SamplingStrategy::UserList { names } => format!("user({} names)", names.len()),
        }
    }
}

/// Sampling runs on the shared read engine, so the writer's `Repository`
/// and concurrent snapshot [`crate::reader::RepositoryReader`]s — the
/// experiment sweep's workers — execute identical, deterministic draws.
impl<D: DbRead> ReadCtx<'_, D> {
    /// Execute a sampling strategy, returning the selected leaf nodes.
    pub fn sample(
        &self,
        handle: TreeHandle,
        strategy: &SamplingStrategy,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        match strategy {
            SamplingStrategy::Uniform { k } => self.sample_uniform(handle, *k, seed),
            SamplingStrategy::TimeRespecting { time, k } => {
                self.sample_by_time(handle, *time, *k, seed)
            }
            SamplingStrategy::UserList { names } => {
                let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                self.sample_by_names(handle, &refs)
            }
        }
    }

    /// Uniformly sample `k` distinct species from the tree.
    pub fn sample_uniform(
        &self,
        handle: TreeHandle,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        let mut leaves = self.leaves(handle)?;
        if k == 0 || k > leaves.len() {
            return Err(CrimsonError::InvalidSample(format!(
                "requested {k} of {} available species",
                leaves.len()
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        leaves.shuffle(&mut rng);
        leaves.truncate(k);
        Ok(leaves)
    }

    /// Sample `k` species with respect to evolutionary time `time` (§2.2).
    ///
    /// The frontier is found with a range scan on the `root_dist` index
    /// (cumulative time ≥ `time`), keeping only nodes whose parent is above
    /// the threshold's other side; `k` leaves are then drawn round-robin from
    /// the frontier subtrees.
    pub fn sample_by_time(
        &self,
        handle: TreeHandle,
        time: f64,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        if k == 0 {
            return Err(CrimsonError::InvalidSample(
                "requested 0 species".to_string(),
            ));
        }
        let frontier = self.time_frontier(handle, time)?;
        if frontier.is_empty() {
            return Err(CrimsonError::InvalidSample(format!(
                "no nodes lie at evolutionary time ≥ {time}"
            )));
        }
        let mut rng = StdRng::seed_from_u64(seed);

        // Leaves under each frontier node, shuffled independently.
        let mut per_node: Vec<Vec<StoredNodeId>> = Vec::with_capacity(frontier.len());
        let mut total = 0usize;
        for &node in &frontier {
            let mut leaves = self.leaves_under(node)?;
            leaves.shuffle(&mut rng);
            total += leaves.len();
            per_node.push(leaves);
        }
        if k > total {
            return Err(CrimsonError::InvalidSample(format!(
                "requested {k} species but only {total} lie below the time-{time} frontier"
            )));
        }
        // Round-robin draw so every frontier subtree contributes ⌈k/|frontier|⌉
        // or ⌊k/|frontier|⌋ leaves, matching the paper's "k/|frontier| from
        // each subtree" strategy while tolerating small subtrees.
        let mut order: Vec<usize> = (0..per_node.len()).collect();
        order.shuffle(&mut rng);
        let mut picked = Vec::with_capacity(k);
        let mut cursor = vec![0usize; per_node.len()];
        while picked.len() < k {
            let mut advanced = false;
            for &i in &order {
                if picked.len() >= k {
                    break;
                }
                if cursor[i] < per_node[i].len() {
                    picked.push(per_node[i][cursor[i]]);
                    cursor[i] += 1;
                    advanced = true;
                }
            }
            if !advanced {
                break;
            }
        }
        Ok(picked)
    }

    /// The evolutionary-time frontier used by [`Repository::sample_by_time`]:
    /// the **maximal nodes whose clade age (subtree height) is at most
    /// `time`** — every node below the frontier diverged from its frontier
    /// ancestor within the last `time` units.
    ///
    /// This is the rule that reproduces the paper's worked example: for the
    /// Figure 1 tree and `time = 1` it yields `{Bha, x, Syn, Bsu}` where `x`
    /// is the parent of `Lla` and `Spy`. (The paper's prose says "nodes whose
    /// total weight from the root exceeds t", which on the same tree would
    /// give a different, smaller set; the worked example is taken as the
    /// authoritative semantics — see DESIGN.md. The literal prose predicate
    /// is available as [`Repository::root_distance_frontier`].)
    ///
    /// Implemented with a range scan over the `subtree_height` index followed
    /// by a parent check, so only the candidate rows are read.
    pub fn time_frontier(&self, handle: TreeHandle, time: f64) -> CrimsonResult<Vec<StoredNodeId>> {
        let rids = self.db.index_range(
            self.tables.nodes,
            "subtree_height",
            None,
            Some(&Value::Float(time + f64::EPSILON.max(time.abs() * 1e-12))),
        )?;
        let mut frontier = Vec::new();
        for rid in rids {
            let row = self.db.get(self.tables.nodes, rid)?;
            let rec = crate::repository::decode_node_row(&row);
            if rec.tree != handle || rec.subtree_height > time {
                continue;
            }
            match rec.parent {
                None => frontier.push(rec.id),
                Some(parent) => {
                    let parent_rec = self.node_record(parent)?;
                    if parent_rec.subtree_height > time {
                        frontier.push(rec.id);
                    }
                }
            }
        }
        Ok(frontier)
    }

    /// The literal frontier from the paper's prose: the minimal nodes whose
    /// cumulative distance from the root is at least `time` (their parents
    /// are strictly closer to the root than `time`). Served by a range scan
    /// on the `root_dist` index.
    pub fn root_distance_frontier(
        &self,
        handle: TreeHandle,
        time: f64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        let rids = self.db.index_range(
            self.tables.nodes,
            "root_dist",
            Some(&Value::Float(time)),
            None,
        )?;
        let mut frontier = Vec::new();
        for rid in rids {
            let row = self.db.get(self.tables.nodes, rid)?;
            let rec = crate::repository::decode_node_row(&row);
            if rec.tree != handle {
                continue;
            }
            match rec.parent {
                None => frontier.push(rec.id),
                Some(parent) => {
                    let parent_rec = self.node_record(parent)?;
                    if parent_rec.root_distance < time {
                        frontier.push(rec.id);
                    }
                }
            }
        }
        Ok(frontier)
    }

    /// All leaves in the subtree rooted at `node` (BFS over the parent
    /// index).
    pub fn leaves_under(&self, node: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([node]);
        while let Some(n) = queue.pop_front() {
            let children = self.children(n)?;
            if children.is_empty() {
                out.push(n);
            } else {
                queue.extend(children);
            }
        }
        Ok(out)
    }

    /// Resolve an explicit list of species names to leaf nodes.
    pub fn sample_by_names(
        &self,
        handle: TreeHandle,
        names: &[&str],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        if names.is_empty() {
            return Err(CrimsonError::InvalidSample(
                "empty species list".to_string(),
            ));
        }
        names
            .iter()
            .map(|n| self.require_species_node(handle, n))
            .collect()
    }

    /// Convenience: the names of a set of stored leaf nodes.
    pub fn names_of(&self, nodes: &[StoredNodeId]) -> CrimsonResult<Vec<String>> {
        nodes
            .iter()
            .map(|&n| {
                let rec = self.node_record(n)?;
                rec.name.ok_or(CrimsonError::UnknownNode(n.0))
            })
            .collect()
    }
}

impl Repository {
    /// Execute a sampling strategy, returning the selected leaf nodes.
    pub fn sample(
        &self,
        handle: TreeHandle,
        strategy: &SamplingStrategy,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().sample(handle, strategy, seed)
    }

    /// Uniformly sample `k` distinct species from the tree.
    pub fn sample_uniform(
        &self,
        handle: TreeHandle,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().sample_uniform(handle, k, seed)
    }

    /// Sample `k` species with respect to evolutionary time `time` (§2.2).
    pub fn sample_by_time(
        &self,
        handle: TreeHandle,
        time: f64,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().sample_by_time(handle, time, k, seed)
    }

    /// The evolutionary-time frontier used by [`Repository::sample_by_time`].
    pub fn time_frontier(&self, handle: TreeHandle, time: f64) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().time_frontier(handle, time)
    }

    /// The literal frontier from the paper's prose: the minimal nodes whose
    /// cumulative distance from the root is at least `time`.
    pub fn root_distance_frontier(
        &self,
        handle: TreeHandle,
        time: f64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().root_distance_frontier(handle, time)
    }

    /// All leaves in the subtree rooted at `node`.
    pub fn leaves_under(&self, node: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().leaves_under(node)
    }

    /// Resolve an explicit list of species names to leaf nodes.
    pub fn sample_by_names(
        &self,
        handle: TreeHandle,
        names: &[&str],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().sample_by_names(handle, names)
    }

    /// Convenience: the names of a set of stored leaf nodes.
    pub fn names_of(&self, nodes: &[StoredNodeId]) -> CrimsonResult<Vec<String>> {
        self.ctx().names_of(nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::figure1_tree;
    use simulation::birth_death::yule_tree;
    use std::collections::HashSet;
    use tempfile::tempdir;

    fn repo_with(tree: &phylo::Tree, f: usize) -> (tempfile::TempDir, Repository, TreeHandle) {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: f,
                buffer_pool_pages: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let handle = repo.load_tree("t", tree).unwrap();
        (dir, repo, handle)
    }

    #[test]
    fn uniform_sampling_properties() {
        let tree = yule_tree(100, 1.0, 3);
        let (_d, repo, handle) = repo_with(&tree, 8);
        let sample = repo.sample_uniform(handle, 20, 1).unwrap();
        assert_eq!(sample.len(), 20);
        // Distinct leaves.
        let set: HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 20);
        // All are leaves of this tree.
        for &n in &sample {
            let rec = repo.node_record(n).unwrap();
            assert!(rec.is_leaf);
            assert_eq!(rec.tree, handle);
        }
        // Deterministic per seed, different across seeds.
        assert_eq!(repo.sample_uniform(handle, 20, 1).unwrap(), sample);
        assert_ne!(repo.sample_uniform(handle, 20, 2).unwrap(), sample);
        // Errors.
        assert!(repo.sample_uniform(handle, 0, 1).is_err());
        assert!(repo.sample_uniform(handle, 101, 1).is_err());
    }

    #[test]
    fn time_frontier_matches_paper_example() {
        // §2.2: frontier at evolutionary distance 1 for the Figure 1 tree is
        // {Bha, x, Syn, Bsu} where x is the parent of Lla and Spy.
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let frontier = repo.time_frontier(handle, 1.0).unwrap();
        assert_eq!(frontier.len(), 4);
        let mut names: Vec<Option<String>> = frontier
            .iter()
            .map(|&n| repo.node_record(n).unwrap().name)
            .collect();
        names.sort();
        // Three named nodes (Bha, Bsu, Syn) and one unnamed interior (x).
        assert_eq!(
            names,
            vec![
                None,
                Some("Bha".to_string()),
                Some("Bsu".to_string()),
                Some("Syn".to_string())
            ]
        );
        // The unnamed frontier node is the parent of Lla and Spy at depth 2.
        let x = frontier
            .iter()
            .find(|&&n| repo.node_record(n).unwrap().name.is_none())
            .copied()
            .unwrap();
        assert_eq!(repo.node_record(x).unwrap().depth, 2);
        assert_eq!(repo.leaves_under(x).unwrap().len(), 2);
    }

    #[test]
    fn time_sampling_matches_paper_example() {
        // Sampling 4 species at time 1 must yield {Bha, Syn, Bsu} plus one of
        // {Lla, Spy} — the two outcomes listed in the paper.
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        for seed in 0..10 {
            let sample = repo.sample_by_time(handle, 1.0, 4, seed).unwrap();
            let names: HashSet<String> = repo.names_of(&sample).unwrap().into_iter().collect();
            assert_eq!(names.len(), 4);
            assert!(names.contains("Bha"));
            assert!(names.contains("Syn"));
            assert!(names.contains("Bsu"));
            assert!(names.contains("Lla") ^ names.contains("Spy"));
        }
    }

    #[test]
    fn time_sampling_on_simulated_tree() {
        let tree = yule_tree(128, 1.0, 9);
        let (_d, repo, handle) = repo_with(&tree, 8);
        // Pick a threshold at half the tree height.
        let height = tree.root_distance(tree.leaf_ids().next().unwrap());
        let t = height / 2.0;
        let frontier = repo.time_frontier(handle, t).unwrap();
        assert!(!frontier.is_empty());
        let sample = repo.sample_by_time(handle, t, 32, 5).unwrap();
        assert_eq!(sample.len(), 32);
        let set: HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 32);
        // Every sampled leaf lies below some frontier node.
        for &leaf in &sample {
            let mut ok = false;
            for &f in &frontier {
                if repo.is_ancestor(f, leaf).unwrap() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "sampled leaf {leaf} is not below the frontier");
        }
    }

    #[test]
    fn time_sampling_errors() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        // A negative clade age admits no nodes at all: empty frontier.
        assert!(repo.sample_by_time(handle, -1.0, 2, 1).is_err());
        // More species than exist below the frontier.
        assert!(repo.sample_by_time(handle, 1.0, 6, 1).is_err());
        assert!(repo.sample_by_time(handle, 1.0, 0, 1).is_err());
        // A very large age collapses the frontier to the root, below which
        // every species is available.
        let all = repo.sample_by_time(handle, 100.0, 5, 1).unwrap();
        assert_eq!(all.len(), 5);
        // The literal prose predicate (root-distance frontier) is also
        // available: at t=1 it yields the three minimal nodes crossing the
        // threshold (the unnamed clade root, Syn and Bsu).
        assert_eq!(repo.root_distance_frontier(handle, 1.0).unwrap().len(), 3);
    }

    #[test]
    fn user_list_sampling() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let sample = repo
            .sample(
                handle,
                &SamplingStrategy::UserList {
                    names: vec!["Bha".into(), "Lla".into(), "Syn".into()],
                },
                0,
            )
            .unwrap();
        assert_eq!(sample.len(), 3);
        assert_eq!(repo.names_of(&sample).unwrap(), vec!["Bha", "Lla", "Syn"]);
        assert!(repo.sample_by_names(handle, &["Ghost"]).is_err());
        assert!(repo.sample_by_names(handle, &[]).is_err());
    }

    #[test]
    fn strategy_dispatch() {
        let tree = yule_tree(32, 1.0, 2);
        let (_d, repo, handle) = repo_with(&tree, 4);
        let uniform = repo
            .sample(handle, &SamplingStrategy::Uniform { k: 8 }, 3)
            .unwrap();
        assert_eq!(uniform.len(), 8);
        let timed = repo
            .sample(
                handle,
                &SamplingStrategy::TimeRespecting { time: 0.1, k: 8 },
                3,
            )
            .unwrap();
        assert_eq!(timed.len(), 8);
    }
}
