//! A small two-generation (S3-FIFO-style) LRU cache with O(1) operations,
//! plus a sharded-lock wrapper for concurrent readers.
//!
//! Used by the repository for decoded [`crate::repository::NodeRecord`]s and
//! interval-index entries, so repeated structure queries skip both the
//! B+tree descent and the row decode. Exact LRU order is not maintained;
//! instead entries live in a *hot* generation and age into a *cold*
//! generation when the hot side fills. A hit in the cold generation promotes
//! the entry back to hot. Anything older than two generations is gone —
//! which is the same guarantee clock eviction gives the buffer pool below
//! it, at a fraction of the bookkeeping.
//!
//! The cache never holds more than `2 * gen_capacity` entries.
//!
//! [`ShardedCache`] spreads entries across independently locked
//! [`LruCache`] shards (by key hash), so the many reader threads of the
//! concurrent query path never serialize on one cache mutex.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Two-generation LRU cache.
#[derive(Debug)]
pub struct LruCache<K: Hash + Eq + Clone, V: Clone> {
    hot: HashMap<K, V>,
    cold: HashMap<K, V>,
    gen_capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `2 * gen_capacity` entries.
    pub fn new(gen_capacity: usize) -> Self {
        LruCache {
            hot: HashMap::new(),
            cold: HashMap::new(),
            gen_capacity: gen_capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch a value, promoting cold hits to the hot generation.
    pub fn get(&mut self, key: &K) -> Option<V> {
        if let Some(v) = self.hot.get(key) {
            self.hits += 1;
            return Some(v.clone());
        }
        if let Some(v) = self.cold.remove(key) {
            self.hits += 1;
            self.insert(key.clone(), v.clone());
            return Some(v);
        }
        self.misses += 1;
        None
    }

    /// Insert a value into the hot generation, aging hot → cold when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.hot.len() >= self.gen_capacity && !self.hot.contains_key(&key) {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, value);
    }

    /// Number of entries currently cached (both generations).
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// `true` when nothing is cached.
    #[allow(dead_code)] // pairs with `len`; exercised by the tests below
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since creation or the last reset.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all entries and reset counters.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// Number of independently locked shards. A power of two so the hash mix
/// below spreads sequential keys evenly.
const CACHE_SHARDS: usize = 16;

/// A concurrent two-generation cache: [`CACHE_SHARDS`] independently locked
/// [`LruCache`]s, addressed by key hash. All operations take `&self`, so
/// reader threads share one cache without an exclusive borrow; the short
/// per-shard critical sections keep contention negligible.
#[derive(Debug)]
pub struct ShardedCache<K: Hash + Eq + Clone, V: Clone> {
    shards: Vec<Mutex<LruCache<K, V>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedCache<K, V> {
    /// A cache holding at most `2 * gen_capacity` entries across all
    /// shards (each shard gets an equal slice of the generation budget).
    pub fn new(gen_capacity: usize) -> Self {
        let per_shard = (gen_capacity / CACHE_SHARDS).max(1);
        ShardedCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % CACHE_SHARDS]
    }

    /// Fetch a value, promoting cold hits to the hot generation.
    pub fn get(&self, key: &K) -> Option<V> {
        self.shard(key).lock().get(key)
    }

    /// Insert a value into its shard's hot generation.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).lock().insert(key, value);
    }

    /// Number of entries currently cached (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Summed `(hits, misses)` counters across shards.
    pub fn stats(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(h, m), s| {
            let (sh, sm) = s.lock().stats();
            (h + sh, m + sm)
        })
    }

    /// Drop all entries and reset counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_promotion() {
        let mut cache: LruCache<u64, String> = LruCache::new(2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "a".into());
        cache.insert(2, "b".into());
        assert_eq!(cache.get(&1).as_deref(), Some("a"));
        // Third insert ages {1, 2} into the cold generation.
        cache.insert(3, "c".into());
        assert!(cache.len() <= 4);
        // Cold hit promotes back to hot.
        assert_eq!(cache.get(&2).as_deref(), Some("b"));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut cache: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000 {
            cache.insert(i, i);
            assert!(cache.len() <= 16, "cache exceeded its bound at {i}");
        }
        // Old entries are evicted.
        assert_eq!(cache.get(&0), None);
        assert_eq!(cache.get(&999), Some(999));
    }

    #[test]
    fn clear_resets() {
        let mut cache: LruCache<u64, u64> = LruCache::new(4);
        cache.insert(1, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn sharded_cache_roundtrip_and_bound() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(64);
        for i in 0..10_000u64 {
            cache.insert(i, i * 2);
            // Per-shard bound: 2 * per-shard generation, summed over shards.
            assert!(cache.len() <= 2 * 64 + 2 * CACHE_SHARDS, "at {i}");
        }
        assert_eq!(cache.get(&9_999), Some(19_998));
        assert_eq!(cache.get(&0), None, "ancient entries age out");
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (1, 1));
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats(), (0, 0));
    }

    #[test]
    fn sharded_cache_concurrent_access() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(1024);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (i * 4 + t) % 512;
                        cache.insert(key, key * 10);
                        if let Some(v) = cache.get(&key) {
                            assert_eq!(v, key * 10, "torn cache value");
                        }
                    }
                });
            }
        });
    }
}
