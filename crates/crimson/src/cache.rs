//! A small two-generation (S3-FIFO-style) LRU cache with O(1) operations.
//!
//! Used by the repository for decoded [`crate::repository::NodeRecord`]s and
//! interval-index entries, so repeated structure queries skip both the
//! B+tree descent and the row decode. Exact LRU order is not maintained;
//! instead entries live in a *hot* generation and age into a *cold*
//! generation when the hot side fills. A hit in the cold generation promotes
//! the entry back to hot. Anything older than two generations is gone —
//! which is the same guarantee clock eviction gives the buffer pool below
//! it, at a fraction of the bookkeeping.
//!
//! The cache never holds more than `2 * gen_capacity` entries.

use std::collections::HashMap;
use std::hash::Hash;

/// Two-generation LRU cache.
#[derive(Debug)]
pub struct LruCache<K: Hash + Eq + Clone, V: Clone> {
    hot: HashMap<K, V>,
    cold: HashMap<K, V>,
    gen_capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// A cache holding at most `2 * gen_capacity` entries.
    pub fn new(gen_capacity: usize) -> Self {
        LruCache {
            hot: HashMap::new(),
            cold: HashMap::new(),
            gen_capacity: gen_capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Fetch a value, promoting cold hits to the hot generation.
    pub fn get(&mut self, key: &K) -> Option<V> {
        if let Some(v) = self.hot.get(key) {
            self.hits += 1;
            return Some(v.clone());
        }
        if let Some(v) = self.cold.remove(key) {
            self.hits += 1;
            self.insert(key.clone(), v.clone());
            return Some(v);
        }
        self.misses += 1;
        None
    }

    /// Insert a value into the hot generation, aging hot → cold when full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.hot.len() >= self.gen_capacity && !self.hot.contains_key(&key) {
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, value);
    }

    /// Number of entries currently cached (both generations).
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// `true` when nothing is cached.
    #[allow(dead_code)] // pairs with `len`; exercised by the tests below
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters since creation or the last reset.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Drop all entries and reset counters.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_promotion() {
        let mut cache: LruCache<u64, String> = LruCache::new(2);
        assert_eq!(cache.get(&1), None);
        cache.insert(1, "a".into());
        cache.insert(2, "b".into());
        assert_eq!(cache.get(&1).as_deref(), Some("a"));
        // Third insert ages {1, 2} into the cold generation.
        cache.insert(3, "c".into());
        assert!(cache.len() <= 4);
        // Cold hit promotes back to hot.
        assert_eq!(cache.get(&2).as_deref(), Some("b"));
        let (hits, misses) = cache.stats();
        assert_eq!((hits, misses), (2, 1));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut cache: LruCache<u64, u64> = LruCache::new(8);
        for i in 0..1000 {
            cache.insert(i, i);
            assert!(cache.len() <= 16, "cache exceeded its bound at {i}");
        }
        // Old entries are evicted.
        assert_eq!(cache.get(&0), None);
        assert_eq!(cache.get(&999), Some(999));
    }

    #[test]
    fn clear_resets() {
        let mut cache: LruCache<u64, u64> = LruCache::new(4);
        cache.insert(1, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), (0, 0));
    }
}
