//! The Benchmark Manager (§2.2): sample → project → reconstruct → compare.
//!
//! "The Benchmark Manager tests and evaluates tree inference algorithms
//! against the gold-standard simulation tree." A run consists of:
//!
//! 1. **Sample** a subset of species from the stored gold standard (any
//!    [`SamplingStrategy`]).
//! 2. **Project** the gold standard onto the sample — the reference answer.
//! 3. Build the algorithm's input: either the species **sequences** (with a
//!    distance correction) or the **true patristic distances** from the
//!    projection (the idealized, noise-free case).
//! 4. **Reconstruct** a tree with UPGMA or Neighbor-Joining.
//! 5. **Compare** the reconstruction against the projection with
//!    Robinson–Foulds (unrooted and rooted) and optionally triplet distance.

use crate::error::{CrimsonError, CrimsonResult};
use crate::history::QueryKind;
use crate::repository::{Repository, TreeHandle};
use crate::sampling::SamplingStrategy;
use phylo::distance::patristic_matrix;
use phylo::Tree;
use reconstruction::compare::{
    robinson_foulds, rooted_robinson_foulds, triplet_distance, RfResult,
};
use reconstruction::distance::{jc_corrected_matrix, k2p_corrected_matrix, p_distance_matrix};
use reconstruction::{neighbor_joining, upgma};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::time::Instant;

/// Reconstruction algorithm to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// UPGMA hierarchical clustering (assumes a molecular clock).
    Upgma,
    /// Neighbor-Joining (assumes additivity only).
    NeighborJoining,
}

impl Method {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Method::Upgma => "UPGMA",
            Method::NeighborJoining => "NJ",
        }
    }
}

/// Where the algorithm's input distances come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceSource {
    /// True patristic distances read off the projected gold standard — the
    /// noise-free upper bound on algorithm performance.
    TruePatristic,
    /// Raw p-distances computed from stored sequences.
    SequencesP,
    /// Jukes–Cantor corrected distances from stored sequences.
    SequencesJc,
    /// Kimura two-parameter corrected distances from stored sequences.
    SequencesK2p,
}

impl DistanceSource {
    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            DistanceSource::TruePatristic => "true-patristic",
            DistanceSource::SequencesP => "seq-p",
            DistanceSource::SequencesJc => "seq-jc",
            DistanceSource::SequencesK2p => "seq-k2p",
        }
    }
}

/// Specification of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkSpec {
    /// How to choose the species sample.
    pub strategy: SamplingStrategy,
    /// The algorithm under evaluation.
    pub method: Method,
    /// The algorithm's input distances.
    pub distance_source: DistanceSource,
    /// Whether to also compute the (cubic-time) triplet distance.
    pub compute_triplets: bool,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for BenchmarkSpec {
    fn default() -> Self {
        BenchmarkSpec {
            strategy: SamplingStrategy::Uniform { k: 32 },
            method: Method::NeighborJoining,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 0,
        }
    }
}

/// Timings of the individual pipeline stages, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Sampling time.
    pub sampling_ms: f64,
    /// Projection time.
    pub projection_ms: f64,
    /// Distance-matrix construction time.
    pub distances_ms: f64,
    /// Reconstruction time.
    pub reconstruction_ms: f64,
    /// Comparison time.
    pub comparison_ms: f64,
}

/// Result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkReport {
    /// Number of species in the sample.
    pub sample_size: usize,
    /// The evaluated algorithm.
    pub method: Method,
    /// The input distance source.
    pub distance_source: DistanceSource,
    /// Unrooted Robinson–Foulds comparison against the projected truth.
    pub rf: RfResult,
    /// Rooted (clade-based) Robinson–Foulds comparison.
    pub rooted_rf: RfResult,
    /// Triplet distance, when requested.
    pub triplet: Option<f64>,
    /// Stage timings.
    pub timings: StageTimings,
    /// The projected gold-standard subtree (the reference answer).
    pub reference: Tree,
    /// The reconstructed tree.
    pub reconstruction: Tree,
}

impl BenchmarkReport {
    /// One line in the style the experiment tables use.
    pub fn summary_row(&self) -> String {
        format!(
            "{:>5} taxa  {:<6} {:<14} RF={:<4} nRF={:.3}  rootedRF={:<4} time[s/p/d/r/c]={:.1}/{:.1}/{:.1}/{:.1}/{:.1}ms",
            self.sample_size,
            self.method.name(),
            self.distance_source.name(),
            self.rf.distance,
            self.rf.normalized,
            self.rooted_rf.distance,
            self.timings.sampling_ms,
            self.timings.projection_ms,
            self.timings.distances_ms,
            self.timings.reconstruction_ms,
            self.timings.comparison_ms,
        )
    }
}

/// The Benchmark Manager. Borrows the repository mutably so that runs are
/// recorded in the Query Repository.
pub struct BenchmarkManager<'a> {
    repo: &'a mut Repository,
    tree: TreeHandle,
}

impl<'a> BenchmarkManager<'a> {
    /// Create a manager for the given gold-standard tree.
    pub fn new(repo: &'a mut Repository, tree: TreeHandle) -> Self {
        BenchmarkManager { repo, tree }
    }

    /// Execute one benchmark run.
    pub fn run(&mut self, spec: &BenchmarkSpec) -> CrimsonResult<BenchmarkReport> {
        let mut timings = StageTimings::default();

        // 1. Sample.
        let start = Instant::now();
        let sample = self.repo.sample(self.tree, &spec.strategy, spec.seed)?;
        timings.sampling_ms = start.elapsed().as_secs_f64() * 1e3;
        if sample.len() < 3 {
            return Err(CrimsonError::InvalidSample(
                "benchmark runs need at least 3 sampled species".to_string(),
            ));
        }

        // 2. Project the gold standard onto the sample (the reference).
        let start = Instant::now();
        let reference = self.repo.project(self.tree, &sample)?;
        timings.projection_ms = start.elapsed().as_secs_f64() * 1e3;

        // 3. Build the algorithm input.
        let start = Instant::now();
        let names = self.repo.names_of(&sample)?;
        let matrix = match spec.distance_source {
            DistanceSource::TruePatristic => patristic_matrix(&reference)?,
            DistanceSource::SequencesP => {
                p_distance_matrix(&self.repo.sequences_for(self.tree, &names)?)?
            }
            DistanceSource::SequencesJc => {
                jc_corrected_matrix(&self.repo.sequences_for(self.tree, &names)?)?
            }
            DistanceSource::SequencesK2p => {
                k2p_corrected_matrix(&self.repo.sequences_for(self.tree, &names)?)?
            }
        };
        timings.distances_ms = start.elapsed().as_secs_f64() * 1e3;

        // 4. Reconstruct.
        let start = Instant::now();
        let reconstruction = match spec.method {
            Method::Upgma => upgma(&matrix)?,
            Method::NeighborJoining => neighbor_joining(&matrix)?,
        };
        timings.reconstruction_ms = start.elapsed().as_secs_f64() * 1e3;

        // 5. Compare.
        let start = Instant::now();
        let rf = robinson_foulds(&reference, &reconstruction)?;
        let rooted_rf = rooted_robinson_foulds(&reference, &reconstruction)?;
        let triplet = if spec.compute_triplets {
            Some(triplet_distance(&reference, &reconstruction)?)
        } else {
            None
        };
        timings.comparison_ms = start.elapsed().as_secs_f64() * 1e3;

        let report = BenchmarkReport {
            sample_size: sample.len(),
            method: spec.method,
            distance_source: spec.distance_source,
            rf,
            rooted_rf,
            triplet,
            timings,
            reference,
            reconstruction,
        };
        self.repo.record_query(
            QueryKind::Benchmark,
            json!({
                "tree": self.tree.0,
                "method": spec.method.name(),
                "distance_source": spec.distance_source.name(),
                "sample_size": report.sample_size,
                "seed": spec.seed,
            }),
            &format!(
                "{} on {} taxa: RF={} (normalized {:.3})",
                spec.method.name(),
                report.sample_size,
                report.rf.distance,
                report.rf.normalized
            ),
        )?;
        Ok(report)
    }

    /// Run the same specification for several methods, returning one report
    /// per method — the head-to-head table the demo shows.
    pub fn compare_methods(
        &mut self,
        spec: &BenchmarkSpec,
        methods: &[Method],
    ) -> CrimsonResult<Vec<BenchmarkReport>> {
        methods
            .iter()
            .map(|m| {
                let mut s = spec.clone();
                s.method = *m;
                self.run(&s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use simulation::gold::GoldStandardBuilder;
    use simulation::seqevo::Model;
    use tempfile::tempdir;

    fn gold_repo(
        leaves: usize,
        sites: usize,
        seed: u64,
    ) -> (tempfile::TempDir, Repository, TreeHandle) {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: 8,
                buffer_pool_pages: 1024,
            },
        )
        .unwrap();
        let gold = GoldStandardBuilder::new()
            .leaves(leaves)
            .sequence_length(sites)
            .model(Model::Jc69 { rate: 0.1 })
            .seed(seed)
            .build()
            .unwrap();
        let handle = repo.load_gold_standard("gold", &gold).unwrap();
        (dir, repo, handle)
    }

    #[test]
    fn true_distance_nj_recovers_projection_exactly() {
        let (_d, mut repo, handle) = gold_repo(48, 0, 3);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let report = manager
            .run(&BenchmarkSpec {
                strategy: SamplingStrategy::Uniform { k: 16 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::TruePatristic,
                compute_triplets: true,
                seed: 1,
            })
            .unwrap();
        assert_eq!(report.sample_size, 16);
        // With exact additive distances NJ recovers the unrooted topology.
        assert_eq!(report.rf.distance, 0, "NJ on true distances must be exact");
        // The triplet distance is rooted, and NJ roots its output arbitrarily,
        // so it need not be zero — but it must be a valid fraction.
        let triplet = report.triplet.expect("triplets were requested");
        assert!((0.0..=1.0).contains(&triplet));
        assert!(report.summary_row().contains("NJ"));
    }

    #[test]
    fn true_distance_upgma_recovers_ultrametric_projection() {
        // The gold standard is a pure-birth (ultrametric) tree, but the
        // *projection* is still ultrametric, so UPGMA on true distances is
        // also exact.
        let (_d, mut repo, handle) = gold_repo(48, 0, 11);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let report = manager
            .run(&BenchmarkSpec {
                strategy: SamplingStrategy::Uniform { k: 20 },
                method: Method::Upgma,
                distance_source: DistanceSource::TruePatristic,
                compute_triplets: false,
                seed: 2,
            })
            .unwrap();
        assert_eq!(
            report.rf.distance, 0,
            "UPGMA on ultrametric true distances must be exact"
        );
    }

    #[test]
    fn sequence_based_run_produces_report_and_history() {
        let (_d, mut repo, handle) = gold_repo(32, 300, 7);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let report = manager
            .run(&BenchmarkSpec {
                strategy: SamplingStrategy::Uniform { k: 12 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::SequencesJc,
                compute_triplets: false,
                seed: 5,
            })
            .unwrap();
        assert_eq!(report.sample_size, 12);
        assert!(report.rf.normalized <= 1.0);
        assert_eq!(report.reference.leaf_count(), 12);
        assert_eq!(report.reconstruction.leaf_count(), 12);
        // The run was recorded in the query repository.
        let history = repo.history_of_kind(QueryKind::Benchmark).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].params["sample_size"], 12);
    }

    #[test]
    fn longer_sequences_reconstruct_no_worse_on_average() {
        // More data → better (or equal) reconstruction. Averaged over seeds to
        // damp stochastic flips.
        let mut short_err = 0usize;
        let mut long_err = 0usize;
        for seed in 0..3u64 {
            let (_d1, mut repo_short, h1) = gold_repo(24, 60, 100 + seed);
            let mut m1 = BenchmarkManager::new(&mut repo_short, h1);
            let r1 = m1
                .run(&BenchmarkSpec {
                    strategy: SamplingStrategy::Uniform { k: 12 },
                    method: Method::NeighborJoining,
                    distance_source: DistanceSource::SequencesJc,
                    compute_triplets: false,
                    seed,
                })
                .unwrap();
            short_err += r1.rf.distance;

            let (_d2, mut repo_long, h2) = gold_repo(24, 2000, 100 + seed);
            let mut m2 = BenchmarkManager::new(&mut repo_long, h2);
            let r2 = m2
                .run(&BenchmarkSpec {
                    strategy: SamplingStrategy::Uniform { k: 12 },
                    method: Method::NeighborJoining,
                    distance_source: DistanceSource::SequencesJc,
                    compute_triplets: false,
                    seed,
                })
                .unwrap();
            long_err += r2.rf.distance;
        }
        assert!(
            long_err <= short_err,
            "2000-site alignments ({long_err}) should not reconstruct worse than 60-site ones ({short_err})"
        );
    }

    #[test]
    fn compare_methods_runs_all() {
        let (_d, mut repo, handle) = gold_repo(32, 200, 13);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let reports = manager
            .compare_methods(
                &BenchmarkSpec {
                    strategy: SamplingStrategy::Uniform { k: 10 },
                    distance_source: DistanceSource::SequencesJc,
                    ..Default::default()
                },
                &[Method::Upgma, Method::NeighborJoining],
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].method, Method::Upgma);
        assert_eq!(reports[1].method, Method::NeighborJoining);
    }

    #[test]
    fn missing_sequences_error() {
        let (_d, mut repo, handle) = gold_repo(16, 0, 1); // no sequences loaded
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let err = manager.run(&BenchmarkSpec {
            strategy: SamplingStrategy::Uniform { k: 8 },
            distance_source: DistanceSource::SequencesJc,
            ..Default::default()
        });
        assert!(matches!(err, Err(CrimsonError::MissingSequences(_))));
    }

    #[test]
    fn tiny_sample_rejected() {
        let (_d, mut repo, handle) = gold_repo(16, 50, 2);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let err = manager.run(&BenchmarkSpec {
            strategy: SamplingStrategy::Uniform { k: 2 },
            ..Default::default()
        });
        assert!(matches!(err, Err(CrimsonError::InvalidSample(_))));
    }

    #[test]
    fn time_respecting_benchmark_runs() {
        let (_d, mut repo, handle) = gold_repo(64, 150, 21);
        let mut manager = BenchmarkManager::new(&mut repo, handle);
        let report = manager
            .run(&BenchmarkSpec {
                strategy: SamplingStrategy::TimeRespecting { time: 0.05, k: 16 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::SequencesJc,
                compute_triplets: false,
                seed: 3,
            })
            .unwrap();
        assert_eq!(report.sample_size, 16);
    }
}
