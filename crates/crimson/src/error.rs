//! Error type for the Crimson system.

use std::fmt;

/// Errors produced by the Crimson repository, loader, queries and benchmark
/// manager.
#[derive(Debug)]
pub enum CrimsonError {
    /// Error from the storage engine.
    Storage(storage::StorageError),
    /// Error from tree parsing or manipulation.
    Phylo(phylo::PhyloError),
    /// Error from tree comparison.
    Compare(reconstruction::compare::CompareError),
    /// Error from distance estimation.
    Distance(reconstruction::distance::DistanceError),
    /// The named tree does not exist in the repository.
    UnknownTree(String),
    /// The numeric tree handle does not exist in the repository.
    UnknownTreeId(u64),
    /// The named species does not exist for the given tree.
    UnknownSpecies(String),
    /// A stored node id was not found.
    UnknownNode(u64),
    /// The requested sample is invalid (e.g. larger than the taxon count).
    InvalidSample(String),
    /// The repository already contains a tree with this name.
    DuplicateTree(String),
    /// The repository already contains an experiment with this name.
    DuplicateExperiment(String),
    /// The named experiment does not exist in the repository.
    UnknownExperiment(String),
    /// The operation needs species sequence data that was never loaded.
    MissingSequences(String),
    /// Serialization of query history failed.
    History(String),
    /// Stored structures are internally inconsistent (e.g. a frame without a
    /// source node, a label-walk off the end of a parent chain, or an
    /// interval-index entry that contradicts the node table). Previously a
    /// panic; surfaced as a typed error so callers can distinguish a damaged
    /// repository file from a caller mistake.
    CorruptRepository(String),
    /// The tree carries no content address (stored by a pre-hash build and
    /// not yet backfilled), so a hash-based operation cannot answer. Run
    /// `Repository::backfill_clade_hashes` (or any checkpoint) to upgrade
    /// the file in place.
    MissingContentAddress(u64),
    /// A snapshot read exhausted its re-pin budget: every pinned epoch was
    /// retired mid-operation because the writer committed past the pool's
    /// bounded per-page version chains each time. With versioned reads this
    /// is a cold fallback (the stress harness shows it is unreachable at
    /// the shipped chain depth), kept so the snapshot contract degrades
    /// loudly instead of serving a torn view. Retry when the write burst
    /// subsides.
    Busy(String),
}

impl fmt::Display for CrimsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrimsonError::Storage(e) => write!(f, "storage error: {e}"),
            CrimsonError::Phylo(e) => write!(f, "tree error: {e}"),
            CrimsonError::Compare(e) => write!(f, "comparison error: {e}"),
            CrimsonError::Distance(e) => write!(f, "distance error: {e}"),
            CrimsonError::UnknownTree(name) => write!(f, "unknown tree `{name}`"),
            CrimsonError::UnknownTreeId(id) => write!(f, "unknown tree id {id}"),
            CrimsonError::UnknownSpecies(name) => write!(f, "unknown species `{name}`"),
            CrimsonError::UnknownNode(id) => write!(f, "unknown stored node {id}"),
            CrimsonError::InvalidSample(m) => write!(f, "invalid sample: {m}"),
            CrimsonError::DuplicateTree(name) => write!(f, "tree `{name}` already loaded"),
            CrimsonError::DuplicateExperiment(name) => {
                write!(f, "experiment `{name}` already exists")
            }
            CrimsonError::UnknownExperiment(name) => write!(f, "unknown experiment `{name}`"),
            CrimsonError::MissingSequences(name) => {
                write!(f, "no sequence data loaded for tree `{name}`")
            }
            CrimsonError::History(m) => write!(f, "query history error: {m}"),
            CrimsonError::CorruptRepository(m) => write!(f, "corrupt repository: {m}"),
            CrimsonError::MissingContentAddress(id) => {
                write!(
                    f,
                    "tree {id} has no content address (pre-hash file); run backfill_clade_hashes"
                )
            }
            CrimsonError::Busy(m) => write!(f, "repository busy: {m}"),
        }
    }
}

impl std::error::Error for CrimsonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CrimsonError::Storage(e) => Some(e),
            CrimsonError::Phylo(e) => Some(e),
            CrimsonError::Compare(e) => Some(e),
            CrimsonError::Distance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<storage::StorageError> for CrimsonError {
    fn from(e: storage::StorageError) -> Self {
        CrimsonError::Storage(e)
    }
}

impl From<phylo::PhyloError> for CrimsonError {
    fn from(e: phylo::PhyloError) -> Self {
        CrimsonError::Phylo(e)
    }
}

impl From<reconstruction::compare::CompareError> for CrimsonError {
    fn from(e: reconstruction::compare::CompareError) -> Self {
        CrimsonError::Compare(e)
    }
}

impl From<reconstruction::distance::DistanceError> for CrimsonError {
    fn from(e: reconstruction::distance::DistanceError) -> Self {
        CrimsonError::Distance(e)
    }
}

/// Convenience alias.
pub type CrimsonResult<T> = Result<T, CrimsonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CrimsonError::UnknownTree("gold".into())
            .to_string()
            .contains("gold"));
        assert!(CrimsonError::UnknownNode(9).to_string().contains('9'));
        assert!(CrimsonError::InvalidSample("too big".into())
            .to_string()
            .contains("too big"));
    }

    #[test]
    fn conversions() {
        let s: CrimsonError = storage::StorageError::UnknownTable("x".into()).into();
        assert!(matches!(s, CrimsonError::Storage(_)));
        let p: CrimsonError = phylo::PhyloError::EmptyTree.into();
        assert!(matches!(p, CrimsonError::Phylo(_)));
        assert!(std::error::Error::source(&p).is_some());
    }
}
