//! Content-addressed tree storage: canonical clade hashes, O(1) equality,
//! dedup-on-store and structurally shared ("cold") trees.
//!
//! Every stored tree carries the per-clade Merkle hashes of
//! [`labeling::clade_hash`] in two raw indexes (`hash_by_pre` per tree,
//! `hash_idx` globally) plus one `tree_stats` summary row. On top of those
//! this module implements:
//!
//! * **O(1) equality** — [`Repository::trees_equal`] compares two stats
//!   rows; [`Repository::subtrees_equal`] compares two `hash_by_pre`
//!   probes. No scan, no node rows.
//! * **No-scan lookup** — [`Repository::trees_with_root_hash`] /
//!   [`Repository::subtrees_with_hash`] answer "which stored trees or
//!   subtrees equal this one" from a 16-byte prefix range of `hash_idx`.
//! * **Dedup-on-store** — [`Repository::store_tree_dedup`] returns the
//!   canonical stored tree when an identical one already exists, instead of
//!   writing a second full copy; the experiment runner persists sweep
//!   reconstructions through it.
//! * **Cold storage** — [`Repository::store_tree_shared`] materializes only
//!   the spine of a tree: duplicate subtrees above a size threshold are
//!   bridged to their canonical copy by [`labeling::clade_hash::CladeRef`]
//!   rows, and [`crate::compare::StoredCladeSource`] stitches the bridged
//!   spans back transparently during streaming comparison.
//! * **Backfill** — [`Repository::backfill_clade_hashes`] reconstructs the
//!   content address of trees stored by pre-hash builds from their interval
//!   entries and leaf rows; checkpoints run it automatically, so an old
//!   file upgrades in place.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{
    decode_node_row, decode_tree_stats_row, ReadCtx, Repository, StoredNodeId, TreeHandle,
    TreeRecord, TreeStatsRecord, BULK_FILL, HASH_IDX_MIN_SPAN, STATS_FLAG_COLD,
    STATS_FLAG_DISTINCT_LEAVES, TREE_SHIFT,
};
use labeling::clade_hash::{
    self, decode_hash_by_pre_key, decode_hash_idx_key, hash_by_pre_key, hash_idx_key,
    hash_idx_prefix, hash_idx_range_end, pack_span, unpack_span, CladeHash, CladeRef,
};
use labeling::interval::{interval_key_prefix, interval_range_end, IntervalEntry, IntervalLabels};
use phylo::traverse::Traverse;
use phylo::Tree;
use std::collections::{HashMap, HashSet};
use storage::db::DbRead;
use storage::value::Value;

/// Distinct non-trivial rooted-clade and unrooted-split counts of one tree —
/// the denominators of the comparison metrics, persisted in `tree_stats` so
/// the equal-tree short-circuit can synthesize a full [`reconstruction::compare::RfResult`]
/// without streaming either tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CladeCounts {
    /// `|clades(T)|`: distinct leaf sets of size `2..=n-1`.
    pub rooted: u64,
    /// `|splits(T)|`: distinct non-trivial bipartitions (smaller side ≥ 2).
    pub unrooted: u64,
}

/// Count distinct non-trivial rooted clades and unrooted splits from the
/// per-node leaf-rank spans `(lo, hi)` of a tree with `n_leaves` leaves.
///
/// In a DFS numbering every subtree's leaf set is exactly the contiguous
/// rank interval `[lo, hi]`, so distinct intervals are distinct leaf sets:
/// a size filter replaces the explicit root/leaf checks (the root spans all
/// `n` leaves, a leaf spans one), and unrooted splits canonicalize to the
/// side not containing rank 0 — matching the comparison module's sets
/// exactly.
pub(crate) fn count_clades(spans: impl Iterator<Item = (u32, u32)>, n_leaves: u32) -> CladeCounts {
    let n = n_leaves;
    let mut clades: HashSet<(u32, u32)> = HashSet::new();
    let mut splits: HashSet<(u32, u32)> = HashSet::new();
    for (lo, hi) in spans {
        if lo > hi {
            continue;
        }
        let size = hi - lo + 1;
        if size >= 2 && size < n {
            clades.insert((lo, hi));
        }
        if n >= 2 && size >= 2 && size <= n - 2 {
            let canonical = if lo == 0 { (hi + 1, n - 1) } else { (lo, hi) };
            splits.insert(canonical);
        }
    }
    CladeCounts {
        rooted: clades.len() as u64,
        unrooted: splits.len() as u64,
    }
}

/// The full content address of an in-memory tree: per-node hashes (arena
/// indexed), clade counts and the distinct-leaf-names flag. The bulk loader
/// computes all of this inside its single DFS; this standalone version
/// serves the reference load path, dedup probing and cold storage.
pub(crate) struct TreeContent {
    /// Canonical clade hash per node, indexed by arena index.
    pub hashes: Vec<CladeHash>,
    /// Distinct clade/split counts.
    pub counts: CladeCounts,
    /// Every leaf named, no duplicates.
    pub distinct_leaves: bool,
}

impl TreeContent {
    /// Compute hashes, counts and the leaf flag in two post-order passes.
    pub fn compute(tree: &Tree) -> TreeContent {
        let hashes = clade_hash::tree_hashes(tree);
        let n = tree.node_count();
        let mut lo = vec![u32::MAX; n];
        let mut hi = vec![0u32; n];
        let mut next_rank = 0u32;
        for v in tree.postorder() {
            let vi = v.index();
            if tree.is_leaf(v) {
                lo[vi] = next_rank;
                hi[vi] = next_rank;
                next_rank += 1;
            }
            if let Some(p) = tree.parent(v) {
                let pi = p.index();
                lo[pi] = lo[pi].min(lo[vi]);
                hi[pi] = hi[pi].max(hi[vi]);
            }
        }
        let counts = count_clades((0..n).map(|i| (lo[i], hi[i])), next_rank);
        TreeContent {
            hashes,
            counts,
            distinct_leaves: clade_hash::distinct_named_leaves(tree),
        }
    }
}

/// Aggregate structural-sharing statistics over the whole repository — the
/// dedup bench's headline numbers and the example's report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContentStats {
    /// Trees in the catalog.
    pub trees: u64,
    /// Trees carrying a content-address row.
    pub hashed_trees: u64,
    /// Trees stored cold (structurally shared).
    pub cold_trees: u64,
    /// Sum of logical node counts across all trees.
    pub logical_nodes: u64,
    /// Node rows actually materialized.
    pub stored_nodes: u64,
    /// Logical nodes represented by bridges instead of rows.
    pub bridged_nodes: u64,
    /// Structural-sharing reference rows.
    pub dedup_refs: u64,
}

// ---------------------------------------------------------------------------
// Read surface
// ---------------------------------------------------------------------------

impl<'a, D: DbRead> ReadCtx<'a, D> {
    /// The content-address summary row of a tree, `None` when the tree was
    /// stored by a pre-hash build and has not been backfilled yet.
    pub fn tree_stats(&self, handle: TreeHandle) -> CrimsonResult<Option<TreeStatsRecord>> {
        let rows = self.db.lookup_rows(
            self.tables.tree_stats,
            "tree_id",
            &Value::Int(handle.0 as i64),
        )?;
        match rows.into_iter().next() {
            Some((rid, row)) => decode_tree_stats_row(&row).map(Some).ok_or_else(|| {
                CrimsonError::CorruptRepository(format!(
                    "tree_stats row {rid} carries a malformed clade hash"
                ))
            }),
            None => Ok(None),
        }
    }

    /// The stats row, failing with a typed error when absent.
    pub fn require_tree_stats(&self, handle: TreeHandle) -> CrimsonResult<TreeStatsRecord> {
        self.tree_stats(handle)?
            .ok_or(CrimsonError::MissingContentAddress(handle.0))
    }

    /// The stored clade hash and end rank of the subtree rooted at rank
    /// `pre` of `tree`: one covering probe of `hash_by_pre`. `None` when the
    /// tree carries no hashes (pre-hash file) or the rank does not exist.
    pub fn subtree_hash_at(
        &self,
        tree: TreeHandle,
        pre: u32,
    ) -> CrimsonResult<Option<(CladeHash, u32)>> {
        let low = interval_key_prefix(tree.0, pre);
        let high = interval_range_end(tree.0, pre);
        match self
            .db
            .raw_first_in_range(self.tables.hash_by_pre, &low, &high, |key, value| {
                decode_hash_by_pre_key(key).map(|(_, _, h)| (h, unpack_span(value).1))
            })? {
            Some(Some(found)) => Ok(Some(found)),
            Some(None) => Err(CrimsonError::CorruptRepository(
                "malformed clade-hash key".to_string(),
            )),
            None => Ok(None),
        }
    }

    /// The canonical clade hash of the subtree rooted at a stored node.
    pub fn node_content_hash(&self, id: StoredNodeId) -> CrimsonResult<CladeHash> {
        let tree = id.0 >> TREE_SHIFT;
        let (pre, _) = self.interval_of(id)?;
        self.subtree_hash_at(TreeHandle(tree), pre)?
            .map(|(h, _)| h)
            .ok_or(CrimsonError::MissingContentAddress(tree))
    }

    /// O(1) whole-tree equality: same unordered topology with the same
    /// leaf-name multiset. Two stats-row lookups, no tree is streamed.
    pub fn trees_equal(&self, a: TreeHandle, b: TreeHandle) -> CrimsonResult<bool> {
        let sa = self.require_tree_stats(a)?;
        let sb = self.require_tree_stats(b)?;
        Ok(sa.root_hash == sb.root_hash)
    }

    /// O(1) subtree equality between two stored nodes (possibly of
    /// different trees): two interval lookups and two hash probes.
    pub fn subtrees_equal(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<bool> {
        Ok(self.node_content_hash(a)? == self.node_content_hash(b)?)
    }

    /// Every `hash_idx` occurrence of `hash` as `(tree, pre, end)` — tree
    /// roots plus internal subtrees spanning at least
    /// [`HASH_IDX_MIN_SPAN`](crate::repository) nodes of fully materialized
    /// trees.
    pub fn subtrees_with_hash(
        &self,
        hash: CladeHash,
    ) -> CrimsonResult<Vec<(TreeHandle, u32, u32)>> {
        let low = hash_idx_prefix(hash);
        let high = hash_idx_range_end(hash);
        let mut out = Vec::new();
        let mut malformed = false;
        self.db.raw_scan(
            self.tables.hash_idx,
            Some(low.as_slice()),
            high.as_ref().map(|h| h.as_slice()),
            &mut |key, value| match decode_hash_idx_key(key) {
                Some((_, tree, pre)) => {
                    let (_, end) = unpack_span(value);
                    out.push((TreeHandle(tree), pre, end));
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed {
            return Err(CrimsonError::CorruptRepository(
                "malformed content-address key".to_string(),
            ));
        }
        Ok(out)
    }

    /// Stored trees whose whole-tree content address equals `hash` — the
    /// `pre == 0` slice of [`ReadCtx::subtrees_with_hash`].
    pub fn trees_with_root_hash(&self, hash: CladeHash) -> CrimsonResult<Vec<TreeHandle>> {
        Ok(self
            .subtrees_with_hash(hash)?
            .into_iter()
            .filter(|&(_, pre, _)| pre == 0)
            .map(|(tree, _, _)| tree)
            .collect())
    }

    /// The structural-sharing reference rows of a cold tree, in pre order
    /// (empty for hot trees).
    pub fn clade_refs_of(&self, handle: TreeHandle) -> CrimsonResult<Vec<CladeRef>> {
        let low = handle.0.to_be_bytes();
        let high = (handle.0 + 1).to_be_bytes();
        let mut out = Vec::new();
        let mut malformed = false;
        self.db.raw_scan(
            self.tables.clade_refs,
            Some(low.as_slice()),
            Some(high.as_slice()),
            &mut |key, value| match CladeRef::decode(key, value) {
                Some((_, r)) => {
                    out.push(r);
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed {
            return Err(CrimsonError::CorruptRepository(
                "malformed clade-ref key".to_string(),
            ));
        }
        Ok(out)
    }

    /// Map every distinct clade hash of `handle` to one pre-order rank
    /// carrying it — one range scan of the tree's `hash_by_pre` slice. The
    /// experiment runner uses it to remap per-clade agreement rows onto a
    /// deduplicated canonical tree.
    pub(crate) fn hash_to_pre_map(
        &self,
        handle: TreeHandle,
    ) -> CrimsonResult<HashMap<CladeHash, u32>> {
        let low = handle.0.to_be_bytes();
        let high = (handle.0 + 1).to_be_bytes();
        let mut map = HashMap::new();
        self.db.raw_scan(
            self.tables.hash_by_pre,
            Some(low.as_slice()),
            Some(high.as_slice()),
            &mut |key, _| {
                if let Some((_, pre, h)) = decode_hash_by_pre_key(key) {
                    map.entry(h).or_insert(pre);
                }
                Ok(true)
            },
        )?;
        Ok(map)
    }

    /// Map every distinct clade hash of `handle` to one stored node
    /// carrying it: the hash→pre map joined with a `ivl_by_pre` scan. Used
    /// to remap per-clade agreement rows onto a deduplicated canonical
    /// tree, whose arena numbering is unrelated to the reconstruction's.
    pub(crate) fn hash_to_node_map(
        &self,
        handle: TreeHandle,
    ) -> CrimsonResult<HashMap<CladeHash, StoredNodeId>> {
        let by_pre = self.hash_to_pre_map(handle)?;
        let low = handle.0.to_be_bytes();
        let high = (handle.0 + 1).to_be_bytes();
        let mut pre_to_node: HashMap<u32, u32> = HashMap::with_capacity(by_pre.len());
        self.db.raw_scan(
            self.tables.ivl_by_pre,
            Some(low.as_slice()),
            Some(high.as_slice()),
            &mut |key, _| {
                if let Some((_, e)) = IntervalEntry::decode_key(key) {
                    pre_to_node.insert(e.pre, e.node);
                }
                Ok(true)
            },
        )?;
        let mut map = HashMap::with_capacity(by_pre.len());
        for (hash, pre) in by_pre {
            if let Some(&node) = pre_to_node.get(&pre) {
                map.insert(hash, StoredNodeId((handle.0 << TREE_SHIFT) | node as u64));
            }
        }
        Ok(map)
    }

    /// Aggregate sharing statistics across the whole repository.
    pub fn content_stats(&self) -> CrimsonResult<ContentStats> {
        let mut stats = ContentStats::default();
        for t in self.list_trees()? {
            stats.trees += 1;
            stats.logical_nodes += t.node_count;
            let Some(row) = self.tree_stats(t.handle)? else {
                stats.stored_nodes += t.node_count;
                continue;
            };
            stats.hashed_trees += 1;
            if row.cold {
                stats.cold_trees += 1;
                let refs = self.clade_refs_of(t.handle)?;
                let bridged: u64 = refs.iter().map(|r| (r.end - r.pre + 1) as u64).sum();
                stats.dedup_refs += refs.len() as u64;
                stats.bridged_nodes += bridged;
                stats.stored_nodes += t.node_count - bridged;
            } else {
                stats.stored_nodes += t.node_count;
            }
        }
        Ok(stats)
    }
}

// ---------------------------------------------------------------------------
// Writer surface
// ---------------------------------------------------------------------------

impl Repository {
    /// Persist the content address of a freshly loaded, fully materialized
    /// tree: the `hash_by_pre` run (sorted, rides the bulk appender — the
    /// new tree id sorts after every existing key), the thresholded global
    /// `hash_idx` entries (point inserts; hash-first keys interleave across
    /// trees) and the `tree_stats` summary row.
    pub(crate) fn insert_content_address(
        &mut self,
        tree_id: u64,
        rows: impl Iterator<Item = (u32, u32, CladeHash)>,
        counts: CladeCounts,
        distinct_leaves: bool,
    ) -> CrimsonResult<()> {
        let rows: Vec<(u32, u32, CladeHash)> = rows.collect();
        let root_hash = rows
            .first()
            .map(|&(_, _, h)| h)
            .ok_or(CrimsonError::Phylo(phylo::PhyloError::EmptyTree))?;
        self.db.bulk_raw_insert(
            self.tables.hash_by_pre,
            BULK_FILL,
            rows.iter()
                .map(|&(pre, end, h)| (hash_by_pre_key(tree_id, pre, h), pack_span(pre, end))),
        )?;
        for &(pre, end, h) in &rows {
            if pre == 0 || end - pre + 1 >= HASH_IDX_MIN_SPAN {
                self.db.raw_insert(
                    self.tables.hash_idx,
                    &hash_idx_key(h, tree_id, pre),
                    pack_span(pre, end),
                )?;
            }
        }
        self.insert_tree_stats(tree_id, root_hash, counts, distinct_leaves, false)
    }

    /// Insert one `tree_stats` row.
    fn insert_tree_stats(
        &mut self,
        tree_id: u64,
        root_hash: CladeHash,
        counts: CladeCounts,
        distinct_leaves: bool,
        cold: bool,
    ) -> CrimsonResult<()> {
        let mut flags = 0i64;
        if distinct_leaves {
            flags |= STATS_FLAG_DISTINCT_LEAVES;
        }
        if cold {
            flags |= STATS_FLAG_COLD;
        }
        self.db.insert(
            self.tables.tree_stats,
            &[
                Value::Int(tree_id as i64),
                Value::bytes(root_hash.as_bytes().to_vec()),
                Value::Int(counts.rooted as i64),
                Value::Int(counts.unrooted as i64),
                Value::Int(flags),
            ],
        )?;
        Ok(())
    }

    /// Store `tree` under `name` unless a content-identical tree already
    /// exists, in which case the canonical stored tree's handle is returned
    /// and **nothing is written** (no tree row is created under `name`).
    /// Returns `(handle, true)` on a dedup hit, `(handle, false)` after a
    /// full store. Trees without distinct leaf names are always stored in
    /// full — their content address is ambiguous by construction.
    pub fn store_tree_dedup(
        &mut self,
        name: &str,
        tree: &Tree,
    ) -> CrimsonResult<(TreeHandle, bool)> {
        if tree.is_empty() {
            return Err(CrimsonError::Phylo(phylo::PhyloError::EmptyTree));
        }
        if !clade_hash::distinct_named_leaves(tree) {
            return Ok((self.load_tree(name, tree)?, false));
        }
        let hash = clade_hash::root_hash(tree).expect("non-empty tree has a root");
        for handle in self.ctx().trees_with_root_hash(hash)? {
            if let Some(stats) = self.ctx().tree_stats(handle)? {
                if stats.distinct_leaves && !stats.cold {
                    return Ok((handle, true));
                }
            }
        }
        Ok((self.load_tree(name, tree)?, false))
    }

    /// Store `tree` under `name` **cold**: internal subtrees of at least
    /// `min_span` nodes (clamped up to the global-index threshold) whose
    /// content address already exists in a fully materialized tree are not
    /// materialized — a [`CladeRef`] row bridges their logical `(pre, end)`
    /// span to the canonical copy, and only the remaining spine gets node
    /// rows and interval entries (with their *logical* pre-order ranks, so
    /// LCA and ancestor tests between materialized nodes work unchanged).
    ///
    /// Cold trees keep their full logical node/leaf counts in the catalog,
    /// carry hashes for every span (bridged ones included) but publish
    /// nothing to the global index (bridges must never chain), and store no
    /// frame rows — comparison streams and hash lookups are their query
    /// surface; label-walk and frame queries need a fully materialized tree.
    pub fn store_tree_shared(
        &mut self,
        name: &str,
        tree: &Tree,
        min_span: u32,
    ) -> CrimsonResult<TreeHandle> {
        self.with_txn(|repo| repo.store_tree_shared_inner(name, tree, min_span))
    }

    fn store_tree_shared_inner(
        &mut self,
        name: &str,
        tree: &Tree,
        min_span: u32,
    ) -> CrimsonResult<TreeHandle> {
        if tree.is_empty() {
            return Err(CrimsonError::Phylo(phylo::PhyloError::EmptyTree));
        }
        if self.find_tree(name)?.is_some() {
            return Err(CrimsonError::DuplicateTree(name.to_string()));
        }
        let tree_id = self.next_tree_id()?;
        let handle = TreeHandle(tree_id);
        let n = tree.node_count();
        let node_sid = |v: phylo::NodeId| StoredNodeId((tree_id << TREE_SHIFT) | v.0 as u64);

        let content = TreeContent::compute(tree);
        let intervals = IntervalLabels::build(tree);
        let root_dists = tree.all_root_distances();
        let depths = tree.all_depths();
        let mut heights = vec![0.0f64; n];
        for v in tree.postorder() {
            let mut h = 0.0f64;
            for &c in tree.children(v) {
                h = h.max(heights[c.index()] + tree.node(c).branch_length_or_zero());
            }
            heights[v.index()] = h;
        }

        // Pick the bridges: a pre-order walk that skips everything under an
        // already-bridged span. The root never bridges (a whole-tree
        // duplicate is `store_tree_dedup`'s job), and only spans published
        // in the global index are discoverable, so the effective threshold
        // is at least `HASH_IDX_MIN_SPAN`.
        let threshold = min_span.max(HASH_IDX_MIN_SPAN);
        let mut bridges: Vec<(CladeRef, CladeHash)> = Vec::new();
        let mut materialized: Vec<phylo::NodeId> = Vec::new();
        let mut skip_end: Option<u32> = None;
        for v in tree.preorder() {
            let (pre, end) = intervals.interval(v);
            if let Some(limit) = skip_end {
                if pre <= limit {
                    continue;
                }
                skip_end = None;
            }
            let span = end - pre + 1;
            if pre != 0 && span >= threshold {
                let hash = content.hashes[v.index()];
                if let Some((src_tree, src_pre, src_end)) = self.find_share_source(hash, span)? {
                    let parent = tree.parent(v).expect("non-root node has a parent");
                    bridges.push((
                        CladeRef {
                            pre,
                            end,
                            parent_pre: intervals.interval(parent).0,
                            src_tree,
                            src_pre,
                            src_end,
                        },
                        hash,
                    ));
                    skip_end = Some(end);
                    continue;
                }
            }
            materialized.push(v);
        }

        // Node rows for the materialized spine only. Cold trees store no
        // frames: frame_id -1 and an empty label mark the rows.
        let mut emit = 0usize;
        let row_ids = self
            .db
            .bulk_insert_with(self.tables.nodes, BULK_FILL, |values| {
                let Some(&v) = materialized.get(emit) else {
                    return Ok(false);
                };
                emit += 1;
                let is_leaf = tree.is_leaf(v);
                values.push(Value::Int(node_sid(v).0 as i64));
                values.push(Value::Int(tree_id as i64));
                values.push(match tree.parent(v) {
                    Some(p) => Value::Int(node_sid(p).0 as i64),
                    None => Value::Int(-1),
                });
                values.push(match tree.name(v) {
                    Some(nm) => Value::text(nm),
                    None => Value::Null,
                });
                values.push(match tree.branch_length(v) {
                    Some(l) => Value::Float(l),
                    None => Value::Null,
                });
                values.push(Value::Float(root_dists[v.index()]));
                values.push(Value::Int(depths[v.index()] as i64));
                values.push(Value::Int(intervals.interval(v).0 as i64));
                values.push(Value::Int(-1));
                values.push(Value::bytes(Vec::new()));
                values.push(Value::Bool(is_leaf));
                values.push(Value::Int(if is_leaf { tree_id as i64 } else { -1 }));
                values.push(Value::Float(heights[v.index()]));
                Ok(true)
            })?;

        // Interval entries for materialized nodes, with logical ranks (the
        // covering index simply has gaps where bridges sit).
        self.db.bulk_raw_insert(
            self.tables.ivl_by_pre,
            BULK_FILL,
            materialized.iter().enumerate().map(|(i, &v)| {
                let (pre, end) = intervals.interval(v);
                let parent_pre = match tree.parent(v) {
                    Some(p) => intervals.interval(p).0,
                    None => pre,
                };
                let entry = IntervalEntry {
                    pre,
                    end,
                    parent_pre,
                    node: v.0,
                    is_leaf: tree.is_leaf(v),
                };
                (entry.encode_key(tree_id), row_ids[i].to_u64())
            }),
        )?;
        let mut by_arena: Vec<usize> = materialized.iter().map(|v| v.index()).collect();
        by_arena.sort_unstable();
        self.db.bulk_raw_insert(
            self.tables.ivl_by_node,
            BULK_FILL,
            by_arena.iter().map(|&ai| {
                let sid = (tree_id << TREE_SHIFT) | ai as u64;
                let (pre, end) = intervals.interval(phylo::NodeId(ai as u32));
                (sid.to_be_bytes(), pack_span(pre, end))
            }),
        )?;

        // Hashes for every logical span: materialized nodes plus one entry
        // per bridge (the bridged subtree's own hash at its logical rank).
        let mut hash_rows: Vec<(u32, u32, CladeHash)> = materialized
            .iter()
            .map(|&v| {
                let (pre, end) = intervals.interval(v);
                (pre, end, content.hashes[v.index()])
            })
            .collect();
        hash_rows.extend(bridges.iter().map(|&(r, h)| (r.pre, r.end, h)));
        hash_rows.sort_unstable_by_key(|&(pre, _, _)| pre);
        self.db.bulk_raw_insert(
            self.tables.hash_by_pre,
            BULK_FILL,
            hash_rows
                .iter()
                .map(|&(pre, end, h)| (hash_by_pre_key(tree_id, pre, h), pack_span(pre, end))),
        )?;
        self.db.bulk_raw_insert(
            self.tables.clade_refs,
            BULK_FILL,
            bridges
                .iter()
                .map(|(r, _)| (r.encode_key(tree_id), pack_span(r.src_pre, r.src_end))),
        )?;

        self.insert_tree_stats(
            tree_id,
            content.hashes[tree.root_unchecked().index()],
            content.counts,
            content.distinct_leaves,
            true,
        )?;

        let leaf_count = tree.leaf_ids().count();
        self.db.insert(
            self.tables.trees,
            &[
                Value::Int(tree_id as i64),
                Value::text(name),
                Value::Int(node_sid(tree.root_unchecked()).0 as i64),
                Value::Int(n as i64),
                Value::Int(leaf_count as i64),
                Value::Int(self.options.frame_depth as i64),
            ],
        )?;
        Ok(handle)
    }

    /// A canonical source span for a bridge: any global-index occurrence of
    /// `hash` with a matching node span. Every `hash_idx` entry points into
    /// a fully materialized tree (cold trees publish nothing), so bridges
    /// never chain.
    fn find_share_source(
        &self,
        hash: CladeHash,
        span: u32,
    ) -> CrimsonResult<Option<(u64, u32, u32)>> {
        Ok(self
            .ctx()
            .subtrees_with_hash(hash)?
            .into_iter()
            .find(|&(_, pre, end)| end - pre + 1 == span)
            .map(|(tree, pre, end)| (tree.0, pre, end)))
    }

    /// Reconstruct and persist the content address of every tree that lacks
    /// one (trees stored by pre-hash builds), from their interval entries
    /// and leaf rows alone. Returns the number of trees backfilled. One
    /// atomic transaction; [`Repository::flush`] runs this automatically, so
    /// checkpointing an old file upgrades it in place.
    pub fn backfill_clade_hashes(&mut self) -> CrimsonResult<usize> {
        let missing: Vec<TreeRecord> = {
            let ctx = self.ctx();
            let mut out = Vec::new();
            for t in ctx.list_trees()? {
                if ctx.tree_stats(t.handle)?.is_none() {
                    out.push(t);
                }
            }
            out
        };
        if missing.is_empty() {
            return Ok(0);
        }
        let count = missing.len();
        self.with_txn(|repo| {
            for t in &missing {
                repo.backfill_tree(t)?;
            }
            Ok(())
        })?;
        Ok(count)
    }

    /// Backfill one tree: scan its interval range, rebuild leaf ranks and
    /// bottom-up hashes (descendants have higher pre-order ranks, so one
    /// descending pass finalizes children before their parent), and insert
    /// the hash entries point-wise (the tree's key range sits between newer
    /// trees, so the bulk appender does not apply).
    fn backfill_tree(&mut self, t: &TreeRecord) -> CrimsonResult<()> {
        let tree_id = t.handle.0;
        let n = t.node_count as usize;
        let low = tree_id.to_be_bytes();
        let high = (tree_id + 1).to_be_bytes();
        let mut entries: Vec<(IntervalEntry, storage::RecordId)> = Vec::with_capacity(n);
        let mut malformed = false;
        self.db.raw_scan(
            self.tables.ivl_by_pre,
            Some(low.as_slice()),
            Some(high.as_slice()),
            &mut |key, rid| match IntervalEntry::decode_key(key) {
                Some((_, e)) => {
                    entries.push((e, storage::RecordId::from_u64(rid)));
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed || entries.len() != n {
            return Err(CrimsonError::CorruptRepository(format!(
                "tree `{}` cannot be backfilled: its interval range holds {} entries for {} nodes",
                t.name,
                entries.len(),
                t.node_count
            )));
        }

        let mut names: Vec<Option<String>> = vec![None; n];
        let mut distinct = true;
        let mut seen = HashSet::new();
        for (i, (e, rid)) in entries.iter().enumerate() {
            if e.is_leaf {
                let row = self.db.get(self.tables.nodes, *rid)?;
                match decode_node_row(&row).name {
                    Some(nm) => {
                        if !seen.insert(nm.clone()) {
                            distinct = false;
                        }
                        names[i] = Some(nm);
                    }
                    None => distinct = false,
                }
            }
        }

        let mut hashes = vec![CladeHash([0u8; clade_hash::CLADE_HASH_LEN]); n];
        let mut pending: Vec<Vec<CladeHash>> = vec![Vec::new(); n];
        let mut lo = vec![u32::MAX; n];
        let mut hi = vec![0u32; n];
        let mut next_rank = 0u32;
        for (i, (e, _)) in entries.iter().enumerate() {
            if e.is_leaf {
                lo[i] = next_rank;
                hi[i] = next_rank;
                next_rank += 1;
            }
        }
        for i in (0..n).rev() {
            let e = entries[i].0;
            if e.pre as usize != i {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree `{}` cannot be backfilled: rank {} holds entry pre {}",
                    t.name, i, e.pre
                )));
            }
            hashes[i] = if e.is_leaf {
                CladeHash::leaf(names[i].as_deref())
            } else {
                let mut kids = std::mem::take(&mut pending[i]);
                CladeHash::internal(&mut kids)
            };
            if e.parent_pre != e.pre {
                let p = e.parent_pre as usize;
                pending[p].push(hashes[i]);
                lo[p] = lo[p].min(lo[i]);
                hi[p] = hi[p].max(hi[i]);
            }
        }
        let counts = count_clades((0..n).map(|i| (lo[i], hi[i])), next_rank);

        for (i, (e, _)) in entries.iter().enumerate() {
            self.db.raw_insert(
                self.tables.hash_by_pre,
                &hash_by_pre_key(tree_id, e.pre, hashes[i]),
                pack_span(e.pre, e.end),
            )?;
            if e.pre == 0 || e.end - e.pre + 1 >= HASH_IDX_MIN_SPAN {
                self.db.raw_insert(
                    self.tables.hash_idx,
                    &hash_idx_key(hashes[i], tree_id, e.pre),
                    pack_span(e.pre, e.end),
                )?;
            }
        }
        self.insert_tree_stats(tree_id, hashes[0], counts, distinct, false)
    }

    // ------------------------------------------------------------------
    // Read delegates
    // ------------------------------------------------------------------

    /// The content-address summary row of a tree, `None` when absent
    /// (pre-hash file awaiting [`Repository::backfill_clade_hashes`]).
    pub fn tree_stats(&self, handle: TreeHandle) -> CrimsonResult<Option<TreeStatsRecord>> {
        self.ctx().tree_stats(handle)
    }

    /// O(1) whole-tree equality via stored root hashes.
    pub fn trees_equal(&self, a: TreeHandle, b: TreeHandle) -> CrimsonResult<bool> {
        self.ctx().trees_equal(a, b)
    }

    /// O(1) subtree equality between two stored nodes.
    pub fn subtrees_equal(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<bool> {
        self.ctx().subtrees_equal(a, b)
    }

    /// The canonical clade hash of the subtree rooted at a stored node.
    pub fn subtree_hash(&self, id: StoredNodeId) -> CrimsonResult<CladeHash> {
        self.ctx().node_content_hash(id)
    }

    /// Stored trees whose content address equals `hash` (no-scan lookup).
    pub fn trees_with_root_hash(&self, hash: CladeHash) -> CrimsonResult<Vec<TreeHandle>> {
        self.ctx().trees_with_root_hash(hash)
    }

    /// Every published stored subtree whose content address equals `hash`,
    /// as `(tree, pre, end)` spans.
    pub fn subtrees_with_hash(
        &self,
        hash: CladeHash,
    ) -> CrimsonResult<Vec<(TreeHandle, u32, u32)>> {
        self.ctx().subtrees_with_hash(hash)
    }

    /// The structural-sharing reference rows of a cold tree.
    pub fn clade_refs_of(&self, handle: TreeHandle) -> CrimsonResult<Vec<CladeRef>> {
        self.ctx().clade_refs_of(handle)
    }

    /// Aggregate sharing statistics across the repository.
    pub fn content_stats(&self) -> CrimsonResult<ContentStats> {
        self.ctx().content_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::{balanced_binary, figure1_tree};
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("content.crimson"),
            RepositoryOptions {
                frame_depth: 4,
                buffer_pool_pages: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, repo)
    }

    /// Rebuild `src` node by node, inserting every node's children in an
    /// order drawn from `rng` — the same phylogeny with a different child
    /// order and arena layout.
    fn shuffled_rebuild(src: &Tree, rng: &mut rand::rngs::StdRng) -> Tree {
        use rand::seq::SliceRandom;
        fn copy(
            src: &Tree,
            out: &mut Tree,
            node: phylo::NodeId,
            parent: Option<phylo::NodeId>,
            rng: &mut rand::rngs::StdRng,
        ) {
            let dst = match parent {
                None => match src.name(node) {
                    Some(n) => out.add_named_node(n),
                    None => out.add_node(),
                },
                Some(p) => out
                    .add_child(
                        p,
                        src.name(node).map(str::to_string),
                        src.branch_length(node),
                    )
                    .unwrap(),
            };
            let mut kids: Vec<phylo::NodeId> = src.children(node).to_vec();
            kids.shuffle(rng);
            for k in kids {
                copy(src, out, k, Some(dst), rng);
            }
        }
        let mut out = Tree::new();
        copy(src, &mut out, src.root_unchecked(), None, rng);
        out
    }

    #[test]
    fn hash_canonicalization_is_order_invariant() {
        use rand::SeedableRng;
        // Property: the canonical hash of every clade survives arbitrary
        // child-order permutations and insertion-order shuffles of the same
        // phylogeny — the whole hash multiset, not just the root.
        for seed in 0..8u64 {
            let tree = yule_tree(96, 1.0, seed);
            let root = clade_hash::root_hash(&tree).unwrap();
            let mut sorted: Vec<CladeHash> = clade_hash::tree_hashes(&tree);
            sorted.sort_unstable_by_key(|h| h.to_u128());
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC1ADE);
            for _ in 0..5 {
                let shuffled = shuffled_rebuild(&tree, &mut rng);
                assert_eq!(clade_hash::root_hash(&shuffled).unwrap(), root);
                let mut hashes = clade_hash::tree_hashes(&shuffled);
                hashes.sort_unstable_by_key(|h| h.to_u128());
                assert_eq!(hashes, sorted, "hash multiset changed under shuffle");
            }
        }
    }

    #[test]
    fn distinct_topologies_do_not_collide() {
        // 500 independently simulated labeled topologies — every root hash
        // must be distinct (the canonical hash is a content address, so a
        // collision here would silently dedup different trees).
        let mut seen = HashSet::new();
        for seed in 0..500u64 {
            let tree = yule_tree(64, 1.0, seed);
            let hash = clade_hash::root_hash(&tree).unwrap();
            assert!(
                seen.insert(hash.to_u128()),
                "distinct topologies collided at seed {seed}"
            );
        }
    }

    #[test]
    fn count_clades_matches_known_small_trees() {
        // 4-leaf balanced binary: two cherries → 2 rooted clades, 1 split.
        let counts = TreeContent::compute(&balanced_binary(2, 1.0)).counts;
        assert_eq!(
            counts,
            CladeCounts {
                rooted: 2,
                unrooted: 1
            }
        );
        // A single leaf has neither.
        let mut leaf = Tree::new();
        leaf.add_named_node("only");
        let counts = TreeContent::compute(&leaf).counts;
        assert_eq!(counts, CladeCounts::default());
    }

    #[test]
    fn bulk_and_reference_loads_store_identical_content_addresses() {
        let (_d, mut repo) = repo();
        let tree = yule_tree(80, 1.0, 11);
        let ha = repo.load_tree("bulk", &tree).unwrap();
        let hb = repo.load_tree_reference("reference", &tree).unwrap();
        let sa = repo.tree_stats(ha).unwrap().unwrap();
        let sb = repo.tree_stats(hb).unwrap().unwrap();
        assert_eq!(sa.root_hash, sb.root_hash);
        assert_eq!(sa.rooted_clades, sb.rooted_clades);
        assert_eq!(sa.unrooted_splits, sb.unrooted_splits);
        assert!(sa.distinct_leaves && sb.distinct_leaves);
        assert!(!sa.cold && !sb.cold);
        assert!(repo.trees_equal(ha, hb).unwrap());
        // Per-node hashes agree too: both pre ranges map hash → pre
        // identically up to rank numbering.
        let ma = repo.ctx().hash_to_pre_map(ha).unwrap();
        let mb = repo.ctx().hash_to_pre_map(hb).unwrap();
        assert_eq!(ma, mb);
    }

    #[test]
    fn equality_and_lookup_across_distinct_trees() {
        let (_d, mut repo) = repo();
        let a = yule_tree(50, 1.0, 3);
        let b = yule_tree(50, 1.0, 4);
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();
        assert!(!repo.trees_equal(ha, hb).unwrap());
        let root_hash = clade_hash::root_hash(&a).unwrap();
        assert_eq!(repo.trees_with_root_hash(root_hash).unwrap(), vec![ha]);
        // Subtree self-equality via stored nodes.
        let root = repo.tree_record(ha).unwrap().root;
        assert!(repo.subtrees_equal(root, root).unwrap());
        assert_eq!(repo.subtree_hash(root).unwrap(), root_hash);
    }

    #[test]
    fn store_tree_dedup_returns_canonical_handle() {
        let (_d, mut repo) = repo();
        let tree = yule_tree(64, 1.0, 9);
        let (h1, hit1) = repo.store_tree_dedup("first", &tree).unwrap();
        assert!(!hit1);
        let (h2, hit2) = repo.store_tree_dedup("second", &tree).unwrap();
        assert!(hit2);
        assert_eq!(h1, h2);
        // No second tree row was created.
        assert_eq!(repo.list_trees().unwrap().len(), 1);
        // A different topology stores fresh.
        let other = yule_tree(64, 1.0, 10);
        let (h3, hit3) = repo.store_tree_dedup("third", &other).unwrap();
        assert!(!hit3);
        assert_ne!(h1, h3);
        let report = repo.integrity_check().unwrap();
        assert_eq!(report.hashed_trees, 2);
        assert_eq!(report.clade_refs, 0);
    }

    #[test]
    fn store_tree_shared_bridges_duplicate_subtrees() {
        let (_d, mut repo) = repo();
        let tree = yule_tree(300, 1.0, 21);
        let hot = repo.load_tree("hot", &tree).unwrap();
        let cold = repo.store_tree_shared("cold", &tree, 1).unwrap();
        let refs = repo.clade_refs_of(cold).unwrap();
        assert!(!refs.is_empty(), "an identical tree must bridge something");
        for r in &refs {
            assert_eq!(r.src_tree, hot.0);
            assert_eq!(r.end - r.pre, r.src_end - r.src_pre);
        }
        // Catalog keeps logical counts; stats flag the tree cold.
        let rec = repo.tree_record(cold).unwrap();
        assert_eq!(rec.node_count, tree.node_count() as u64);
        let stats = repo.tree_stats(cold).unwrap().unwrap();
        assert!(stats.cold);
        assert_eq!(
            stats.root_hash,
            repo.tree_stats(hot).unwrap().unwrap().root_hash
        );
        // Sharing statistics see the saved rows.
        let cs = repo.content_stats().unwrap();
        assert_eq!(cs.trees, 2);
        assert_eq!(cs.cold_trees, 1);
        assert!(cs.bridged_nodes > 0);
        assert_eq!(
            cs.stored_nodes + cs.bridged_nodes,
            2 * tree.node_count() as u64
        );
        // Cold trees publish nothing globally: the root hash resolves only
        // to the hot tree.
        let root_hash = clade_hash::root_hash(&tree).unwrap();
        assert_eq!(repo.trees_with_root_hash(root_hash).unwrap(), vec![hot]);
        // LCA between materialized nodes still works through the gaps.
        let root = rec.root;
        let (pre, end) = repo.interval_of(root).unwrap();
        assert_eq!((pre, end), (0, tree.node_count() as u32 - 1));
        // Cold trees, bridges, and the hash indexes all satisfy the
        // integrity invariants.
        let report = repo.integrity_check().unwrap();
        assert_eq!(report.hashed_trees, 2);
        assert_eq!(report.clade_refs, refs.len() as u64);
        assert!(report.hash_entries > 0);
        assert!(report.global_hash_entries > 0);
    }

    #[test]
    fn backfill_restores_stripped_content_addresses() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("backfill.crimson");
        let tree = yule_tree(70, 1.0, 5);
        let handle;
        let expected;
        {
            let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
            handle = repo.load_tree("t", &tree).unwrap();
            expected = repo.tree_stats(handle).unwrap().unwrap();
            // Simulate a pre-hash file: strip the stats row and every hash
            // entry, leaving exactly what an old build would have written.
            repo.db.begin().unwrap();
            let rows = repo.db.scan(repo.tables.tree_stats).unwrap();
            for (rid, _) in rows {
                repo.db.delete(repo.tables.tree_stats, rid).unwrap();
            }
            let mut keys: Vec<Vec<u8>> = Vec::new();
            repo.db
                .raw_scan(repo.tables.hash_by_pre, None, None, &mut |key, _| {
                    keys.push(key.to_vec());
                    Ok(true)
                })
                .unwrap();
            for key in &keys {
                repo.db.raw_delete(repo.tables.hash_by_pre, key).unwrap();
            }
            let mut keys: Vec<Vec<u8>> = Vec::new();
            repo.db
                .raw_scan(repo.tables.hash_idx, None, None, &mut |key, _| {
                    keys.push(key.to_vec());
                    Ok(true)
                })
                .unwrap();
            for key in &keys {
                repo.db.raw_delete(repo.tables.hash_idx, key).unwrap();
            }
            repo.db.commit().unwrap();
            assert!(repo.tree_stats(handle).unwrap().is_none());
            // Checkpoint the raw database directly: `Repository::flush`
            // would backfill (that path has its own test below).
            repo.db.flush().unwrap();
        }
        // Reopen: the stripped file opens cleanly, reads degrade to None …
        let mut repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        assert!(repo.tree_stats(handle).unwrap().is_none());
        assert!(matches!(
            repo.trees_equal(handle, handle),
            Err(CrimsonError::MissingContentAddress(_))
        ));
        // … and an explicit backfill restores the identical address.
        assert_eq!(repo.backfill_clade_hashes().unwrap(), 1);
        let restored = repo.tree_stats(handle).unwrap().unwrap();
        assert_eq!(restored, expected);
        assert!(repo.trees_equal(handle, handle).unwrap());
        let root_hash = clade_hash::root_hash(&tree).unwrap();
        assert_eq!(repo.trees_with_root_hash(root_hash).unwrap(), vec![handle]);
        // Backfill is idempotent.
        assert_eq!(repo.backfill_clade_hashes().unwrap(), 0);
    }

    #[test]
    fn checkpoint_backfills_automatically() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("auto.crimson");
        let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
        let handle = repo.load_tree("fig", &figure1_tree()).unwrap();
        // Strip the stats row only (enough to make the tree "pre-hash").
        repo.db.begin().unwrap();
        let rows = repo.db.scan(repo.tables.tree_stats).unwrap();
        for (rid, _) in rows {
            repo.db.delete(repo.tables.tree_stats, rid).unwrap();
        }
        let mut keys: Vec<Vec<u8>> = Vec::new();
        repo.db
            .raw_scan(repo.tables.hash_by_pre, None, None, &mut |key, _| {
                keys.push(key.to_vec());
                Ok(true)
            })
            .unwrap();
        for key in &keys {
            repo.db.raw_delete(repo.tables.hash_by_pre, key).unwrap();
        }
        let mut keys: Vec<Vec<u8>> = Vec::new();
        repo.db
            .raw_scan(repo.tables.hash_idx, None, None, &mut |key, _| {
                keys.push(key.to_vec());
                Ok(true)
            })
            .unwrap();
        for key in &keys {
            repo.db.raw_delete(repo.tables.hash_idx, key).unwrap();
        }
        repo.db.commit().unwrap();
        assert!(repo.tree_stats(handle).unwrap().is_none());
        // The next checkpoint upgrades the file in place.
        repo.flush().unwrap();
        assert!(repo.tree_stats(handle).unwrap().is_some());
    }
}
