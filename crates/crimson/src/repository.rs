//! The Repository Manager: relational storage of trees, frames and species.
//!
//! Crimson "stores trees in relational form, and uses indexes based on Dewey
//! labeling to speed up queries" (§2.1), separating tree structure from
//! species data. The repository owns four tables on the embedded storage
//! engine:
//!
//! | table     | contents                                                    |
//! |-----------|-------------------------------------------------------------|
//! | `trees`   | one row per loaded tree: name, root node, counts, frame depth `f` |
//! | `nodes`   | one row per node: parent, name, branch length, cumulative time, pre-order rank, frame id, local Dewey label |
//! | `frames`  | one row per frame (subtree of depth ≤ f): parent frame, **source node**, frame rank |
//! | `species` | one row per taxon with sequence data, linked to its leaf node |
//!
//! Secondary indexes give the access paths the paper calls out: species name
//! → node, node id → row, cumulative evolutionary time → nodes (a B+tree
//! range scan), parent → children.
//!
//! ## The read surface
//!
//! Every pure read — catalog lookups, node/frame fetches, LCA and the
//! structure queries in [`crate::query`] — is implemented once on
//! [`ReadCtx`], generic over [`storage::DbRead`]. The writer's `Repository`
//! methods delegate to it over the live [`Database`]; concurrent
//! [`crate::reader::RepositoryReader`]s delegate to it over a snapshot
//! [`storage::DbReader`]. All of these take `&self`; only loading,
//! checkpointing and history recording take `&mut self`.

use crate::cache::ShardedCache;
use crate::error::{CrimsonError, CrimsonResult};
use labeling::clade_hash::{self, CladeHash};
use labeling::hierarchical::HierarchicalDewey;
use labeling::interval::{interval_key_prefix, interval_range_end, IntervalEntry, IntervalLabels};
use phylo::traverse::Traverse;
use phylo::Tree;
use simulation::gold::GoldStandard;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use storage::db::{Database, DbRead, RawIndexId, TableId};
use storage::schema::{ColumnDef, Schema};
use storage::value::{Value, ValueType};
use storage::wal::Lsn;
use storage::{
    CheckpointPolicy, CheckpointerGuard, CrashPoint, RecoveryReport, RetryPolicy, ScrubOptions,
    ScrubStats, SharedFaultSchedule,
};

/// Name of the raw index holding covering interval entries keyed by
/// `(tree_id, pre)`.
const IVL_BY_PRE: &str = "ivl_by_pre";
/// Name of the raw index mapping a stored node id to its packed
/// `(pre, end)` interval.
const IVL_BY_NODE: &str = "ivl_by_node";
/// Name of the raw index holding per-node canonical clade hashes, keyed
/// `(tree_id, pre, hash)` → packed `(pre, end)` span (see
/// [`labeling::clade_hash`]).
const HASH_BY_PRE: &str = "clade_hash_by_pre";
/// Name of the global content-address index, keyed `(hash, tree_id, pre)` →
/// packed `(pre, end)` span. A 16-byte prefix scan answers "which stored
/// trees/subtrees equal this one" without touching a node row.
const HASH_IDX: &str = "clade_hash_idx";
/// Name of the raw index holding structural-sharing reference rows of cold
/// trees (see [`labeling::clade_hash::CladeRef`]).
const CLADE_REFS: &str = "clade_refs";

/// Minimum node-span for a subtree to be published in the global
/// content-address index. Tree roots are always published; smaller internal
/// subtrees are only addressable through their tree's `hash_by_pre` range.
/// Keeps the per-load point-insert count (the global index interleaves
/// across trees, so it cannot ride the bulk appender) a small fraction of
/// the node count on realistic tree shapes.
pub(crate) const HASH_IDX_MIN_SPAN: u32 = 32;

/// `tree_stats.flags` bit: every leaf is named and the names are distinct —
/// the precondition under which hash equality implies metric equality.
pub(crate) const STATS_FLAG_DISTINCT_LEAVES: i64 = 1;
/// `tree_stats.flags` bit: the tree is stored cold (structurally shared);
/// bridged subtree spans live in other trees, reachable via `clade_refs`.
pub(crate) const STATS_FLAG_COLD: i64 = 2;

/// Identifier of a node stored in the repository (stable across sessions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StoredNodeId(pub u64);

impl std::fmt::Display for StoredNodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sn{}", self.0)
    }
}

/// Handle of a tree stored in the repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeHandle(pub u64);

/// Identifier of a stored frame (bounded-depth subtree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoredFrameId(pub u64);

/// When a repository transaction becomes durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Every commit blocks until its group fsync completes (the default).
    /// Concurrent committers share one fsync via the storage engine's
    /// commit queue, so this is already batched, not one-fsync-per-commit.
    #[default]
    Sync,
    /// Commits return as soon as the commit record is *logged*: atomic on
    /// crash but not yet durable. The next group fsync, synchronous commit
    /// or checkpoint covers them; call [`Repository::wait_durable`] (or
    /// [`Repository::sync`]) at a batch boundary to force the fsync.
    Async,
}

/// Options controlling repository creation.
#[derive(Debug, Clone)]
pub struct RepositoryOptions {
    /// Frame depth `f` used for hierarchical labels (≥ 2).
    pub frame_depth: usize,
    /// Buffer-pool capacity in pages.
    pub buffer_pool_pages: usize,
    /// When commits become durable (see [`Durability`]).
    pub durability: Durability,
    /// Start a background checkpoint thread with this policy. `None` (the
    /// default) keeps the historical behaviour: checkpoints happen only on
    /// explicit [`Repository::flush`] and on close.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for RepositoryOptions {
    fn default() -> Self {
        RepositoryOptions {
            frame_depth: 16,
            buffer_pool_pages: 4096,
            durability: Durability::Sync,
            checkpoint: None,
        }
    }
}

/// A decoded node row.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// The node's stable id.
    pub id: StoredNodeId,
    /// Owning tree.
    pub tree: TreeHandle,
    /// Parent node, `None` for the root.
    pub parent: Option<StoredNodeId>,
    /// Taxon or clade name, if any.
    pub name: Option<String>,
    /// Branch length to the parent.
    pub branch_length: Option<f64>,
    /// Cumulative branch length from the root ("evolutionary time").
    pub root_distance: f64,
    /// Depth in edges from the root.
    pub depth: u64,
    /// Pre-order rank within the tree (0 = root).
    pub preorder: u64,
    /// Frame (bounded-depth subtree) this node belongs to.
    pub frame: StoredFrameId,
    /// Local Dewey label within the frame (1-based child ordinals).
    pub local_label: Vec<u32>,
    /// `true` when the node has no children.
    pub is_leaf: bool,
    /// Maximum summed branch length from this node down to any descendant
    /// leaf (0 for leaves) — the "age" of the clade, used by time-respecting
    /// sampling.
    pub subtree_height: f64,
}

/// A decoded frame row.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameRecord {
    /// The frame id.
    pub id: StoredFrameId,
    /// Owning tree.
    pub tree: TreeHandle,
    /// The frame's root node.
    pub root_node: StoredNodeId,
    /// Frame containing the parent of `root_node`, if any.
    pub parent_frame: Option<StoredFrameId>,
    /// The paper's *source node*: parent of `root_node` in the stored tree.
    pub source_node: Option<StoredNodeId>,
    /// Number of ancestor frames (0 for the frame containing the tree root);
    /// used for the two-pointer frame walk during cross-frame LCA.
    pub rank: u64,
}

/// Summary row for a stored tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeRecord {
    /// The tree handle.
    pub handle: TreeHandle,
    /// The tree's name.
    pub name: String,
    /// Root node id.
    pub root: StoredNodeId,
    /// Total number of nodes.
    pub node_count: u64,
    /// Number of leaves.
    pub leaf_count: u64,
    /// Frame depth `f` the labels were built with.
    pub frame_depth: u64,
}

/// Content-address summary row of a stored tree: its canonical root hash
/// plus the distinct rooted-clade and unrooted-split counts the comparison
/// metrics are defined over. Written at load time (or by
/// [`Repository::backfill_clade_hashes`] for pre-hash files); the
/// ingredients of the O(1) equal-tree compare short-circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStatsRecord {
    /// The tree this row summarizes.
    pub handle: TreeHandle,
    /// Canonical hash of the root clade — the whole-tree content address.
    pub root_hash: CladeHash,
    /// Number of distinct non-trivial rooted clades (leaf sets of size
    /// `2..=n-1`), i.e. `|clades(T)|` of the comparison module.
    pub rooted_clades: u64,
    /// Number of distinct non-trivial unrooted splits (`|splits(T)|`).
    pub unrooted_splits: u64,
    /// Every leaf is named and the names are distinct.
    pub distinct_leaves: bool,
    /// Stored cold: duplicate subtrees are bridged by reference rows
    /// instead of materialized.
    pub cold: bool,
}

/// The table and raw-index handles a repository file carries. Stable for
/// the lifetime of the file (tables are created once at
/// [`Repository::create`]), so snapshot readers copy it freely.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Tables {
    pub trees: TableId,
    pub nodes: TableId,
    pub frames: TableId,
    pub species: TableId,
    pub history: TableId,
    /// Experiment catalog: one row per persisted evaluation sweep.
    pub experiments: TableId,
    /// One row per experiment grid cell (method × sampling × replicate).
    pub experiment_results: TableId,
    /// Per-clade agreement rows of each result's stored reconstruction.
    pub experiment_clades: TableId,
    /// One content-address summary row per hashed tree.
    pub tree_stats: TableId,
    /// Covering interval index keyed by `(tree_id, pre)`; see
    /// [`labeling::interval`] for the entry layout.
    pub ivl_by_pre: RawIndexId,
    /// Stored node id → packed `(pre << 32) | end` interval.
    pub ivl_by_node: RawIndexId,
    /// Per-node clade hashes keyed `(tree_id, pre, hash)`.
    pub hash_by_pre: RawIndexId,
    /// Global content-address index keyed `(hash, tree_id, pre)`.
    pub hash_idx: RawIndexId,
    /// Structural-sharing reference rows of cold trees.
    pub clade_refs: RawIndexId,
}

/// The Crimson repository: Tree Repository + Species Repository + Query
/// Repository rolled into one database file. This value is the single
/// writer; spawn [`crate::reader::RepositoryReader`]s (via
/// [`Repository::reader`]) for concurrent snapshot reads.
pub struct Repository {
    /// Background checkpointer, when [`RepositoryOptions::checkpoint`] is
    /// set. Declared before `db` so the guard's drop stops and joins the
    /// thread before the database tears down.
    checkpointer: Option<CheckpointerGuard>,
    pub(crate) db: Database,
    pub(crate) options: RepositoryOptions,
    pub(crate) tables: Tables,
    pub(crate) next_history_id: u64,
    /// Highest commit LSN returned by an asynchronous commit; the target
    /// [`Repository::sync`] waits on. Always 0 under [`Durability::Sync`].
    last_commit: Lsn,
    /// Decoded node rows; node rows are immutable once loaded, so entries
    /// never need invalidation.
    record_cache: ShardedCache<StoredNodeId, Arc<NodeRecord>>,
    /// Interval entries keyed by `(tree_id << 32) | pre` — the LCA walk's
    /// working set.
    entry_cache: ShardedCache<u64, IntervalEntry>,
    /// Crash-recovery outcome captured at [`Repository::open`] (`None` for a
    /// freshly created repository).
    recovery: Option<RecoveryReport>,
}

/// Row counts gathered by [`Repository::integrity_check`]. Every row was
/// verified to belong to a tree listed in the `trees` table, so a report
/// implies there are no orphan rows from interrupted loads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Trees in the catalog.
    pub trees: u64,
    /// Node rows across all trees.
    pub nodes: u64,
    /// Frame rows across all trees.
    pub frames: u64,
    /// Species rows across all trees.
    pub species: u64,
    /// Entries in each interval index (they always match `nodes`).
    pub interval_entries: u64,
    /// Query-history rows (all parsed successfully).
    pub history_entries: u64,
    /// Experiment rows (each referencing an existing gold tree, with a
    /// parseable spec).
    pub experiments: u64,
    /// Experiment result rows (each referencing an existing experiment and
    /// stored reconstruction).
    pub experiment_results: u64,
    /// Per-clade agreement rows (each referencing an existing result and a
    /// stored node of its reconstruction).
    pub experiment_clades: u64,
    /// Trees carrying a content-address (`tree_stats`) row. Trees loaded by
    /// a pre-hash build may lack one until backfilled.
    pub hashed_trees: u64,
    /// Entries in the per-tree clade-hash index (one per materialized node
    /// plus one per bridge of every hashed tree).
    pub hash_entries: u64,
    /// Entries in the global content-address index (verified to reference
    /// existing hashed spans of fully materialized trees).
    pub global_hash_entries: u64,
    /// Structural-sharing reference rows (each verified to bridge to an
    /// existing, hash-identical span of a fully materialized tree).
    pub clade_refs: u64,
}

/// Salvage survey produced by [`Repository::open_degraded`]: which pages
/// are quarantined and which trees/experiments the damage reaches. Trees
/// and experiments not listed as unreadable answer queries normally.
#[derive(Debug, Clone, Default)]
pub struct DegradedReport {
    /// Page ids that failed their checksum and could not be repaired.
    pub quarantined_pages: Vec<u64>,
    /// Trees whose structures probed clean.
    pub readable_trees: Vec<String>,
    /// Trees whose probe hit damage: `(name, error)`.
    pub unreadable_trees: Vec<(String, String)>,
    /// Experiments whose catalog and result rows probed clean.
    pub readable_experiments: Vec<String>,
    /// Experiments whose probe hit damage: `(name, error)`.
    pub unreadable_experiments: Vec<(String, String)>,
}

impl DegradedReport {
    /// `true` when no page is quarantined and every tree and experiment
    /// probed clean.
    pub fn is_clean(&self) -> bool {
        self.quarantined_pages.is_empty()
            && self.unreadable_trees.is_empty()
            && self.unreadable_experiments.is_empty()
    }
}

/// Outcome of [`Repository::scrub`]: page-level checksum verification plus
/// (when no page is quarantined) the logical cross-table invariant check.
#[derive(Debug, Clone)]
pub struct ScrubReport {
    /// Per-page verification/repair counters.
    pub pages: ScrubStats,
    /// The logical integrity report, cross-checking the scrub: `None` when
    /// quarantined pages made the row-level walk impossible.
    pub integrity: Option<IntegrityReport>,
}

/// Fill factor for bulk-built heap and index pages: nearly full (the
/// workload is load-once/query-many) with headroom so later point inserts
/// into a loaded tree's key range don't split immediately.
pub(crate) const BULK_FILL: f64 = 0.9;

/// Generation size of the node-record cache (≤ 2 generations resident).
pub(crate) const RECORD_CACHE_GEN: usize = 4096;
/// Generation size of the interval-entry cache.
pub(crate) const ENTRY_CACHE_GEN: usize = 8192;

impl std::fmt::Debug for Repository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Repository")
            .field("options", &self.options)
            .finish()
    }
}

pub(crate) const TREE_SHIFT: u64 = 32;

// ---------------------------------------------------------------------------
// The shared read surface
// ---------------------------------------------------------------------------

/// The repository's read engine: every pure read is implemented here once,
/// generic over [`DbRead`]. `Repository` instantiates it over the live
/// [`Database`] (the writer sees its own uncommitted state);
/// [`crate::reader::RepositoryReader`] instantiates it over a
/// [`storage::DbReader`] snapshot (concurrent readers see the last
/// committed state).
pub(crate) struct ReadCtx<'a, D> {
    pub(crate) db: &'a D,
    pub(crate) tables: Tables,
    pub(crate) records: &'a ShardedCache<StoredNodeId, Arc<NodeRecord>>,
    pub(crate) entries: &'a ShardedCache<u64, IntervalEntry>,
}

impl<'a, D> Clone for ReadCtx<'a, D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, D> Copy for ReadCtx<'a, D> {}

impl<'a, D: DbRead> ReadCtx<'a, D> {
    // ------------------------------------------------------------------
    // Catalog access
    // ------------------------------------------------------------------

    pub fn find_tree(&self, name: &str) -> CrimsonResult<Option<TreeRecord>> {
        let rows = self
            .db
            .lookup_rows(self.tables.trees, "name", &Value::text(name))?;
        Ok(rows
            .into_iter()
            .next()
            .map(|(_, row)| decode_tree_row(&row)))
    }

    pub fn tree_by_name(&self, name: &str) -> CrimsonResult<TreeRecord> {
        self.find_tree(name)?
            .ok_or_else(|| CrimsonError::UnknownTree(name.to_string()))
    }

    pub fn tree_record(&self, handle: TreeHandle) -> CrimsonResult<TreeRecord> {
        let rows =
            self.db
                .lookup_rows(self.tables.trees, "tree_id", &Value::Int(handle.0 as i64))?;
        rows.into_iter()
            .next()
            .map(|(_, row)| decode_tree_row(&row))
            .ok_or(CrimsonError::UnknownTreeId(handle.0))
    }

    pub fn list_trees(&self) -> CrimsonResult<Vec<TreeRecord>> {
        let rows = self.db.scan(self.tables.trees)?;
        Ok(rows.iter().map(|(_, row)| decode_tree_row(row)).collect())
    }

    // ------------------------------------------------------------------
    // Node / frame access
    // ------------------------------------------------------------------

    pub fn node_record(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        Ok((*self.node_record_arc(id)?).clone())
    }

    pub fn node_record_arc(&self, id: StoredNodeId) -> CrimsonResult<Arc<NodeRecord>> {
        if let Some(rec) = self.records.get(&id) {
            return Ok(rec);
        }
        let rec = Arc::new(self.node_record_uncached(id)?);
        self.records.insert(id, Arc::clone(&rec));
        Ok(rec)
    }

    /// Fetch a node row through its physical record id (the locator the
    /// interval index stores), skipping the node-id index descent. One heap
    /// page read on a cache miss.
    pub fn node_record_by_locator(
        &self,
        id: StoredNodeId,
        rid: storage::RecordId,
    ) -> CrimsonResult<Arc<NodeRecord>> {
        if let Some(rec) = self.records.get(&id) {
            return Ok(rec);
        }
        let row = self.db.get(self.tables.nodes, rid)?;
        let rec = Arc::new(decode_node_row(&row));
        if rec.id != id {
            return Err(CrimsonError::CorruptRepository(format!(
                "interval index locator {rid} resolves to node {} instead of {id}",
                rec.id
            )));
        }
        self.records.insert(id, Arc::clone(&rec));
        Ok(rec)
    }

    pub fn node_record_uncached(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        let rows = self
            .db
            .lookup_rows(self.tables.nodes, "node_id", &Value::Int(id.0 as i64))?;
        rows.into_iter()
            .next()
            .map(|(_, row)| decode_node_row(&row))
            .ok_or(CrimsonError::UnknownNode(id.0))
    }

    pub fn frame_record(&self, id: StoredFrameId) -> CrimsonResult<FrameRecord> {
        let rows = self
            .db
            .lookup_rows(self.tables.frames, "frame_id", &Value::Int(id.0 as i64))?;
        rows.into_iter()
            .next()
            .map(|(_, row)| decode_frame_row(&row))
            .ok_or(CrimsonError::UnknownNode(id.0))
    }

    pub fn children(&self, id: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        let rows = self
            .db
            .lookup_rows(self.tables.nodes, "parent_id", &Value::Int(id.0 as i64))?;
        Ok(rows
            .iter()
            .map(|(_, row)| StoredNodeId(row.values[0].as_int().unwrap_or(0) as u64))
            .collect())
    }

    pub fn species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<Option<StoredNodeId>> {
        let rows = self
            .db
            .lookup_rows(self.tables.nodes, "name", &Value::text(name))?;
        for (_, row) in rows {
            let rec = decode_node_row(&row);
            if rec.tree == handle && rec.is_leaf {
                return Ok(Some(rec.id));
            }
        }
        Ok(None)
    }

    pub fn require_species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<StoredNodeId> {
        self.species_node(handle, name)?
            .ok_or_else(|| CrimsonError::UnknownSpecies(name.to_string()))
    }

    pub fn leaves(&self, handle: TreeHandle) -> CrimsonResult<Vec<StoredNodeId>> {
        let rows = self.db.lookup_rows(
            self.tables.nodes,
            "leaf_of_tree",
            &Value::Int(handle.0 as i64),
        )?;
        Ok(rows
            .iter()
            .map(|(_, row)| StoredNodeId(row.values[0].as_int().unwrap_or(0) as u64))
            .collect())
    }

    pub fn sequences_for(
        &self,
        handle: TreeHandle,
        names: &[String],
    ) -> CrimsonResult<HashMap<String, String>> {
        let mut out = HashMap::with_capacity(names.len());
        for name in names {
            let rows = self
                .db
                .lookup_rows(self.tables.species, "name", &Value::text(name))?;
            let mut found = false;
            for (_, row) in rows {
                let tree_id = row.values[1].as_int().unwrap_or(-1) as u64;
                if tree_id == handle.0 {
                    let seq = row.values[3].as_text().unwrap_or("").to_string();
                    out.insert(name.clone(), seq);
                    found = true;
                    break;
                }
            }
            if !found {
                return Err(CrimsonError::MissingSequences(name.clone()));
            }
        }
        Ok(out)
    }

    pub fn species_count(&self, handle: TreeHandle) -> CrimsonResult<usize> {
        let rows =
            self.db
                .lookup_rows(self.tables.species, "tree_id", &Value::Int(handle.0 as i64))?;
        Ok(rows.len())
    }

    // ------------------------------------------------------------------
    // Integrity
    // ------------------------------------------------------------------

    pub fn integrity_check(&self) -> CrimsonResult<IntegrityReport> {
        let trees: HashMap<u64, TreeRecord> = self
            .list_trees()?
            .into_iter()
            .map(|t| (t.handle.0, t))
            .collect();
        let mut report = IntegrityReport {
            trees: trees.len() as u64,
            ..Default::default()
        };

        let mut node_counts: HashMap<u64, u64> = HashMap::new();
        let mut leaf_counts: HashMap<u64, u64> = HashMap::new();
        for (rid, row) in self.db.scan(self.tables.nodes)? {
            let rec = decode_node_row(&row);
            let tree_id = rec.tree.0;
            if !trees.contains_key(&tree_id) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "orphan node row {rid} references missing tree {tree_id}"
                )));
            }
            *node_counts.entry(tree_id).or_default() += 1;
            if rec.is_leaf {
                *leaf_counts.entry(tree_id).or_default() += 1;
            }
            // Every node must be covered by both interval indexes.
            let (pre, end) = self.interval_of(rec.id)?;
            if (pre as u64) != rec.preorder || end < pre {
                return Err(CrimsonError::CorruptRepository(format!(
                    "interval of node {} ({pre}, {end}) contradicts its pre-order rank {}",
                    rec.id, rec.preorder
                )));
            }
            report.nodes += 1;
        }
        // Content-address catalog, loaded before the per-tree row-count
        // check: cold (structurally shared) trees materialize fewer node
        // rows than their logical node count, and only their stats rows and
        // bridge references say by how many.
        let mut stats: HashMap<u64, TreeStatsRecord> = HashMap::new();
        for (rid, row) in self.db.scan(self.tables.tree_stats)? {
            let Some(rec) = decode_tree_stats_row(&row) else {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree_stats row {rid} is malformed"
                )));
            };
            if !trees.contains_key(&rec.handle.0) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "orphan tree_stats row {rid} references missing tree {}",
                    rec.handle.0
                )));
            }
            if stats.insert(rec.handle.0, rec).is_some() {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree {} carries duplicate tree_stats rows",
                    rec.handle.0
                )));
            }
        }
        report.hashed_trees = stats.len() as u64;

        let mut refs_by_tree: HashMap<u64, Vec<clade_hash::CladeRef>> = HashMap::new();
        {
            let mut malformed = false;
            let mut all_refs: Vec<(u64, clade_hash::CladeRef)> = Vec::new();
            self.db
                .raw_scan(self.tables.clade_refs, None, None, &mut |key, value| {
                    match clade_hash::CladeRef::decode(key, value) {
                        Some((tree, r)) => {
                            all_refs.push((tree, r));
                            Ok(true)
                        }
                        None => {
                            malformed = true;
                            Ok(false)
                        }
                    }
                })?;
            if malformed {
                return Err(CrimsonError::CorruptRepository(
                    "malformed clade-ref key".to_string(),
                ));
            }
            for (tree, r) in all_refs {
                refs_by_tree.entry(tree).or_default().push(r);
            }
        }
        // Every bridge must sit in a cold, hashed tree and point at a
        // hash-identical span of a fully materialized (hot) hashed tree —
        // so reference chains cannot exist and every read bottoms out after
        // one hop.
        for (tree_id, refs) in &refs_by_tree {
            let Some(st) = stats.get(tree_id) else {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree {tree_id} carries bridges but no content address"
                )));
            };
            if !st.cold {
                return Err(CrimsonError::CorruptRepository(format!(
                    "fully materialized tree {tree_id} carries bridges"
                )));
            }
            for r in refs {
                report.clade_refs += 1;
                let Some(src) = stats.get(&r.src_tree) else {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "bridge in tree {tree_id} references unhashed tree {}",
                        r.src_tree
                    )));
                };
                if src.cold {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "bridge in tree {tree_id} chains into cold tree {}",
                        r.src_tree
                    )));
                }
                if r.end - r.pre != r.src_end - r.src_pre {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "bridge at rank {} of tree {tree_id} spans a different width than its source",
                        r.pre
                    )));
                }
                let here = self.subtree_hash_at(TreeHandle(*tree_id), r.pre)?;
                let there = self.subtree_hash_at(TreeHandle(r.src_tree), r.src_pre)?;
                match (here, there) {
                    (Some((ha, ea)), Some((hb, eb)))
                        if ha == hb && ea == r.end && eb == r.src_end => {}
                    _ => {
                        return Err(CrimsonError::CorruptRepository(format!(
                            "bridge at rank {} of tree {tree_id} contradicts its source span",
                            r.pre
                        )));
                    }
                }
            }
        }

        for (tree_id, tree) in &trees {
            let nodes = node_counts.get(tree_id).copied().unwrap_or(0);
            let leaves = leaf_counts.get(tree_id).copied().unwrap_or(0);
            let bridged: u64 = refs_by_tree
                .get(tree_id)
                .map(|rs| rs.iter().map(|r| (r.end - r.pre + 1) as u64).sum())
                .unwrap_or(0);
            if stats.get(tree_id).is_some_and(|s| s.cold) {
                // The catalog keeps logical counts; bridged nodes (leaves
                // included) live only in the canonical source tree.
                if nodes + bridged != tree.node_count || leaves > tree.leaf_count {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "cold tree `{}` records {}/{} nodes/leaves but {nodes}(+{bridged} bridged)/{leaves} rows exist",
                        tree.name, tree.node_count, tree.leaf_count
                    )));
                }
            } else if nodes != tree.node_count || leaves != tree.leaf_count {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree `{}` records {}/{} nodes/leaves but {nodes}/{leaves} rows exist",
                    tree.name, tree.node_count, tree.leaf_count
                )));
            }
        }

        for (rid, row) in self.db.scan(self.tables.frames)? {
            let rec = decode_frame_row(&row);
            if !trees.contains_key(&rec.tree.0) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "orphan frame row {rid} references missing tree {}",
                    rec.tree.0
                )));
            }
            report.frames += 1;
        }

        for (rid, row) in self.db.scan(self.tables.species)? {
            let tree_id = row.values[1].as_int().unwrap_or(-1) as u64;
            if !trees.contains_key(&tree_id) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "orphan species row {rid} references missing tree {tree_id}"
                )));
            }
            let node = StoredNodeId(row.values[2].as_int().unwrap_or(0) as u64);
            let rec = self.node_record(node)?;
            if rec.tree.0 != tree_id || !rec.is_leaf {
                return Err(CrimsonError::CorruptRepository(format!(
                    "species row {rid} references node {node}, which is not a leaf of tree {tree_id}"
                )));
            }
            report.species += 1;
        }

        let by_pre = self.db.raw_len(self.tables.ivl_by_pre)? as u64;
        let by_node = self.db.raw_len(self.tables.ivl_by_node)? as u64;
        if by_pre != report.nodes || by_node != report.nodes {
            return Err(CrimsonError::CorruptRepository(format!(
                "interval indexes hold {by_pre}/{by_node} entries for {} node rows",
                report.nodes
            )));
        }
        report.interval_entries = by_pre;

        // Per-tree clade hashes: a hot hashed tree carries one entry per
        // node, a cold tree one per materialized node plus one per bridge,
        // and an unhashed (pre-hash) tree none. The stats root hash must
        // match the entry stored at rank 0.
        let mut hash_counts: HashMap<u64, u64> = HashMap::new();
        let mut qualifying: HashMap<u64, u64> = HashMap::new();
        {
            let mut malformed = false;
            self.db
                .raw_scan(self.tables.hash_by_pre, None, None, &mut |key, value| {
                    let Some((tree, pre, _)) = clade_hash::decode_hash_by_pre_key(key) else {
                        malformed = true;
                        return Ok(false);
                    };
                    let (lo, hi) = clade_hash::unpack_span(value);
                    *hash_counts.entry(tree).or_default() += 1;
                    if pre == lo && (pre == 0 || hi - lo + 1 >= HASH_IDX_MIN_SPAN) {
                        *qualifying.entry(tree).or_default() += 1;
                    }
                    Ok(true)
                })?;
            if malformed {
                return Err(CrimsonError::CorruptRepository(
                    "malformed clade-hash entry".to_string(),
                ));
            }
        }
        for tree_id in hash_counts.keys() {
            if !trees.contains_key(tree_id) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "orphan clade-hash entries reference missing tree {tree_id}"
                )));
            }
        }
        for (tree_id, tree) in &trees {
            let have = hash_counts.get(tree_id).copied().unwrap_or(0);
            let expected = match stats.get(tree_id) {
                None => 0,
                Some(st) if st.cold => {
                    let refs = refs_by_tree.get(tree_id);
                    let bridged: u64 = refs
                        .map(|rs| rs.iter().map(|r| (r.end - r.pre + 1) as u64).sum())
                        .unwrap_or(0);
                    let n_refs = refs.map_or(0, |rs| rs.len() as u64);
                    tree.node_count - bridged + n_refs
                }
                Some(_) => tree.node_count,
            };
            if have != expected {
                return Err(CrimsonError::CorruptRepository(format!(
                    "tree `{}` holds {have} clade-hash entries, expected {expected}",
                    tree.name
                )));
            }
            report.hash_entries += have;
            if let Some(st) = stats.get(tree_id) {
                match self.subtree_hash_at(st.handle, 0)? {
                    Some((h, end)) if h == st.root_hash && end as u64 == tree.node_count - 1 => {}
                    _ => {
                        return Err(CrimsonError::CorruptRepository(format!(
                            "stats root hash of tree `{}` contradicts its stored entry",
                            tree.name
                        )));
                    }
                }
            }
        }

        // Global hash index: every entry must decode, belong to a hot
        // hashed tree, agree with that tree's per-tree entry, and meet the
        // publication threshold; conversely every qualifying span of a hot
        // hashed tree must be published.
        {
            let mut malformed = false;
            let mut entries: Vec<(CladeHash, u64, u32)> = Vec::new();
            self.db
                .raw_scan(self.tables.hash_idx, None, None, &mut |key, _| {
                    match clade_hash::decode_hash_idx_key(key) {
                        Some((hash, tree, pre)) => {
                            entries.push((hash, tree, pre));
                            Ok(true)
                        }
                        None => {
                            malformed = true;
                            Ok(false)
                        }
                    }
                })?;
            if malformed {
                return Err(CrimsonError::CorruptRepository(
                    "malformed global hash-index entry".to_string(),
                ));
            }
            for (hash, tree, pre) in entries {
                let Some(st) = stats.get(&tree) else {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "global hash index references unhashed tree {tree}"
                    )));
                };
                if st.cold {
                    return Err(CrimsonError::CorruptRepository(format!(
                        "global hash index references cold tree {tree}"
                    )));
                }
                match self.subtree_hash_at(TreeHandle(tree), pre)? {
                    Some((h, end)) if h == hash => {
                        if pre != 0 && end - pre + 1 < HASH_IDX_MIN_SPAN {
                            return Err(CrimsonError::CorruptRepository(format!(
                                "global hash index publishes sub-threshold span at rank {pre} of tree {tree}"
                            )));
                        }
                    }
                    _ => {
                        return Err(CrimsonError::CorruptRepository(format!(
                            "global hash index contradicts per-tree entry at rank {pre} of tree {tree}"
                        )));
                    }
                }
                report.global_hash_entries += 1;
            }
            let expected_global: u64 = trees
                .keys()
                .filter(|id| stats.get(id).is_some_and(|s| !s.cold))
                .map(|id| qualifying.get(id).copied().unwrap_or(0))
                .sum();
            if report.global_hash_entries != expected_global {
                return Err(CrimsonError::CorruptRepository(format!(
                    "global hash index holds {} entries, expected {expected_global}",
                    report.global_hash_entries
                )));
            }
        }

        // Experiment catalog: every experiment references an existing gold
        // tree with a parseable spec; every result an existing experiment
        // and stored reconstruction; every clade row an existing result and
        // a stored node of that result's reconstruction. An interrupted
        // experiment commit would surface here as an orphan.
        let mut experiment_ids = std::collections::HashSet::new();
        for (rid, row) in self.db.scan(self.tables.experiments)? {
            let exp_id = row.values[0].as_int().unwrap_or(-1) as u64;
            let gold = row.values[2].as_int().unwrap_or(-1) as u64;
            if !trees.contains_key(&gold) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "experiment row {rid} references missing gold tree {gold}"
                )));
            }
            serde_json::from_str::<serde_json::Value>(row.values[3].as_text().unwrap_or(""))
                .map_err(|e| {
                    CrimsonError::CorruptRepository(format!(
                        "experiment row {rid} carries an unparseable spec: {e}"
                    ))
                })?;
            experiment_ids.insert(exp_id);
            report.experiments += 1;
        }
        let mut result_recon: HashMap<u64, u64> = HashMap::new();
        for (rid, row) in self.db.scan(self.tables.experiment_results)? {
            let result_id = row.values[0].as_int().unwrap_or(-1) as u64;
            let exp_id = row.values[1].as_int().unwrap_or(-1) as u64;
            let recon = row.values[8].as_int().unwrap_or(-1) as u64;
            if !experiment_ids.contains(&exp_id) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "experiment result row {rid} references missing experiment {exp_id}"
                )));
            }
            if !trees.contains_key(&recon) {
                return Err(CrimsonError::CorruptRepository(format!(
                    "experiment result row {rid} references missing reconstruction tree {recon}"
                )));
            }
            result_recon.insert(result_id, recon);
            report.experiment_results += 1;
        }
        for (rid, row) in self.db.scan(self.tables.experiment_clades)? {
            let result_id = row.values[0].as_int().unwrap_or(-1) as u64;
            let node = StoredNodeId(row.values[1].as_int().unwrap_or(0) as u64);
            let Some(&recon) = result_recon.get(&result_id) else {
                return Err(CrimsonError::CorruptRepository(format!(
                    "clade row {rid} references missing experiment result {result_id}"
                )));
            };
            if node.0 >> TREE_SHIFT != recon {
                return Err(CrimsonError::CorruptRepository(format!(
                    "clade row {rid} node {node} does not belong to reconstruction tree {recon}"
                )));
            }
            // The node must exist in the interval index of its tree.
            self.interval_of(node).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "clade row {rid} references unknown stored node {node}"
                ))
            })?;
            report.experiment_clades += 1;
        }

        // The history must parse end to end (a torn entry would fail here).
        report.history_entries = self.query_history()?.len() as u64;
        Ok(report)
    }

    // ------------------------------------------------------------------
    // Structure primitives over the persistent interval index
    // ------------------------------------------------------------------

    pub fn interval_of(&self, id: StoredNodeId) -> CrimsonResult<(u32, u32)> {
        let packed = self
            .db
            .raw_get(self.tables.ivl_by_node, &id.0.to_be_bytes())?
            .ok_or(CrimsonError::UnknownNode(id.0))?;
        Ok(((packed >> 32) as u32, packed as u32))
    }

    /// The full interval entry of the node ranked `pre` in `tree` — one
    /// allocation-free covering-key probe in the `ivl_by_pre` index (the
    /// entry decodes straight from the in-page key bytes), cached across
    /// queries.
    pub fn interval_entry(&self, tree: u64, pre: u32) -> CrimsonResult<IntervalEntry> {
        let cache_key = (tree << 32) | pre as u64;
        if let Some(entry) = self.entries.get(&cache_key) {
            return Ok(entry);
        }
        let low = interval_key_prefix(tree, pre);
        let high = interval_range_end(tree, pre);
        let entry = self
            .db
            .raw_first_in_range(self.tables.ivl_by_pre, &low, &high, |key, _| {
                IntervalEntry::decode_key(key).map(|(_, entry)| entry)
            })?
            .ok_or_else(|| {
                CrimsonError::CorruptRepository(format!(
                    "interval index has no entry for tree {tree}, pre {pre}"
                ))
            })?
            .ok_or_else(|| {
                CrimsonError::CorruptRepository("malformed interval-index key".to_string())
            })?;
        self.entries.insert(cache_key, entry);
        Ok(entry)
    }

    /// Least common ancestor of two stored nodes, computed entirely inside
    /// the interval index (see [`Repository::lca`]).
    pub fn lca(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        if a == b {
            return Ok(a);
        }
        let tree = a.0 >> TREE_SHIFT;
        if tree != b.0 >> TREE_SHIFT {
            return Err(CrimsonError::InvalidSample(format!(
                "lca({a}, {b}): nodes belong to different trees"
            )));
        }
        let (pa, ea) = self.interval_of(a)?;
        let (pb, eb) = self.interval_of(b)?;
        if pa <= pb && pb <= ea {
            return Ok(a);
        }
        if pb <= pa && pa <= eb {
            return Ok(b);
        }
        let (lo, hi) = if pa < pb { (pa, pb) } else { (pb, pa) };
        let mut entry = self.interval_entry(tree, lo)?;
        loop {
            if entry.parent_pre == entry.pre {
                // The root covers every rank of its tree, so reaching it
                // without covering `hi` means the index contradicts itself.
                return Err(CrimsonError::CorruptRepository(format!(
                    "interval walk reached the root of tree {tree} without covering pre {hi}"
                )));
            }
            entry = self.interval_entry(tree, entry.parent_pre)?;
            if entry.covers(hi) {
                return Ok(StoredNodeId((tree << TREE_SHIFT) | entry.node as u64));
            }
        }
    }

    pub fn is_ancestor(&self, ancestor: StoredNodeId, node: StoredNodeId) -> CrimsonResult<bool> {
        if ancestor == node {
            return Ok(true);
        }
        if ancestor.0 >> TREE_SHIFT != node.0 >> TREE_SHIFT {
            return Ok(false);
        }
        let (pa, ea) = self.interval_of(ancestor)?;
        let (pn, _) = self.interval_of(node)?;
        Ok(pa <= pn && pn <= ea)
    }

    // ------------------------------------------------------------------
    // Reference structure primitives over stored hierarchical labels
    // ------------------------------------------------------------------

    /// Least common ancestor computed from the stored hierarchical Dewey
    /// labels (see [`Repository::lca_label_walk`]).
    pub fn lca_label_walk(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        if a == b {
            return Ok(a);
        }
        let ra = self.node_record_uncached(a)?;
        let rb = self.node_record_uncached(b)?;
        if ra.frame == rb.frame {
            return self.local_lca(&ra, &rb);
        }
        // Cross-frame: walk the frame chains (two-pointer by frame rank),
        // replacing each node by the source node of its frame as we lift it.
        let mut na = ra;
        let mut nb = rb;
        let mut fa = self.frame_record(na.frame)?;
        let mut fb = self.frame_record(nb.frame)?;
        while fa.id != fb.id {
            if fa.rank >= fb.rank {
                let source = fa.source_node.ok_or_else(|| missing_source(&fa))?;
                na = self.node_record_uncached(source)?;
                fa = self.frame_record(na.frame)?;
            } else {
                let source = fb.source_node.ok_or_else(|| missing_source(&fb))?;
                nb = self.node_record_uncached(source)?;
                fb = self.frame_record(nb.frame)?;
            }
        }
        self.local_lca(&na, &nb)
    }

    /// LCA of two nodes known to share a frame: longest common prefix of the
    /// local labels, resolved to a node by walking at most `f` parent links.
    fn local_lca(&self, a: &NodeRecord, b: &NodeRecord) -> CrimsonResult<StoredNodeId> {
        debug_assert_eq!(a.frame, b.frame);
        let prefix = a
            .local_label
            .iter()
            .zip(b.local_label.iter())
            .take_while(|(x, y)| x == y)
            .count();
        let (mut cur, depth) = if a.local_label.len() <= b.local_label.len() {
            (a.clone(), a.local_label.len())
        } else {
            (b.clone(), b.local_label.len())
        };
        for _ in prefix..depth {
            let parent = cur.parent.ok_or_else(|| {
                CrimsonError::CorruptRepository(format!(
                    "node {} sits below its frame root yet has no parent",
                    cur.id
                ))
            })?;
            cur = self.node_record_uncached(parent)?;
        }
        Ok(cur.id)
    }
}

// ---------------------------------------------------------------------------
// The writer
// ---------------------------------------------------------------------------

impl Repository {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Create a new repository file (truncates an existing one).
    pub fn create(path: impl AsRef<Path>, options: RepositoryOptions) -> CrimsonResult<Self> {
        let mut db = Database::create_with_capacity(path, options.buffer_pool_pages)?;
        let trees_table = db.create_table("trees", trees_schema())?;
        db.create_index(trees_table, "tree_id", true)?;
        db.create_index(trees_table, "name", true)?;
        let nodes_table = db.create_table("nodes", nodes_schema())?;
        db.create_index(nodes_table, "node_id", true)?;
        db.create_index(nodes_table, "parent_id", false)?;
        db.create_index(nodes_table, "name", false)?;
        db.create_index(nodes_table, "root_dist", false)?;
        db.create_index(nodes_table, "leaf_of_tree", false)?;
        db.create_index(nodes_table, "subtree_height", false)?;
        let frames_table = db.create_table("frames", frames_schema())?;
        db.create_index(frames_table, "frame_id", true)?;
        let species_table = db.create_table("species", species_schema())?;
        db.create_index(species_table, "name", false)?;
        db.create_index(species_table, "tree_id", false)?;
        let history_table = db.create_table("query_history", history_schema())?;
        db.create_index(history_table, "query_id", true)?;
        let experiments_table = db.create_table("experiments", experiments_schema())?;
        db.create_index(experiments_table, "exp_id", true)?;
        db.create_index(experiments_table, "name", true)?;
        let results_table = db.create_table("experiment_results", experiment_results_schema())?;
        db.create_index(results_table, "result_id", true)?;
        db.create_index(results_table, "exp_id", false)?;
        let clades_table = db.create_table("experiment_clades", experiment_clades_schema())?;
        db.create_index(clades_table, "result_id", false)?;
        let stats_table = db.create_table("tree_stats", tree_stats_schema())?;
        db.create_index(stats_table, "tree_id", true)?;
        let ivl_by_pre = db.create_raw_index(IVL_BY_PRE)?;
        let ivl_by_node = db.create_raw_index(IVL_BY_NODE)?;
        let hash_by_pre = db.create_raw_index(HASH_BY_PRE)?;
        let hash_idx = db.create_raw_index(HASH_IDX)?;
        let clade_refs = db.create_raw_index(CLADE_REFS)?;
        db.flush()?;
        let checkpointer = options.checkpoint.map(|p| db.start_checkpointer(p));
        Ok(Repository {
            checkpointer,
            db,
            options,
            tables: Tables {
                trees: trees_table,
                nodes: nodes_table,
                frames: frames_table,
                species: species_table,
                history: history_table,
                experiments: experiments_table,
                experiment_results: results_table,
                experiment_clades: clades_table,
                tree_stats: stats_table,
                ivl_by_pre,
                ivl_by_node,
                hash_by_pre,
                hash_idx,
                clade_refs,
            },
            next_history_id: 0,
            last_commit: 0,
            record_cache: ShardedCache::new(RECORD_CACHE_GEN),
            entry_cache: ShardedCache::new(ENTRY_CACHE_GEN),
            recovery: None,
        })
    }

    /// Open an existing repository file. Opening replays the write-ahead
    /// log: loads committed before a crash are restored, interrupted loads
    /// are rolled back; the outcome is available from
    /// [`Repository::recovery_report`].
    pub fn open(path: impl AsRef<Path>, options: RepositoryOptions) -> CrimsonResult<Self> {
        let mut db = Database::open_with_capacity(path, options.buffer_pool_pages)?;
        let recovery = db.recovery_report();
        let trees_table = db.table("trees")?;
        let nodes_table = db.table("nodes")?;
        let frames_table = db.table("frames")?;
        let species_table = db.table("species")?;
        let history_table = db.table("query_history")?;
        // Repositories written before the experiment subsystem existed lack
        // its catalog tables; create them on open so older files stay
        // loadable and become experiment-capable in place.
        let experiments_table = match db.table("experiments") {
            Ok(t) => t,
            Err(_) => {
                let t = db.create_table("experiments", experiments_schema())?;
                db.create_index(t, "exp_id", true)?;
                db.create_index(t, "name", true)?;
                t
            }
        };
        let results_table = match db.table("experiment_results") {
            Ok(t) => t,
            Err(_) => {
                let t = db.create_table("experiment_results", experiment_results_schema())?;
                db.create_index(t, "result_id", true)?;
                db.create_index(t, "exp_id", false)?;
                t
            }
        };
        let clades_table = match db.table("experiment_clades") {
            Ok(t) => t,
            Err(_) => {
                let t = db.create_table("experiment_clades", experiment_clades_schema())?;
                db.create_index(t, "result_id", false)?;
                t
            }
        };
        // Files written before content-addressed storage lack the stats
        // table and the hash indexes; create them empty on open. Trees
        // already stored in the file simply have no stats row yet — every
        // hash read degrades gracefully until
        // [`Repository::backfill_clade_hashes`] (or the next checkpoint,
        // which runs it) fills the gap.
        let stats_table = match db.table("tree_stats") {
            Ok(t) => t,
            Err(_) => {
                let t = db.create_table("tree_stats", tree_stats_schema())?;
                db.create_index(t, "tree_id", true)?;
                t
            }
        };
        // Rolled-back transactions may have left gaps in the id sequence;
        // resume after the highest id actually present (a plain row count
        // could collide with a surviving id). The unique `query_id` index
        // yields rows in id order, so only the last one needs decoding.
        let next_history_id = match db
            .index_range(history_table, "query_id", None, None)?
            .last()
        {
            Some(&rid) => db.get(history_table, rid)?.values[0].as_int().unwrap_or(-1) as u64 + 1,
            None => 0,
        };
        let ivl_by_pre = db.raw_index(IVL_BY_PRE).map_err(|_| {
            CrimsonError::CorruptRepository(format!(
                "repository file lacks the `{IVL_BY_PRE}` interval index"
            ))
        })?;
        let ivl_by_node = db.raw_index(IVL_BY_NODE).map_err(|_| {
            CrimsonError::CorruptRepository(format!(
                "repository file lacks the `{IVL_BY_NODE}` interval index"
            ))
        })?;
        let hash_by_pre = match db.raw_index(HASH_BY_PRE) {
            Ok(id) => id,
            Err(_) => db.create_raw_index(HASH_BY_PRE)?,
        };
        let hash_idx = match db.raw_index(HASH_IDX) {
            Ok(id) => id,
            Err(_) => db.create_raw_index(HASH_IDX)?,
        };
        let clade_refs = match db.raw_index(CLADE_REFS) {
            Ok(id) => id,
            Err(_) => db.create_raw_index(CLADE_REFS)?,
        };
        let checkpointer = options.checkpoint.map(|p| db.start_checkpointer(p));
        Ok(Repository {
            checkpointer,
            db,
            options,
            tables: Tables {
                trees: trees_table,
                nodes: nodes_table,
                frames: frames_table,
                species: species_table,
                history: history_table,
                experiments: experiments_table,
                experiment_results: results_table,
                experiment_clades: clades_table,
                tree_stats: stats_table,
                ivl_by_pre,
                ivl_by_node,
                hash_by_pre,
                hash_idx,
                clade_refs,
            },
            next_history_id,
            last_commit: 0,
            record_cache: ShardedCache::new(RECORD_CACHE_GEN),
            entry_cache: ShardedCache::new(ENTRY_CACHE_GEN),
            recovery,
        })
    }

    /// Open a repository in **degraded read-only mode** for salvage after
    /// media damage: crash recovery still runs (it rewrites every page the
    /// log covers, which is itself a repair), every remaining page's
    /// checksum is verified up front and unrepairable pages are
    /// quarantined, all mutation is refused with a typed error, and the
    /// returned [`DegradedReport`] says which trees and experiments the
    /// damage reaches — everything else stays fully queryable. Requires a
    /// current-format file: degraded open cannot create the experiment
    /// tables that [`Repository::open`] backfills on old files.
    pub fn open_degraded(
        path: impl AsRef<Path>,
        options: RepositoryOptions,
    ) -> CrimsonResult<(Self, DegradedReport)> {
        let db = Database::open_degraded(path, options.buffer_pool_pages)?;
        let recovery = db.recovery_report();
        let tables = Tables {
            trees: db.table("trees")?,
            nodes: db.table("nodes")?,
            frames: db.table("frames")?,
            species: db.table("species")?,
            history: db.table("query_history")?,
            experiments: db.table("experiments")?,
            experiment_results: db.table("experiment_results")?,
            experiment_clades: db.table("experiment_clades")?,
            tree_stats: db.table("tree_stats")?,
            ivl_by_pre: db.raw_index(IVL_BY_PRE).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "repository file lacks the `{IVL_BY_PRE}` interval index"
                ))
            })?,
            ivl_by_node: db.raw_index(IVL_BY_NODE).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "repository file lacks the `{IVL_BY_NODE}` interval index"
                ))
            })?,
            hash_by_pre: db.raw_index(HASH_BY_PRE).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "repository file lacks the `{HASH_BY_PRE}` clade-hash index"
                ))
            })?,
            hash_idx: db.raw_index(HASH_IDX).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "repository file lacks the `{HASH_IDX}` content-address index"
                ))
            })?,
            clade_refs: db.raw_index(CLADE_REFS).map_err(|_| {
                CrimsonError::CorruptRepository(format!(
                    "repository file lacks the `{CLADE_REFS}` reference index"
                ))
            })?,
        };
        let repo = Repository {
            // Mutation is refused in degraded mode; never checkpoint.
            checkpointer: None,
            db,
            options,
            tables,
            // Writes are refused in degraded mode, so the history id
            // sequence is never consumed.
            next_history_id: 0,
            last_commit: 0,
            record_cache: ShardedCache::new(RECORD_CACHE_GEN),
            entry_cache: ShardedCache::new(ENTRY_CACHE_GEN),
            recovery,
        };
        let report = repo.survey_damage();
        Ok((repo, report))
    }

    /// Probe every tree and experiment, classifying each as readable or
    /// unreadable (any typed error — `CorruptPage` on a quarantined page,
    /// decode failures over flipped bits — marks it unreadable).
    fn survey_damage(&self) -> DegradedReport {
        let mut report = DegradedReport {
            quarantined_pages: self.db.quarantined_pages(),
            ..DegradedReport::default()
        };
        match self.ctx().list_trees() {
            Ok(trees) => {
                for tree in trees {
                    match self.probe_tree(&tree) {
                        Ok(()) => report.readable_trees.push(tree.name),
                        Err(e) => report.unreadable_trees.push((tree.name, e.to_string())),
                    }
                }
            }
            Err(e) => report
                .unreadable_trees
                .push(("<tree catalog>".into(), e.to_string())),
        }
        match self.ctx().list_experiments() {
            Ok(experiments) => {
                for exp in experiments {
                    match self.probe_experiment(exp.id) {
                        Ok(()) => report.readable_experiments.push(exp.name),
                        Err(e) => report
                            .unreadable_experiments
                            .push((exp.name, e.to_string())),
                    }
                }
            }
            Err(e) => report
                .unreadable_experiments
                .push(("<experiment catalog>".into(), e.to_string())),
        }
        report
    }

    /// Touch a tree's main structures: its record, root interval, every
    /// leaf's node row and interval entry. Damage on any of those pages
    /// surfaces as the typed error the caller records.
    fn probe_tree(&self, tree: &TreeRecord) -> CrimsonResult<()> {
        let ctx = self.ctx();
        ctx.interval_of(tree.root)?;
        for leaf in ctx.leaves(tree.handle)? {
            ctx.node_record(leaf)?;
            ctx.interval_of(leaf)?;
        }
        ctx.species_count(tree.handle)?;
        Ok(())
    }

    /// Touch an experiment's result and clade rows.
    fn probe_experiment(&self, id: u64) -> CrimsonResult<()> {
        let ctx = self.ctx();
        for result in ctx.experiment_results(id)? {
            ctx.experiment_clades(result.id)?;
        }
        Ok(())
    }

    /// The read engine over the writer's own (current) view.
    pub(crate) fn ctx(&self) -> ReadCtx<'_, Database> {
        ReadCtx {
            db: &self.db,
            tables: self.tables,
            records: &self.record_cache,
            entries: &self.entry_cache,
        }
    }

    /// A concurrent snapshot reader for this repository. Readers run on
    /// other threads while this value keeps loading: they see the last
    /// committed state and never block behind an in-flight transaction.
    pub fn reader(&self) -> CrimsonResult<crate::reader::RepositoryReader> {
        crate::reader::RepositoryReader::new(self)
    }

    /// The options this repository was opened with.
    pub fn options(&self) -> &RepositoryOptions {
        &self.options
    }

    /// The crash-recovery outcome from opening this repository (`None` for
    /// a freshly created file; a report with zero counters for a clean
    /// open). Part of the repository stats surfaced to load tooling.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Checkpoint: write all dirty state to the data file and truncate the
    /// write-ahead log. Before checkpointing, any tree stored by a pre-hash
    /// build gets its content address backfilled, so old files upgrade in
    /// place the first time they are flushed by a hash-aware build.
    pub fn flush(&mut self) -> CrimsonResult<()> {
        if !self.db.read_only() && !self.db.is_poisoned() {
            self.backfill_clade_hashes()?;
        }
        self.db.flush()?;
        Ok(())
    }

    /// Block until every commit issued through this repository is durable
    /// on disk. A no-op under [`Durability::Sync`] (each commit already
    /// waited); under [`Durability::Async`] this forces the group fsync
    /// covering the last asynchronous commit — the natural call at a bulk
    /// load's batch boundary.
    pub fn sync(&self) -> CrimsonResult<()> {
        self.db.wait_durable(self.last_commit)?;
        Ok(())
    }

    /// Block until the write-ahead log is durable up to `lsn` (leading or
    /// following a group fsync as needed).
    pub fn wait_durable(&self, lsn: Lsn) -> CrimsonResult<()> {
        self.db.wait_durable(lsn)?;
        Ok(())
    }

    /// Absolute LSN up to which the write-ahead log is known durable.
    pub fn durable_lsn(&self) -> Lsn {
        self.db.durable_lsn()
    }

    /// The highest commit LSN this repository has logged through the
    /// asynchronous commit path (zero when every commit was synchronous).
    /// Hand it to [`Repository::wait_durable`] — or to
    /// [`crate::reader::RepositoryReader::wait_durable`], which does not
    /// need the writer — to turn an acknowledged-but-buffered commit into a
    /// durable one.
    pub fn last_commit_lsn(&self) -> Lsn {
        self.last_commit
    }

    /// Switch the durability mode commits route through from now on (see
    /// [`Durability`]). The server front end keeps the writer in
    /// [`Durability::Async`] permanently and implements per-request
    /// synchronous semantics by waiting on [`Repository::last_commit_lsn`]
    /// *after* releasing the writer, so concurrent sessions' fsync waits
    /// collapse into shared group rounds.
    pub fn set_durability(&mut self, durability: Durability) {
        self.options.durability = durability;
    }

    /// Whether a background checkpointer is running for this repository.
    pub fn has_checkpointer(&self) -> bool {
        self.checkpointer.is_some()
    }

    /// Run `f` as one atomic unit: if a transaction is already open, `f`
    /// joins it (so compound loads nest); otherwise a transaction is
    /// begun, committed on success and rolled back — with the decoded-row
    /// caches cleared, since they may hold phantom rows read inside the
    /// failed unit — on error.
    pub(crate) fn with_txn<T>(
        &mut self,
        f: impl FnOnce(&mut Self) -> CrimsonResult<T>,
    ) -> CrimsonResult<T> {
        if self.db.in_transaction() {
            return f(self);
        }
        self.db.begin()?;
        match f(self) {
            Ok(value) => {
                // Route the commit through the configured durability mode:
                // synchronous commits ride the storage engine's group fsync
                // (blocking on the durable-LSN watermark); asynchronous ones
                // return at log-append time and remember the commit LSN so
                // [`Repository::sync`] can force the covering fsync later.
                let committed = match self.options.durability {
                    Durability::Sync => self.db.commit(),
                    Durability::Async => self.db.commit_async().map(|lsn| {
                        self.last_commit = self.last_commit.max(lsn);
                    }),
                };
                match committed {
                    Ok(()) => Ok(value),
                    Err(e) => {
                        self.purge_caches();
                        Err(e.into())
                    }
                }
            }
            Err(e) => {
                let rollback = self.db.rollback();
                self.purge_caches();
                match rollback {
                    Ok(()) => Err(e),
                    // A failed rollback may leave stolen uncommitted pages
                    // readable as committed; that is strictly worse than the
                    // original error and must not be swallowed. Reopening
                    // replays the WAL undo records and restores consistency.
                    Err(rb) => Err(CrimsonError::CorruptRepository(format!(
                        "transaction failed ({e}) and its rollback also failed ({rb}); \
                         reopen the repository to recover from the write-ahead log"
                    ))),
                }
            }
        }
    }

    /// Drop the decoded-record and interval-entry caches (they may reference
    /// rows of a rolled-back transaction).
    fn purge_caches(&self) {
        self.record_cache.clear();
        self.entry_cache.clear();
    }

    /// Inject a simulated crash into the storage engine (test
    /// instrumentation for the crash-recovery suites).
    pub fn inject_crash(&self, point: CrashPoint) {
        self.db.inject_crash(point)
    }

    /// Install a deterministic fault-injection schedule over the data and
    /// log files (see [`storage::FaultSchedule`]). Test instrumentation for
    /// the media-fault suites; fails if a schedule is already installed.
    pub fn install_fault_schedule(&self, schedule: SharedFaultSchedule) -> CrimsonResult<()> {
        self.db.install_fault_schedule(schedule)?;
        Ok(())
    }

    /// The installed fault schedule, if any.
    pub fn fault_schedule(&self) -> Option<SharedFaultSchedule> {
        self.db.fault_schedule()
    }

    /// Set the transient-I/O retry policy for the data file and the
    /// write-ahead log.
    pub fn set_io_retry_policy(&self, policy: RetryPolicy) {
        self.db.set_io_retry_policy(policy)
    }

    /// Whether this repository is open in read-only (degraded) mode.
    pub fn read_only(&self) -> bool {
        self.db.read_only()
    }

    /// Whether an earlier fsync failure poisoned the writer: further
    /// mutation is refused (readers keep serving the last committed
    /// snapshot); reopen the repository to recover from the log.
    pub fn is_poisoned(&self) -> bool {
        self.db.is_poisoned()
    }

    /// Page ids quarantined after unrepairable checksum failures.
    pub fn quarantined_pages(&self) -> Vec<u64> {
        self.db.quarantined_pages()
    }

    /// Incremental media scrub: verify every page's checksum (backfilling,
    /// repairing from the WAL or quarantining as appropriate — see
    /// [`storage::buffer::BufferPool::scrub`]), then cross-check the page
    /// scan with the logical [`Repository::integrity_check`] when no page
    /// is quarantined.
    pub fn scrub(&self, opts: ScrubOptions) -> CrimsonResult<ScrubReport> {
        let pages = self.db.scrub(opts)?;
        let integrity = if pages.pages_quarantined == 0 {
            Some(self.ctx().integrity_check()?)
        } else {
            // Quarantined pages make the row-level walk fail by
            // construction; the page-level report already carries the bad
            // news.
            None
        };
        Ok(ScrubReport { pages, integrity })
    }

    /// Enable or disable write-ahead logging (bench baseline only; disabled
    /// logging forfeits crash safety).
    pub fn set_logging(&mut self, enabled: bool) -> CrimsonResult<()> {
        self.db.set_logging(enabled)?;
        Ok(())
    }

    /// Buffer-pool statistics from the underlying storage engine.
    pub fn buffer_stats(&self) -> storage::buffer::BufferStats {
        self.db.buffer_stats()
    }

    /// `(resident pages, frame capacity)` of the underlying buffer pool.
    /// Residency never exceeds capacity, whatever the file size.
    pub fn buffer_utilization(&self) -> (usize, usize) {
        (self.db.pool().resident_pages(), self.db.pool().capacity())
    }

    /// Number of pages holding stored MVCC version state (pending or
    /// committed history). The concurrency harness's leak check: this
    /// returns to zero once no reader epoch is pinned and no transaction
    /// is open.
    pub fn version_pages(&self) -> usize {
        self.db.pool().version_pages()
    }

    /// Number of live pinned reader epochs (pin count, not distinct
    /// epochs).
    pub fn pinned_epochs(&self) -> usize {
        self.db.pool().pinned_epochs()
    }

    /// Reset buffer-pool statistics.
    pub fn reset_buffer_stats(&self) {
        self.db.reset_buffer_stats()
    }

    /// Drop cached pages, decoded records and interval entries to measure
    /// cold-start query behaviour.
    pub fn clear_cache(&self) -> CrimsonResult<()> {
        self.db.clear_cache()?;
        self.record_cache.clear();
        self.entry_cache.clear();
        Ok(())
    }

    /// `(hits, misses)` of the decoded-record cache, plus the number of
    /// resident entries: `((hits, misses), len)`.
    pub fn record_cache_stats(&self) -> ((u64, u64), usize) {
        (self.record_cache.stats(), self.record_cache.len())
    }

    // ------------------------------------------------------------------
    // Loading
    // ------------------------------------------------------------------

    /// Load a tree (structure only) under `name`; returns its handle.
    ///
    /// Nodes are stored with hierarchical Dewey labels (frame depth taken
    /// from the repository options), cumulative root distances, pre-order
    /// ranks and parent links.
    ///
    /// The load is one atomic transaction: a failed or interrupted load
    /// leaves no orphan node/frame/interval rows and is invisible after
    /// reopening the repository.
    ///
    /// This is the bulk fast path: one DFS computes every per-node scalar
    /// (pre/end ranks, parent rank, depth, root distance, subtree height),
    /// then a single pre-order emission streams node rows straight into the
    /// storage engine's bulk appenders — heap pages are filled sequentially,
    /// secondary indexes and both interval indexes are packed bottom-up —
    /// instead of paying a root-to-leaf descent and a whole-node rewrite
    /// per row. [`Repository::load_tree_reference`] keeps the row-at-a-time
    /// path for cross-validation.
    pub fn load_tree(&mut self, name: &str, tree: &Tree) -> CrimsonResult<TreeHandle> {
        self.with_txn(|repo| repo.load_tree_inner(name, tree))
    }

    /// Load a tree through the original row-at-a-time path: one
    /// [`Database::insert`] per frame/node row and one `raw_insert` per
    /// interval entry, each paying a full B+tree descent. Kept as the
    /// reference implementation the bulk property tests cross-validate
    /// against, and as the cost baseline the load bench measures the bulk
    /// path's speedup over.
    pub fn load_tree_reference(&mut self, name: &str, tree: &Tree) -> CrimsonResult<TreeHandle> {
        self.with_txn(|repo| repo.load_tree_reference_inner(name, tree))
    }

    fn load_tree_inner(&mut self, name: &str, tree: &Tree) -> CrimsonResult<TreeHandle> {
        if tree.is_empty() {
            return Err(CrimsonError::Phylo(phylo::PhyloError::EmptyTree));
        }
        if self.find_tree(name)?.is_some() {
            return Err(CrimsonError::DuplicateTree(name.to_string()));
        }
        let tree_id = self.next_tree_id()?;
        let handle = TreeHandle(tree_id);

        let labels = HierarchicalDewey::build(tree, self.options.frame_depth);
        let layer0 = labels.layer(0);
        let node_sid = |n: phylo::NodeId| StoredNodeId((tree_id << TREE_SHIFT) | n.0 as u64);
        let frame_sid = |f: u32| StoredFrameId((tree_id << TREE_SHIFT) | f as u64);

        // One iterative DFS computes every per-node scalar the row needs:
        // pre-order rank on entry; subtree end rank and height on exit. This
        // replaces five separate traversals (root distances, depths,
        // pre-order ranks, heights, interval labels) of the reference path.
        let n = tree.node_count();
        let mut pre_of = vec![0u32; n];
        let mut end_of = vec![0u32; n];
        let mut parent_pre = vec![0u32; n];
        let mut root_dist = vec![0.0f64; n];
        let mut depth_of = vec![0u64; n];
        let mut height_of = vec![0.0f64; n];
        // Canonical clade hashes and leaf-rank intervals, computed in the
        // same DFS (children are final at a node's post-order exit): the
        // content address comes for free with the load.
        let mut hash_of = vec![CladeHash([0u8; clade_hash::CLADE_HASH_LEN]); n];
        let mut leaf_lo = vec![u32::MAX; n];
        let mut leaf_hi = vec![0u32; n];
        let mut hash_scratch: Vec<CladeHash> = Vec::new();
        let mut next_leaf_rank = 0u32;
        // Pre-order sequence of arena ids: the emission order.
        let mut order: Vec<phylo::NodeId> = Vec::with_capacity(n);
        let mut leaf_count = 0u64;
        let root = tree.root_unchecked();
        order.push(root);
        let mut next_pre = 1u32;
        let mut stack: Vec<(phylo::NodeId, usize)> = vec![(root, 0)];
        while let Some(&(node, child_idx)) = stack.last() {
            let children = tree.children(node);
            if child_idx < children.len() {
                stack.last_mut().expect("just peeked").1 += 1;
                let child = children[child_idx];
                let ci = child.index();
                pre_of[ci] = next_pre;
                next_pre += 1;
                parent_pre[ci] = pre_of[node.index()];
                root_dist[ci] = root_dist[node.index()] + tree.node(child).branch_length_or_zero();
                depth_of[ci] = depth_of[node.index()] + 1;
                order.push(child);
                stack.push((child, 0));
            } else {
                let ni = node.index();
                end_of[ni] = next_pre - 1;
                if children.is_empty() {
                    leaf_count += 1;
                    hash_of[ni] = CladeHash::leaf(tree.name(node));
                    leaf_lo[ni] = next_leaf_rank;
                    leaf_hi[ni] = next_leaf_rank;
                    next_leaf_rank += 1;
                } else {
                    hash_scratch.clear();
                    hash_scratch.extend(children.iter().map(|c| hash_of[c.index()]));
                    hash_of[ni] = CladeHash::internal(&mut hash_scratch);
                }
                stack.pop();
                if let Some(&(parent, _)) = stack.last() {
                    let pi = parent.index();
                    let lifted = height_of[ni] + tree.node(node).branch_length_or_zero();
                    if lifted > height_of[pi] {
                        height_of[pi] = lifted;
                    }
                    leaf_lo[pi] = leaf_lo[pi].min(leaf_lo[ni]);
                    leaf_hi[pi] = leaf_hi[pi].max(leaf_hi[ni]);
                }
            }
        }
        debug_assert_eq!(order.len(), n);

        // Frame ranks (number of ancestor frames) for the cross-frame walk.
        let frame_count = layer0.frame_count();
        let mut frame_rank = vec![0u64; frame_count];
        for fid in 0..frame_count as u32 {
            let mut rank = 0u64;
            let mut cur = fid;
            while let Some(parent) = layer0.frame(cur).parent_frame {
                rank += 1;
                cur = parent;
            }
            frame_rank[fid as usize] = rank;
        }

        // Frame rows, streamed through the bulk appender (frame ids ascend,
        // so the unique frame_id index packs bottom-up).
        let mut next_frame = 0u32;
        self.db
            .bulk_insert_with(self.tables.frames, BULK_FILL, |values| {
                if next_frame as usize == frame_count {
                    return Ok(false);
                }
                let fid = next_frame;
                next_frame += 1;
                let frame = layer0.frame(fid);
                values.push(Value::Int(frame_sid(fid).0 as i64));
                values.push(Value::Int(tree_id as i64));
                values.push(Value::Int(node_sid(phylo::NodeId(frame.root)).0 as i64));
                values.push(match frame.parent_frame {
                    Some(p) => Value::Int(frame_sid(p).0 as i64),
                    None => Value::Int(-1),
                });
                values.push(match frame.source {
                    Some(s) => Value::Int(node_sid(phylo::NodeId(s)).0 as i64),
                    None => Value::Int(-1),
                });
                values.push(Value::Int(frame_rank[fid as usize] as i64));
                Ok(true)
            })?;

        // Node rows in pre-order (heap locality aligned with the dominant
        // access pattern), one streaming emission: each row is encoded into
        // the engine's reusable buffer and appended to sequentially filled
        // heap pages; the six secondary indexes are packed bottom-up from
        // the buffered key runs. The returned physical record ids feed the
        // interval index below as direct row locators.
        let mut emit = 0usize;
        let row_ids = self
            .db
            .bulk_insert_with(self.tables.nodes, BULK_FILL, |values| {
                let Some(&node) = order.get(emit) else {
                    return Ok(false);
                };
                emit += 1;
                let ai = node.index();
                let is_leaf = tree.is_leaf(node);
                let label = labels.label(node);
                let label_bytes: Vec<u8> =
                    label.path.iter().flat_map(|c| c.to_le_bytes()).collect();
                values.push(Value::Int(node_sid(node).0 as i64));
                values.push(Value::Int(tree_id as i64));
                values.push(match tree.parent(node) {
                    Some(p) => Value::Int(node_sid(p).0 as i64),
                    None => Value::Int(-1),
                });
                values.push(match tree.name(node) {
                    Some(n) => Value::text(n),
                    None => Value::Null,
                });
                values.push(match tree.branch_length(node) {
                    Some(l) => Value::Float(l),
                    None => Value::Null,
                });
                values.push(Value::Float(root_dist[ai]));
                values.push(Value::Int(depth_of[ai] as i64));
                values.push(Value::Int(pre_of[ai] as i64));
                values.push(Value::Int(frame_sid(label.frame).0 as i64));
                values.push(Value::bytes(label_bytes));
                values.push(Value::Bool(is_leaf));
                values.push(Value::Int(if is_leaf { tree_id as i64 } else { -1 }));
                values.push(Value::Float(height_of[ai]));
                Ok(true)
            })?;

        // Both interval indexes as sorted bottom-up bulk builds: covering
        // entries keyed by `(tree_id, pre)` carrying the heap locator, and
        // the node id → packed `(pre, end)` map. Pre-order emission makes
        // the first run sorted; ascending arena ids make the second.
        self.db.bulk_raw_insert(
            self.tables.ivl_by_pre,
            BULK_FILL,
            order.iter().enumerate().map(|(rank, &node)| {
                let ai = node.index();
                let entry = IntervalEntry {
                    pre: pre_of[ai],
                    end: end_of[ai],
                    parent_pre: parent_pre[ai],
                    node: node.0,
                    is_leaf: tree.is_leaf(node),
                };
                debug_assert_eq!(entry.pre as usize, rank);
                (entry.encode_key(tree_id), row_ids[rank].to_u64())
            }),
        )?;
        self.db.bulk_raw_insert(
            self.tables.ivl_by_node,
            BULK_FILL,
            (0..n).map(|ai| {
                let sid = (tree_id << TREE_SHIFT) | ai as u64;
                let packed = ((pre_of[ai] as u64) << 32) | end_of[ai] as u64;
                (sid.to_be_bytes(), packed)
            }),
        )?;

        // The content address: per-node hashes in `(tree_id, pre)` order (a
        // sorted bulk run like the interval index), the global hash entries,
        // and the stats row the equal-tree short-circuit reads.
        let counts = crate::content::count_clades(
            order
                .iter()
                .map(|&v| (leaf_lo[v.index()], leaf_hi[v.index()])),
            leaf_count as u32,
        );
        self.insert_content_address(
            tree_id,
            order
                .iter()
                .map(|&v| (pre_of[v.index()], end_of[v.index()], hash_of[v.index()])),
            counts,
            clade_hash::distinct_named_leaves(tree),
        )?;

        // Insert the tree row last so a partially loaded tree is not visible.
        self.db.insert(
            self.tables.trees,
            &[
                Value::Int(tree_id as i64),
                Value::text(name),
                Value::Int(node_sid(root).0 as i64),
                Value::Int(n as i64),
                Value::Int(leaf_count as i64),
                Value::Int(self.options.frame_depth as i64),
            ],
        )?;
        Ok(handle)
    }

    fn load_tree_reference_inner(&mut self, name: &str, tree: &Tree) -> CrimsonResult<TreeHandle> {
        if tree.is_empty() {
            return Err(CrimsonError::Phylo(phylo::PhyloError::EmptyTree));
        }
        if self.find_tree(name)?.is_some() {
            return Err(CrimsonError::DuplicateTree(name.to_string()));
        }
        let tree_id = self.next_tree_id()?;
        let handle = TreeHandle(tree_id);

        let labels = HierarchicalDewey::build(tree, self.options.frame_depth);
        let layer0 = labels.layer(0);
        let root_dists = tree.all_root_distances();
        let depths = tree.all_depths();
        let preorder = tree.preorder_ranks();
        // Subtree height (max distance to a descendant leaf) in post-order.
        let mut heights = vec![0.0f64; tree.node_count()];
        for node in tree.postorder() {
            let mut h = 0.0f64;
            for &c in tree.children(node) {
                h = h.max(heights[c.index()] + tree.node(c).branch_length_or_zero());
            }
            heights[node.index()] = h;
        }

        let node_sid = |n: phylo::NodeId| StoredNodeId((tree_id << TREE_SHIFT) | n.0 as u64);
        let frame_sid = |f: u32| StoredFrameId((tree_id << TREE_SHIFT) | f as u64);

        // Frame ranks (number of ancestor frames) for the cross-frame walk.
        let frame_count = layer0.frame_count();
        let mut frame_rank = vec![0u64; frame_count];
        for fid in 0..frame_count as u32 {
            let mut rank = 0u64;
            let mut cur = fid;
            while let Some(parent) = layer0.frame(cur).parent_frame {
                rank += 1;
                cur = parent;
            }
            frame_rank[fid as usize] = rank;
        }

        // Insert frames.
        for fid in 0..frame_count as u32 {
            let frame = layer0.frame(fid);
            self.db.insert(
                self.tables.frames,
                &[
                    Value::Int(frame_sid(fid).0 as i64),
                    Value::Int(tree_id as i64),
                    Value::Int(node_sid(phylo::NodeId(frame.root)).0 as i64),
                    match frame.parent_frame {
                        Some(p) => Value::Int(frame_sid(p).0 as i64),
                        None => Value::Int(-1),
                    },
                    match frame.source {
                        Some(s) => Value::Int(node_sid(phylo::NodeId(s)).0 as i64),
                        None => Value::Int(-1),
                    },
                    Value::Int(frame_rank[fid as usize] as i64),
                ],
            )?;
        }

        // Insert nodes in pre-order (keeps heap locality aligned with the
        // dominant access pattern), remembering each row's physical record
        // id — the interval index stores it as a direct row locator.
        let mut leaf_count = 0u64;
        let mut row_ids = vec![storage::RecordId { page: 0, slot: 0 }; tree.node_count()];
        for node in tree.preorder() {
            let is_leaf = tree.is_leaf(node);
            if is_leaf {
                leaf_count += 1;
            }
            let label = labels.label(node);
            let label_bytes: Vec<u8> = label.path.iter().flat_map(|c| c.to_le_bytes()).collect();
            row_ids[node.index()] = self.db.insert(
                self.tables.nodes,
                &[
                    Value::Int(node_sid(node).0 as i64),
                    Value::Int(tree_id as i64),
                    match tree.parent(node) {
                        Some(p) => Value::Int(node_sid(p).0 as i64),
                        None => Value::Int(-1),
                    },
                    match tree.name(node) {
                        Some(n) => Value::text(n),
                        None => Value::Null,
                    },
                    match tree.branch_length(node) {
                        Some(l) => Value::Float(l),
                        None => Value::Null,
                    },
                    Value::Float(root_dists[node.index()]),
                    Value::Int(depths[node.index()] as i64),
                    Value::Int(preorder[node.index()] as i64),
                    Value::Int(frame_sid(label.frame).0 as i64),
                    Value::bytes(label_bytes),
                    Value::Bool(is_leaf),
                    Value::Int(if is_leaf { tree_id as i64 } else { -1 }),
                    Value::Float(heights[node.index()]),
                ],
            )?;
        }

        // Persist the interval index: one covering entry per node keyed by
        // `(tree_id, pre)` whose value is the node row's physical record id
        // (a direct heap locator, so scan consumers fetch rows without an
        // index descent), plus the node id → packed interval map that makes
        // `is_ancestor` two integer comparisons. Entries arrive in
        // pre-order, i.e. in key order, so the B+tree build is
        // append-friendly.
        let intervals = IntervalLabels::build(tree);
        for entry in intervals.entries(tree) {
            let sid = node_sid(phylo::NodeId(entry.node));
            let rid = row_ids[entry.node as usize];
            self.db.raw_insert(
                self.tables.ivl_by_pre,
                &entry.encode_key(tree_id),
                rid.to_u64(),
            )?;
            let packed = ((entry.pre as u64) << 32) | entry.end as u64;
            self.db
                .raw_insert(self.tables.ivl_by_node, &sid.0.to_be_bytes(), packed)?;
        }

        // Content-address rows, computed standalone (the bulk path folds
        // this into its single DFS; the property tests cross-validate the
        // two paths' hashes and stats byte for byte).
        let content = crate::content::TreeContent::compute(tree);
        self.insert_content_address(
            tree_id,
            tree.preorder().map(|v| {
                let (pre, end) = intervals.interval(v);
                (pre, end, content.hashes[v.index()])
            }),
            content.counts,
            content.distinct_leaves,
        )?;

        // Insert the tree row last so a partially loaded tree is not visible.
        self.db.insert(
            self.tables.trees,
            &[
                Value::Int(tree_id as i64),
                Value::text(name),
                Value::Int(node_sid(tree.root_unchecked()).0 as i64),
                Value::Int(tree.node_count() as i64),
                Value::Int(leaf_count as i64),
                Value::Int(self.options.frame_depth as i64),
            ],
        )?;
        Ok(handle)
    }

    /// Append species (sequence) data to an already loaded tree. Species
    /// whose name does not match a leaf of the tree are rejected. One
    /// atomic transaction: either every sequence lands or none do.
    pub fn load_species(
        &mut self,
        handle: TreeHandle,
        sequences: &HashMap<String, String>,
    ) -> CrimsonResult<usize> {
        self.with_txn(|repo| repo.load_species_inner(handle, sequences))
    }

    fn load_species_inner(
        &mut self,
        handle: TreeHandle,
        sequences: &HashMap<String, String>,
    ) -> CrimsonResult<usize> {
        // Resolve every species to its leaf first (reads), then stream the
        // rows through the bulk appender in one pass.
        let mut resolved: Vec<(&String, StoredNodeId, &String)> =
            Vec::with_capacity(sequences.len());
        for (name, seq) in sequences {
            let node = self
                .species_node(handle, name)?
                .ok_or_else(|| CrimsonError::UnknownSpecies(name.clone()))?;
            resolved.push((name, node, seq));
        }
        let loaded = resolved.len();
        let mut iter = resolved.into_iter();
        self.db
            .bulk_insert_with(self.tables.species, BULK_FILL, |values| {
                let Some((name, node, seq)) = iter.next() else {
                    return Ok(false);
                };
                values.push(Value::text(name));
                values.push(Value::Int(handle.0 as i64));
                values.push(Value::Int(node.0 as i64));
                values.push(Value::text(seq.clone()));
                Ok(true)
            })?;
        Ok(loaded)
    }

    /// Load a gold standard: the tree plus all of its sequences, as a
    /// single atomic transaction (an interrupted load leaves neither).
    pub fn load_gold_standard(
        &mut self,
        name: &str,
        gold: &GoldStandard,
    ) -> CrimsonResult<TreeHandle> {
        self.with_txn(|repo| {
            let handle = repo.load_tree(name, &gold.tree)?;
            if !gold.sequences.is_empty() {
                repo.load_species(handle, &gold.sequences)?;
            }
            Ok(handle)
        })
    }

    pub(crate) fn next_tree_id(&self) -> CrimsonResult<u64> {
        let rows = self.db.scan(self.tables.trees)?;
        let max = rows
            .iter()
            .map(|(_, row)| row.values[0].as_int().unwrap_or(0) as u64)
            .max()
            .unwrap_or(0);
        Ok(if rows.is_empty() { 1 } else { max + 1 })
    }

    // ------------------------------------------------------------------
    // Read surface (delegates to the shared engine; all `&self`)
    // ------------------------------------------------------------------

    /// Look up a tree by name.
    pub fn find_tree(&self, name: &str) -> CrimsonResult<Option<TreeRecord>> {
        self.ctx().find_tree(name)
    }

    /// Look up a tree by name, failing when absent.
    pub fn tree_by_name(&self, name: &str) -> CrimsonResult<TreeRecord> {
        self.ctx().tree_by_name(name)
    }

    /// Look up a tree by handle.
    pub fn tree_record(&self, handle: TreeHandle) -> CrimsonResult<TreeRecord> {
        self.ctx().tree_record(handle)
    }

    /// All trees currently loaded.
    pub fn list_trees(&self) -> CrimsonResult<Vec<TreeRecord>> {
        self.ctx().list_trees()
    }

    /// Fetch a node row (served from the repository's record cache when
    /// warm; node rows are immutable once loaded, so cached entries never go
    /// stale).
    pub fn node_record(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        self.ctx().node_record(id)
    }

    /// Fetch a node row as a shared handle — the zero-copy variant the query
    /// engine uses internally.
    pub fn node_record_arc(&self, id: StoredNodeId) -> CrimsonResult<Arc<NodeRecord>> {
        self.ctx().node_record_arc(id)
    }

    /// Fetch a node row straight from the node table, bypassing the record
    /// cache. Reference path for the cache-effectiveness assertions.
    pub fn node_record_uncached(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        self.ctx().node_record_uncached(id)
    }

    /// Fetch a frame row.
    pub fn frame_record(&self, id: StoredFrameId) -> CrimsonResult<FrameRecord> {
        self.ctx().frame_record(id)
    }

    /// Children of a stored node (via the parent index).
    pub fn children(&self, id: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().children(id)
    }

    /// The leaf node a species name maps to in the given tree, if any.
    pub fn species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<Option<StoredNodeId>> {
        self.ctx().species_node(handle, name)
    }

    /// The leaf node a species name maps to, failing when absent.
    pub fn require_species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<StoredNodeId> {
        self.ctx().require_species_node(handle, name)
    }

    /// All leaf node ids of a tree (via the `leaf_of_tree` index).
    pub fn leaves(&self, handle: TreeHandle) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().leaves(handle)
    }

    /// Sequences stored for the given species names.
    pub fn sequences_for(
        &self,
        handle: TreeHandle,
        names: &[String],
    ) -> CrimsonResult<HashMap<String, String>> {
        self.ctx().sequences_for(handle, names)
    }

    /// Number of species rows stored for a tree.
    pub fn species_count(&self, handle: TreeHandle) -> CrimsonResult<usize> {
        self.ctx().species_count(handle)
    }

    /// Verify cross-table invariants: every node, frame and species row
    /// belongs to a tree in the catalog; per-tree node and leaf counts
    /// match the tree row; both interval indexes hold exactly one entry per
    /// node; every species row points at a leaf of its tree; the query
    /// history parses in full. Violations — orphan rows from an interrupted
    /// load, say — surface as [`CrimsonError::CorruptRepository`].
    pub fn integrity_check(&self) -> CrimsonResult<IntegrityReport> {
        self.ctx().integrity_check()
    }

    /// The packed `[pre, end]` interval of a stored node: one point lookup
    /// in the `ivl_by_node` raw index, no row decode.
    pub fn interval_of(&self, id: StoredNodeId) -> CrimsonResult<(u32, u32)> {
        self.ctx().interval_of(id)
    }

    /// Least common ancestor of two stored nodes, computed entirely inside
    /// the interval index.
    ///
    /// The enclosing-interval tests resolve the ancestor cases in O(1) after
    /// two point lookups. Otherwise the walk lifts the lower-ranked node
    /// through its stored `parent_pre` chain until its interval covers the
    /// higher rank; every ancestor of one node that covers the other node's
    /// rank is a common ancestor, and the first (deepest) one reached is the
    /// LCA. Each step is one probe of the compact covering index — no node
    /// row is fetched or decoded on this path.
    pub fn lca(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.ctx().lca(a, b)
    }

    /// `true` when `ancestor` is an ancestor-or-self of `node`: two interval
    /// lookups and two integer comparisons (§2.2's LCA test, at the cost the
    /// XML-indexing literature promises for interval labels).
    pub fn is_ancestor(&self, ancestor: StoredNodeId, node: StoredNodeId) -> CrimsonResult<bool> {
        self.ctx().is_ancestor(ancestor, node)
    }

    /// Least common ancestor computed from the stored hierarchical Dewey
    /// labels (local prefix within a frame; source-node hops across frames),
    /// exactly as §2.1 describes.
    ///
    /// This is the pre-interval-index implementation, kept as the reference
    /// the property tests cross-validate [`Repository::lca`] against and as
    /// the baseline for the page-read comparisons. It pays one full row
    /// decode per node visited.
    pub fn lca_label_walk(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.ctx().lca_label_walk(a, b)
    }
}

/// Typed error for a frame that should carry a source node but does not.
fn missing_source(frame: &FrameRecord) -> CrimsonError {
    CrimsonError::CorruptRepository(format!(
        "frame {:?} of tree #{} (rank {}) has no source node",
        frame.id, frame.tree.0, frame.rank
    ))
}

// ---------------------------------------------------------------------------
// Schemas and row decoding
// ---------------------------------------------------------------------------

fn trees_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("tree_id", ValueType::Int),
        ColumnDef::not_null("name", ValueType::Text),
        ColumnDef::not_null("root_node", ValueType::Int),
        ColumnDef::not_null("node_count", ValueType::Int),
        ColumnDef::not_null("leaf_count", ValueType::Int),
        ColumnDef::not_null("frame_depth", ValueType::Int),
    ])
}

fn nodes_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("node_id", ValueType::Int),
        ColumnDef::not_null("tree_id", ValueType::Int),
        ColumnDef::not_null("parent_id", ValueType::Int),
        ColumnDef::new("name", ValueType::Text),
        ColumnDef::new("branch_length", ValueType::Float),
        ColumnDef::not_null("root_dist", ValueType::Float),
        ColumnDef::not_null("depth", ValueType::Int),
        ColumnDef::not_null("preorder", ValueType::Int),
        ColumnDef::not_null("frame_id", ValueType::Int),
        ColumnDef::not_null("label", ValueType::Bytes),
        ColumnDef::not_null("is_leaf", ValueType::Bool),
        ColumnDef::not_null("leaf_of_tree", ValueType::Int),
        ColumnDef::not_null("subtree_height", ValueType::Float),
    ])
}

fn frames_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("frame_id", ValueType::Int),
        ColumnDef::not_null("tree_id", ValueType::Int),
        ColumnDef::not_null("root_node", ValueType::Int),
        ColumnDef::not_null("parent_frame", ValueType::Int),
        ColumnDef::not_null("source_node", ValueType::Int),
        ColumnDef::not_null("rank", ValueType::Int),
    ])
}

fn species_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("name", ValueType::Text),
        ColumnDef::not_null("tree_id", ValueType::Int),
        ColumnDef::not_null("node_id", ValueType::Int),
        ColumnDef::not_null("sequence", ValueType::Text),
    ])
}

fn history_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("query_id", ValueType::Int),
        ColumnDef::not_null("kind", ValueType::Text),
        ColumnDef::not_null("params", ValueType::Text),
        ColumnDef::not_null("summary", ValueType::Text),
    ])
}

fn experiments_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("exp_id", ValueType::Int),
        ColumnDef::not_null("name", ValueType::Text),
        ColumnDef::not_null("gold_tree", ValueType::Int),
        // The full ExperimentSpec as JSON — what `rerun` replays.
        ColumnDef::not_null("spec", ValueType::Text),
        ColumnDef::not_null("seed", ValueType::Int),
        ColumnDef::not_null("runs", ValueType::Int),
        ColumnDef::not_null("wall_ms", ValueType::Float),
    ])
}

fn experiment_results_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("result_id", ValueType::Int),
        ColumnDef::not_null("exp_id", ValueType::Int),
        ColumnDef::not_null("method", ValueType::Text),
        ColumnDef::not_null("strategy", ValueType::Text),
        ColumnDef::not_null("strategy_index", ValueType::Int),
        ColumnDef::not_null("replicate", ValueType::Int),
        ColumnDef::not_null("cell_seed", ValueType::Int),
        ColumnDef::not_null("sample_size", ValueType::Int),
        // Handle of the persisted reconstructed tree.
        ColumnDef::not_null("recon_tree", ValueType::Int),
        ColumnDef::not_null("rf_dist", ValueType::Int),
        ColumnDef::not_null("rf_max", ValueType::Int),
        ColumnDef::not_null("rf_shared", ValueType::Int),
        ColumnDef::not_null("rrf_dist", ValueType::Int),
        ColumnDef::not_null("rrf_max", ValueType::Int),
        ColumnDef::not_null("rrf_shared", ValueType::Int),
        ColumnDef::new("triplet", ValueType::Float),
        ColumnDef::not_null("sampling_ms", ValueType::Float),
        ColumnDef::not_null("projection_ms", ValueType::Float),
        ColumnDef::not_null("distances_ms", ValueType::Float),
        ColumnDef::not_null("reconstruction_ms", ValueType::Float),
        ColumnDef::not_null("comparison_ms", ValueType::Float),
        ColumnDef::not_null("persist_ms", ValueType::Float),
    ])
}

fn experiment_clades_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("result_id", ValueType::Int),
        // Stored node id of the clade's root in the reconstructed tree.
        ColumnDef::not_null("node_id", ValueType::Int),
        ColumnDef::not_null("size", ValueType::Int),
        ColumnDef::not_null("agrees", ValueType::Bool),
    ])
}

fn tree_stats_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("tree_id", ValueType::Int),
        // The 16-byte canonical root-clade hash.
        ColumnDef::not_null("root_hash", ValueType::Bytes),
        ColumnDef::not_null("rooted_clades", ValueType::Int),
        ColumnDef::not_null("unrooted_splits", ValueType::Int),
        // Bit 0: distinct named leaves; bit 1: stored cold.
        ColumnDef::not_null("flags", ValueType::Int),
    ])
}

pub(crate) fn decode_tree_stats_row(row: &storage::schema::Row) -> Option<TreeStatsRecord> {
    let flags = row.values[4].as_int().unwrap_or(0);
    Some(TreeStatsRecord {
        handle: TreeHandle(row.values[0].as_int().unwrap_or(0) as u64),
        root_hash: CladeHash::from_slice(row.values[1].as_bytes().unwrap_or(&[]))?,
        rooted_clades: row.values[2].as_int().unwrap_or(0) as u64,
        unrooted_splits: row.values[3].as_int().unwrap_or(0) as u64,
        distinct_leaves: flags & STATS_FLAG_DISTINCT_LEAVES != 0,
        cold: flags & STATS_FLAG_COLD != 0,
    })
}

fn decode_tree_row(row: &storage::schema::Row) -> TreeRecord {
    TreeRecord {
        handle: TreeHandle(row.values[0].as_int().unwrap_or(0) as u64),
        name: row.values[1].as_text().unwrap_or("").to_string(),
        root: StoredNodeId(row.values[2].as_int().unwrap_or(0) as u64),
        node_count: row.values[3].as_int().unwrap_or(0) as u64,
        leaf_count: row.values[4].as_int().unwrap_or(0) as u64,
        frame_depth: row.values[5].as_int().unwrap_or(0) as u64,
    }
}

pub(crate) fn decode_node_row(row: &storage::schema::Row) -> NodeRecord {
    let parent_raw = row.values[2].as_int().unwrap_or(-1);
    let label_bytes = row.values[9].as_bytes().unwrap_or(&[]);
    let local_label: Vec<u32> = label_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    NodeRecord {
        id: StoredNodeId(row.values[0].as_int().unwrap_or(0) as u64),
        tree: TreeHandle(row.values[1].as_int().unwrap_or(0) as u64),
        parent: if parent_raw < 0 {
            None
        } else {
            Some(StoredNodeId(parent_raw as u64))
        },
        name: row.values[3].as_text().map(|s| s.to_string()),
        branch_length: row.values[4].as_float(),
        root_distance: row.values[5].as_float().unwrap_or(0.0),
        depth: row.values[6].as_int().unwrap_or(0) as u64,
        preorder: row.values[7].as_int().unwrap_or(0) as u64,
        frame: StoredFrameId(row.values[8].as_int().unwrap_or(0) as u64),
        local_label,
        is_leaf: row.values[10].as_bool().unwrap_or(false),
        subtree_height: row.values[12].as_float().unwrap_or(0.0),
    }
}

fn decode_frame_row(row: &storage::schema::Row) -> FrameRecord {
    let parent_raw = row.values[3].as_int().unwrap_or(-1);
    let source_raw = row.values[4].as_int().unwrap_or(-1);
    FrameRecord {
        id: StoredFrameId(row.values[0].as_int().unwrap_or(0) as u64),
        tree: TreeHandle(row.values[1].as_int().unwrap_or(0) as u64),
        root_node: StoredNodeId(row.values[2].as_int().unwrap_or(0) as u64),
        parent_frame: if parent_raw < 0 {
            None
        } else {
            Some(StoredFrameId(parent_raw as u64))
        },
        source_node: if source_raw < 0 {
            None
        } else {
            Some(StoredNodeId(source_raw as u64))
        },
        rank: row.values[5].as_int().unwrap_or(0) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::builder::{balanced_binary, caterpillar, figure1_tree};
    use tempfile::tempdir;

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: 2,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, repo)
    }

    #[test]
    fn load_figure1_and_inspect() {
        let (_d, mut repo) = repo();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        let rec = repo.tree_by_name("fig1").unwrap();
        assert_eq!(rec.handle, handle);
        assert_eq!(rec.node_count, 8);
        assert_eq!(rec.leaf_count, 5);
        assert_eq!(rec.frame_depth, 2);

        let lla = repo.require_species_node(handle, "Lla").unwrap();
        let rec = repo.node_record(lla).unwrap();
        assert!(rec.is_leaf);
        assert_eq!(rec.depth, 3);
        assert!((rec.root_distance - 3.0).abs() < 1e-12);
        assert_eq!(rec.name.as_deref(), Some("Lla"));

        let root = repo.tree_by_name("fig1").unwrap().root;
        let root_rec = repo.node_record(root).unwrap();
        assert_eq!(root_rec.parent, None);
        assert_eq!(repo.children(root).unwrap().len(), 3);
        assert_eq!(repo.leaves(handle).unwrap().len(), 5);
    }

    #[test]
    fn duplicate_tree_name_rejected() {
        let (_d, mut repo) = repo();
        let tree = figure1_tree();
        repo.load_tree("fig1", &tree).unwrap();
        assert!(matches!(
            repo.load_tree("fig1", &tree),
            Err(CrimsonError::DuplicateTree(_))
        ));
    }

    #[test]
    fn lca_matches_in_memory_tree() {
        let (_d, mut repo) = repo();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        // Check every pair of leaves against the in-memory reference.
        let names = ["Bha", "Lla", "Spy", "Syn", "Bsu"];
        for a in names {
            for b in names {
                let sa = repo.require_species_node(handle, a).unwrap();
                let sb = repo.require_species_node(handle, b).unwrap();
                let stored_lca = repo.lca(sa, sb).unwrap();
                let mem_lca = tree.lca(
                    tree.find_leaf_by_name(a).unwrap(),
                    tree.find_leaf_by_name(b).unwrap(),
                );
                // Compare via names / depth (stored ids differ from NodeIds).
                let stored_rec = repo.node_record(stored_lca).unwrap();
                assert_eq!(
                    stored_rec.depth as usize,
                    tree.depth(mem_lca),
                    "lca({a},{b})"
                );
                assert!(
                    (stored_rec.root_distance - tree.root_distance(mem_lca)).abs() < 1e-12,
                    "lca({a},{b})"
                );
            }
        }
    }

    #[test]
    fn lca_on_deeper_trees_various_frame_depths() {
        for f in [2usize, 4, 16] {
            let dir = tempdir().unwrap();
            let mut repo = Repository::create(
                dir.path().join("repo.crimson"),
                RepositoryOptions {
                    frame_depth: f,
                    buffer_pool_pages: 512,
                    ..Default::default()
                },
            )
            .unwrap();
            let tree = caterpillar(60, 1.0);
            let handle = repo.load_tree("cat", &tree).unwrap();
            let leaves: Vec<_> = tree.leaf_ids().collect();
            for i in (0..leaves.len()).step_by(7) {
                for j in (0..leaves.len()).step_by(11) {
                    let a = leaves[i];
                    let b = leaves[j];
                    let sa = repo
                        .require_species_node(handle, tree.name(a).unwrap())
                        .unwrap();
                    let sb = repo
                        .require_species_node(handle, tree.name(b).unwrap())
                        .unwrap();
                    let stored = repo.node_record(repo.lca(sa, sb).unwrap()).unwrap();
                    let expected = tree.lca(a, b);
                    assert_eq!(stored.depth as usize, tree.depth(expected), "f={f} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn is_ancestor_via_lca() {
        let (_d, mut repo) = repo();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        let root = repo.tree_by_name("fig1").unwrap().root;
        let lla = repo.require_species_node(handle, "Lla").unwrap();
        let syn = repo.require_species_node(handle, "Syn").unwrap();
        assert!(repo.is_ancestor(root, lla).unwrap());
        assert!(repo.is_ancestor(lla, lla).unwrap());
        assert!(!repo.is_ancestor(lla, root).unwrap());
        assert!(!repo.is_ancestor(syn, lla).unwrap());
    }

    #[test]
    fn species_data_load_and_fetch() {
        let (_d, mut repo) = repo();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        let mut seqs = HashMap::new();
        seqs.insert("Bha".to_string(), "ACGT".to_string());
        seqs.insert("Lla".to_string(), "ACGA".to_string());
        assert_eq!(repo.load_species(handle, &seqs).unwrap(), 2);
        assert_eq!(repo.species_count(handle).unwrap(), 2);
        let got = repo.sequences_for(handle, &["Bha".to_string()]).unwrap();
        assert_eq!(got["Bha"], "ACGT");
        // Missing sequence is an error.
        assert!(matches!(
            repo.sequences_for(handle, &["Syn".to_string()]),
            Err(CrimsonError::MissingSequences(_))
        ));
        // Unknown species rejected on load.
        let mut bad = HashMap::new();
        bad.insert("NotATaxon".to_string(), "AC".to_string());
        assert!(matches!(
            repo.load_species(handle, &bad),
            Err(CrimsonError::UnknownSpecies(_))
        ));
    }

    #[test]
    fn multiple_trees_coexist() {
        let (_d, mut repo) = repo();
        let h1 = repo.load_tree("fig1", &figure1_tree()).unwrap();
        let h2 = repo
            .load_tree("balanced", &balanced_binary(4, 1.0))
            .unwrap();
        assert_ne!(h1, h2);
        assert_eq!(repo.list_trees().unwrap().len(), 2);
        assert_eq!(repo.leaves(h1).unwrap().len(), 5);
        assert_eq!(repo.leaves(h2).unwrap().len(), 16);
        // Name lookups are scoped per tree even though both trees may share
        // leaf names.
        assert!(repo.species_node(h1, "T3").unwrap().is_none());
        assert!(repo.species_node(h2, "T3").unwrap().is_some());
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        let handle;
        {
            let mut repo = Repository::create(
                &path,
                RepositoryOptions {
                    frame_depth: 4,
                    buffer_pool_pages: 128,
                    ..Default::default()
                },
            )
            .unwrap();
            handle = repo.load_tree("fig1", &figure1_tree()).unwrap();
            repo.flush().unwrap();
        }
        let repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        let rec = repo.tree_by_name("fig1").unwrap();
        assert_eq!(rec.handle, handle);
        let lla = repo.require_species_node(handle, "Lla").unwrap();
        let spy = repo.require_species_node(handle, "Spy").unwrap();
        let lca = repo.node_record(repo.lca(lla, spy).unwrap()).unwrap();
        assert_eq!(lca.depth, 2);
    }

    #[test]
    fn unknown_lookups_error() {
        let (_d, repo) = repo();
        assert!(matches!(
            repo.tree_by_name("ghost"),
            Err(CrimsonError::UnknownTree(_))
        ));
        assert!(matches!(
            repo.node_record(StoredNodeId(999)),
            Err(CrimsonError::UnknownNode(_))
        ));
        assert!(matches!(
            repo.tree_record(TreeHandle(42)),
            Err(CrimsonError::UnknownTreeId(42))
        ));
    }

    #[test]
    fn empty_tree_rejected() {
        let (_d, mut repo) = repo();
        assert!(repo.load_tree("empty", &Tree::new()).is_err());
    }
}
