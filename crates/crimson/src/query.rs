//! Structure queries over the stored tree: minimal spanning clade, tree
//! projection and tree pattern match (§2.2 of the paper).
//!
//! All queries run against the disk-resident repository; none of them
//! materialize the full stored tree in memory — only the index entries and
//! rows a query touches are read, which is the paper's central argument for
//! a database-backed design.
//!
//! ## Access paths
//!
//! The engine runs on the persistent **interval index** (see
//! [`labeling::interval`] for the layout): a node's subtree is the
//! contiguous key range `[(tree, pre), (tree, end)]`, so
//!
//! * `minimal_spanning_clade` is one LCA plus **one range scan** — no
//!   breadth-first search, no per-node row fetch;
//! * `project` resolves the consecutive-leaf LCAs the paper's insertion
//!   algorithm needs either from a **single range scan** over the clade
//!   (dense selections: a stack over the pre-ordered entries yields every
//!   pair LCA in one pass) or via per-pair interval walks (sparse
//!   selections), and fetches node rows only for the ~2k nodes that appear
//!   in the output;
//! * `pattern_match` rides on `project`.
//!
//! The pre-index implementations (label walks + BFS) are kept as
//! `*_reference` methods: the property tests cross-validate against them and
//! the benchmark suite uses them as the page-read baseline.
//!
//! Everything here is implemented on the shared [`ReadCtx`] engine, so the
//! same code serves the writer's `Repository` (current view) and concurrent
//! [`crate::reader::RepositoryReader`]s (committed-snapshot view); all of
//! it takes `&self`.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{NodeRecord, ReadCtx, Repository, StoredNodeId, TreeHandle, TREE_SHIFT};
use labeling::interval::{interval_key_prefix, interval_range_end, IntervalEntry};
use phylo::ops;
use phylo::{NodeId, Tree};
use reconstruction::compare::{robinson_foulds, RfResult};
use std::collections::VecDeque;
use std::sync::Arc;
use storage::db::DbRead;

/// When the clade span exceeds `SPARSE_FACTOR * selection size`, projection
/// resolves pair LCAs by per-pair interval walks instead of scanning the
/// whole clade range.
const SPARSE_FACTOR: u64 = 64;

/// Result of a tree pattern match query.
#[derive(Debug, Clone)]
pub struct PatternMatch {
    /// `true` when the projected subtree and the pattern are isomorphic as
    /// leaf-labelled topologies (the paper's exact match).
    pub exact_topology: bool,
    /// `true` when, additionally, branch lengths agree within `1e-6`.
    pub exact_with_lengths: bool,
    /// Robinson–Foulds comparison between the projection and the pattern —
    /// the "measure of similarity" for approximate matches.
    pub rf: RfResult,
    /// The projected subtree the pattern was compared against.
    pub projection: Tree,
}

impl<'a, D: DbRead> ReadCtx<'a, D> {
    // ------------------------------------------------------------------
    // Minimal spanning clade
    // ------------------------------------------------------------------

    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        if nodes.is_empty() {
            return Err(CrimsonError::InvalidSample("empty node set".to_string()));
        }
        let tree = nodes[0].0 >> TREE_SHIFT;
        let mut min: Option<(u32, StoredNodeId)> = None;
        let mut max: Option<(u32, StoredNodeId)> = None;
        for &n in nodes {
            if n.0 >> TREE_SHIFT != tree {
                return Err(CrimsonError::InvalidSample(
                    "spanning clade spans multiple trees".to_string(),
                ));
            }
            let (pre, _) = self.interval_of(n)?;
            if min.is_none_or(|(p, _)| pre < p) {
                min = Some((pre, n));
            }
            if max.is_none_or(|(p, _)| pre > p) {
                max = Some((pre, n));
            }
        }
        let (min, max) = (
            min.expect("nodes is non-empty"),
            max.expect("nodes is non-empty"),
        );
        let lca = self.lca(min.1, max.1)?;
        let (lp, le) = self.interval_of(lca)?;
        let low = interval_key_prefix(tree, lp);
        let high = interval_range_end(tree, le);
        let mut out = Vec::with_capacity((le - lp + 1) as usize);
        let mut malformed = false;
        self.db.raw_scan(
            self.tables.ivl_by_pre,
            Some(&low),
            Some(&high),
            &mut |key, _| match IntervalEntry::decode_key(key) {
                Some((_, entry)) => {
                    out.push(StoredNodeId((tree << TREE_SHIFT) | entry.node as u64));
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed {
            return Err(CrimsonError::CorruptRepository(
                "malformed interval-index key".to_string(),
            ));
        }
        Ok(out)
    }

    pub fn minimal_spanning_clade_reference(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        if nodes.is_empty() {
            return Err(CrimsonError::InvalidSample("empty node set".to_string()));
        }
        let mut lca = nodes[0];
        for &n in &nodes[1..] {
            lca = self.lca_label_walk(lca, n)?;
        }
        let mut out = Vec::new();
        let mut queue = VecDeque::from([lca]);
        while let Some(node) = queue.pop_front() {
            out.push(node);
            for child in self.children(node)? {
                queue.push_back(child);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Tree projection
    // ------------------------------------------------------------------

    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        if leaves.is_empty() {
            return Err(CrimsonError::InvalidSample("empty leaf set".to_string()));
        }
        let tree = handle.0;
        // One interval fetch per input node: validates membership and gives
        // the pre-order rank to sort by.
        let mut sel: Vec<(u32, StoredNodeId)> = Vec::with_capacity(leaves.len());
        for &leaf in leaves {
            if leaf.0 >> TREE_SHIFT != tree {
                return Err(CrimsonError::InvalidSample(format!(
                    "node {leaf} does not belong to tree #{}",
                    handle.0
                )));
            }
            let (pre, _) = self.interval_of(leaf)?;
            sel.push((pre, leaf));
        }
        sel.sort_by_key(|(pre, _)| *pre);
        sel.dedup_by_key(|(pre, _)| *pre);

        if sel.len() == 1 {
            let rec = self.node_record_arc(sel[0].1)?;
            let mut out = Tree::new();
            let only = out.add_node();
            if let Some(name) = &rec.name {
                out.set_name(only, name.clone())?;
            }
            return Ok(out);
        }

        // Consecutive-pair LCAs through the interval index, then row fetches
        // for output nodes only. The dense path's scan also yields every
        // node's heap locator, so each row costs a single page read instead
        // of an index descent.
        let lca_all = self.lca(sel[0].1, sel[sel.len() - 1].1)?;
        let (lp, le) = self.interval_of(lca_all)?;
        let span = (le - lp) as u64 + 1;
        let (records, lca_records) = if span <= SPARSE_FACTOR * sel.len() as u64 {
            let (sel_locs, lca_locs) = self.pair_lcas_by_scan(tree, &sel, lp, le)?;
            let mut records = Vec::with_capacity(sel_locs.len());
            for (sid, rid) in sel_locs {
                records.push(self.node_record_by_locator(sid, rid)?);
            }
            let mut lca_records = Vec::with_capacity(lca_locs.len());
            for (sid, rid) in lca_locs {
                lca_records.push(self.node_record_by_locator(sid, rid)?);
            }
            (records, lca_records)
        } else {
            let mut records = Vec::with_capacity(sel.len());
            for &(_, sid) in &sel {
                records.push(self.node_record_arc(sid)?);
            }
            let mut lca_records = Vec::with_capacity(sel.len() - 1);
            for pair in sel.windows(2) {
                let sid = self.lca(pair[0].1, pair[1].1)?;
                lca_records.push(self.node_record_arc(sid)?);
            }
            (records, lca_records)
        };
        assemble_projection(&records, &lca_records)
    }

    /// For consecutive selected ranks, the selected nodes' and pair-LCAs'
    /// `(stored id, heap locator)` pairs harvested from one pre-order range
    /// scan over the clade `[lo, hi_end]` of `tree`.
    ///
    /// The scan keeps the current root path on a stack (pop everything whose
    /// interval closed before the incoming entry); when the next selected
    /// rank arrives, the LCA with the previous selected rank is the deepest
    /// stack entry whose rank does not exceed it.
    #[allow(clippy::type_complexity)]
    fn pair_lcas_by_scan(
        &self,
        tree: u64,
        sel: &[(u32, StoredNodeId)],
        lo: u32,
        hi_end: u32,
    ) -> CrimsonResult<(
        Vec<(StoredNodeId, storage::RecordId)>,
        Vec<(StoredNodeId, storage::RecordId)>,
    )> {
        let sid_of = |entry: &IntervalEntry| StoredNodeId((tree << TREE_SHIFT) | entry.node as u64);
        let low = interval_key_prefix(tree, lo);
        let high = interval_range_end(tree, hi_end);
        let mut stack: Vec<(IntervalEntry, storage::RecordId)> = Vec::new();
        let mut selected = Vec::with_capacity(sel.len());
        let mut lcas = Vec::with_capacity(sel.len() - 1);
        let mut next_sel = 0usize;
        let mut prev_pre: Option<u32> = None;
        let mut fail: Option<CrimsonError> = None;
        let mut complete = false;
        self.db.raw_scan(
            self.tables.ivl_by_pre,
            Some(&low),
            Some(&high),
            &mut |key, rid_raw| {
                let rid = storage::RecordId::from_u64(rid_raw);
                let Some((_, entry)) = IntervalEntry::decode_key(key) else {
                    fail = Some(CrimsonError::CorruptRepository(
                        "malformed interval-index key".to_string(),
                    ));
                    return Ok(false);
                };
                while stack.last().is_some_and(|(top, _)| top.end < entry.pre) {
                    stack.pop();
                }
                if next_sel < sel.len() && entry.pre == sel[next_sel].0 {
                    if let Some(prev) = prev_pre {
                        // Stack ranks ascend; every stack entry covers the
                        // current rank, so the deepest one with pre <= prev
                        // also covers prev — the pair LCA.
                        let idx = stack.partition_point(|(e, _)| e.pre <= prev);
                        match idx.checked_sub(1).and_then(|i| stack.get(i)) {
                            Some((anc, anc_rid)) => lcas.push((sid_of(anc), *anc_rid)),
                            None => {
                                fail = Some(CrimsonError::CorruptRepository(format!(
                                    "no common ancestor on the scan stack for ranks {prev} and {}",
                                    entry.pre
                                )));
                                return Ok(false);
                            }
                        }
                    }
                    selected.push((sid_of(&entry), rid));
                    prev_pre = Some(entry.pre);
                    next_sel += 1;
                    if next_sel == sel.len() {
                        complete = true;
                        return Ok(false);
                    }
                }
                stack.push((entry, rid));
                Ok(true)
            },
        )?;
        if let Some(e) = fail {
            return Err(e);
        }
        if complete {
            return Ok((selected, lcas));
        }
        Err(CrimsonError::CorruptRepository(format!(
            "interval scan found {next_sel} of {} selected ranks in [{lo}, {hi_end}]",
            sel.len()
        )))
    }

    pub fn project_reference(
        &self,
        handle: TreeHandle,
        leaves: &[StoredNodeId],
    ) -> CrimsonResult<Tree> {
        if leaves.is_empty() {
            return Err(CrimsonError::InvalidSample("empty leaf set".to_string()));
        }
        let mut records = Vec::with_capacity(leaves.len());
        for &leaf in leaves {
            let rec = self.node_record_uncached(leaf)?;
            if rec.tree != handle {
                return Err(CrimsonError::InvalidSample(format!(
                    "node {leaf} does not belong to tree #{}",
                    handle.0
                )));
            }
            records.push(rec);
        }
        records.sort_by_key(|r| r.preorder);
        records.dedup_by_key(|r| r.id);
        let records: Vec<Arc<NodeRecord>> = records.into_iter().map(Arc::new).collect();

        if records.len() == 1 {
            let mut out = Tree::new();
            let only = out.add_node();
            if let Some(name) = &records[0].name {
                out.set_name(only, name.clone())?;
            }
            return Ok(out);
        }
        let mut lca_records = Vec::with_capacity(records.len() - 1);
        for pair in records.windows(2) {
            let lca_id = self.lca_label_walk(pair[0].id, pair[1].id)?;
            lca_records.push(Arc::new(self.node_record_uncached(lca_id)?));
        }
        assemble_projection(&records, &lca_records)
    }

    pub fn project_species(&self, handle: TreeHandle, names: &[&str]) -> CrimsonResult<Tree> {
        let mut leaves = Vec::with_capacity(names.len());
        for name in names {
            leaves.push(self.require_species_node(handle, name)?);
        }
        self.project(handle, &leaves)
    }

    // ------------------------------------------------------------------
    // Tree pattern match
    // ------------------------------------------------------------------

    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        let names: Vec<String> = pattern.leaf_names();
        if names.is_empty() {
            return Err(CrimsonError::InvalidSample(
                "pattern has no named leaves".to_string(),
            ));
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let projection = self.project_species(handle, &refs)?;
        let exact_topology = ops::isomorphic(&projection, pattern);
        let exact_with_lengths = ops::isomorphic_with_lengths(&projection, pattern, 1e-6);
        let rf = if names.len() >= 2 {
            robinson_foulds(&projection, pattern)?
        } else {
            RfResult {
                distance: 0,
                max_distance: 0,
                normalized: 0.0,
                shared: 0,
            }
        };
        Ok(PatternMatch {
            exact_topology,
            exact_with_lengths,
            rf,
            projection,
        })
    }
}

impl Repository {
    /// Minimal spanning clade of a set of nodes: all nodes in the subtree
    /// rooted at their least common ancestor (§2.2), in pre-order.
    ///
    /// Each input node's interval is fetched exactly once; the LCA of the
    /// whole set is the LCA of its minimum- and maximum-rank members; and
    /// the clade itself is **one contiguous range scan** over the interval
    /// index — no per-node row fetch, no breadth-first search.
    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().minimal_spanning_clade(nodes)
    }

    /// Reference implementation of the minimal spanning clade from before
    /// the interval index: fold pairwise label-walk LCAs, then breadth-first
    /// collection through the parent index with one row fetch per node.
    /// Kept for cross-validation and as the page-read baseline.
    pub fn minimal_spanning_clade_reference(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.ctx().minimal_spanning_clade_reference(nodes)
    }

    /// Project the stored tree onto a set of leaf nodes, following the
    /// paper's algorithm: sort the leaves by pre-order, insert them left to
    /// right, and determine each insertion point from the LCA of consecutive
    /// leaves along the rightmost path of the partial tree. Unary nodes
    /// never arise; edge weights are differences of stored cumulative root
    /// distances.
    ///
    /// The consecutive-pair LCAs come from the interval index: a **single
    /// range scan** over `[pre(lca), end(lca)]` with an ancestor stack when
    /// the selection is dense in its clade, or per-pair interval walks when
    /// it is sparse (span > `SPARSE_FACTOR`× the selection size). Node rows
    /// are fetched (through the record cache) only for nodes that appear in
    /// the output — ~2k rows for k selected leaves, independent of tree
    /// size.
    ///
    /// The result is an in-memory [`Tree`] whose leaves carry the stored
    /// species names.
    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        self.ctx().project(handle, leaves)
    }

    /// Reference implementation of projection from before the interval
    /// index: per-pair label-walk LCAs and uncached row fetches. Kept for
    /// cross-validation and as the page-read baseline.
    pub fn project_reference(
        &self,
        handle: TreeHandle,
        leaves: &[StoredNodeId],
    ) -> CrimsonResult<Tree> {
        self.ctx().project_reference(handle, leaves)
    }

    /// Project by species names (§3 "user input" selection).
    pub fn project_species(&self, handle: TreeHandle, names: &[&str]) -> CrimsonResult<Tree> {
        self.ctx().project_species(handle, names)
    }

    /// Tree pattern match (§2.2): project the stored tree onto the pattern's
    /// leaves and compare the projection with the pattern — exactly for an
    /// exact match, by Robinson–Foulds distance for an approximate one.
    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        self.ctx().pattern_match(handle, pattern)
    }
}

/// The paper's left-to-right insertion algorithm, decoupled from how the
/// consecutive-pair LCAs were resolved: `records` are the selected nodes in
/// pre-order and `lca_records[i]` is the LCA of `records[i]` and
/// `records[i + 1]`. Maintains the rightmost path of the partial projection;
/// unary nodes never arise; edge weights are differences of stored
/// cumulative root distances.
pub(crate) fn assemble_projection(
    records: &[Arc<NodeRecord>],
    lca_records: &[Arc<NodeRecord>],
) -> CrimsonResult<Tree> {
    debug_assert_eq!(lca_records.len() + 1, records.len());
    let mut out = Tree::new();
    // Rightmost path of the partial projection: (stored record, new node).
    let mut path: Vec<(Arc<NodeRecord>, NodeId)> = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        if path.is_empty() {
            let node = out.add_node();
            if let Some(name) = &rec.name {
                out.set_name(node, name.clone())?;
            }
            path.push((Arc::clone(rec), node));
            continue;
        }
        // LCA of the new leaf and the current rightmost leaf.
        let lca_rec = &lca_records[i - 1];

        // Pop rightmost-path entries deeper than the LCA.
        let mut last_popped: Option<(Arc<NodeRecord>, NodeId)> = None;
        while path.last().is_some_and(|(r, _)| r.depth > lca_rec.depth) {
            last_popped = path.pop();
        }

        let top_is_lca = path.last().is_some_and(|(r, _)| r.id == lca_rec.id);
        let attach_under = if top_is_lca {
            path.last().expect("checked above").1
        } else {
            // The LCA is a new node on the path: splice it in between the
            // popped child (if any) and the current top.
            let parent_info = path.last().map(|(r, n)| (r.root_distance, *n));
            let lca_node = out.add_node();
            if let Some(name) = &lca_rec.name {
                out.set_name(lca_node, name.clone())?;
            }
            if let Some((child_rec, child_node)) = last_popped {
                out.attach(lca_node, child_node)?;
                out.set_branch_length(child_node, child_rec.root_distance - lca_rec.root_distance)?;
            }
            if let Some((parent_dist, parent_node)) = parent_info {
                out.attach(parent_node, lca_node)?;
                out.set_branch_length(lca_node, lca_rec.root_distance - parent_dist)?;
            }
            path.push((Arc::clone(lca_rec), lca_node));
            lca_node
        };

        let leaf_node = out.add_node();
        if let Some(name) = &rec.name {
            out.set_name(leaf_node, name.clone())?;
        }
        out.attach(attach_under, leaf_node)?;
        let parent_dist = path
            .last()
            .expect("attach target is on the path")
            .0
            .root_distance;
        out.set_branch_length(leaf_node, rec.root_distance - parent_dist)?;
        path.push((Arc::clone(rec), leaf_node));
    }

    // The bottom of the path is the projection root.
    let root_node = path.first().expect("at least one node was inserted").1;
    let mut top = root_node;
    while let Some(p) = out.parent(top) {
        top = p;
    }
    out.set_root(top)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::{balanced_binary, figure1_tree};
    use phylo::ops::{is_unary_free, project_by_names};
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    fn repo_with(tree: &Tree, f: usize) -> (tempfile::TempDir, Repository, TreeHandle) {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: f,
                buffer_pool_pages: 512,
                ..Default::default()
            },
        )
        .unwrap();
        let handle = repo.load_tree("t", tree).unwrap();
        (dir, repo, handle)
    }

    #[test]
    fn figure2_projection_from_repository() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let projection = repo
            .project_species(handle, &["Bha", "Lla", "Syn"])
            .unwrap();
        // Must equal the in-memory projection (the paper's Figure 2).
        let expected = project_by_names(&tree, &["Bha", "Lla", "Syn"]).unwrap();
        assert!(
            ops::isomorphic_with_lengths(&projection, &expected, 1e-9),
            "stored projection:\n{}\nexpected:\n{}",
            phylo::render::ascii(&projection),
            phylo::render::ascii(&expected)
        );
        // Lla's merged edge weight is 1.5 as in the paper.
        let lla = projection.find_leaf_by_name("Lla").unwrap();
        assert!((projection.branch_length(lla).unwrap() - 1.5).abs() < 1e-9);
        assert!(is_unary_free(&projection));
    }

    #[test]
    fn projection_matches_in_memory_on_many_subsets() {
        let tree = balanced_binary(5, 0.5); // 32 leaves
        let (_d, repo, handle) = repo_with(&tree, 3);
        let names = tree.leaf_names();
        for (skip, take) in [(0usize, 2usize), (1, 3), (3, 7), (5, 16), (0, 32)] {
            let subset: Vec<&str> = names
                .iter()
                .skip(skip)
                .step_by(2)
                .take(take)
                .map(|s| s.as_str())
                .collect();
            if subset.len() < 2 {
                continue;
            }
            let stored = repo.project_species(handle, &subset).unwrap();
            let expected = project_by_names(&tree, &subset).unwrap();
            assert!(
                ops::isomorphic_with_lengths(&stored, &expected, 1e-9),
                "subset {subset:?}\nstored:\n{}\nexpected:\n{}",
                phylo::render::ascii(&stored),
                phylo::render::ascii(&expected)
            );
        }
    }

    #[test]
    fn projection_on_simulated_tree_matches() {
        let tree = yule_tree(200, 1.0, 17);
        let (_d, repo, handle) = repo_with(&tree, 8);
        let names = tree.leaf_names();
        let subset: Vec<&str> = names.iter().step_by(9).map(|s| s.as_str()).collect();
        let stored = repo.project_species(handle, &subset).unwrap();
        let expected = project_by_names(&tree, &subset).unwrap();
        assert!(ops::isomorphic_with_lengths(&stored, &expected, 1e-9));
    }

    #[test]
    fn projection_single_leaf_and_errors() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let syn = repo.require_species_node(handle, "Syn").unwrap();
        let p = repo.project(handle, &[syn]).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.name(p.root_unchecked()), Some("Syn"));
        assert!(repo.project(handle, &[]).is_err());
        assert!(repo.project_species(handle, &["Ghost"]).is_err());
    }

    #[test]
    fn projection_rejects_foreign_nodes() {
        let tree = figure1_tree();
        let (_d, mut repo, handle) = {
            let dir = tempdir().unwrap();
            let mut repo = Repository::create(
                dir.path().join("repo.crimson"),
                RepositoryOptions {
                    frame_depth: 2,
                    buffer_pool_pages: 256,
                    ..Default::default()
                },
            )
            .unwrap();
            let handle = repo.load_tree("t", &tree).unwrap();
            (dir, repo, handle)
        };
        let other = repo.load_tree("other", &balanced_binary(3, 1.0)).unwrap();
        let foreign = repo.require_species_node(other, "T0").unwrap();
        assert!(repo.project(handle, &[foreign]).is_err());
    }

    #[test]
    fn minimal_spanning_clade_figure1() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let lla = repo.require_species_node(handle, "Lla").unwrap();
        let spy = repo.require_species_node(handle, "Spy").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, spy]).unwrap();
        // LCA is their parent; the clade is {parent, Lla, Spy}.
        assert_eq!(clade.len(), 3);
        let bha = repo.require_species_node(handle, "Bha").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, bha]).unwrap();
        // LCA is the interior node i1; its subtree has 5 nodes.
        assert_eq!(clade.len(), 5);
        let syn = repo.require_species_node(handle, "Syn").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, syn]).unwrap();
        assert_eq!(
            clade.len(),
            8,
            "spanning clade of distant leaves is the whole tree"
        );
        assert!(repo.minimal_spanning_clade(&[]).is_err());
    }

    #[test]
    fn pattern_match_exact_and_swapped() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        // The Figure 2 pattern matches exactly.
        let pattern = phylo::newick::parse("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);").unwrap();
        let result = repo.pattern_match(handle, &pattern).unwrap();
        assert!(result.exact_topology);
        assert!(result.exact_with_lengths);
        assert_eq!(result.rf.distance, 0);
        // Swapping Bha and Lla (the paper's counter-example) breaks the
        // weighted match.
        let swapped = phylo::newick::parse("((Lla:0.75,Bha:1.5):1.5,Syn:2.5);").unwrap();
        let result = repo.pattern_match(handle, &swapped).unwrap();
        assert!(!result.exact_with_lengths);
        // A topologically different pattern is not even an approximate match:
        // the pattern groups {Bha,Lla} and {Spy,Syn}, while the stored tree
        // groups {Lla,Spy}, so the RF distance is positive.
        let wrong = phylo::newick::parse("((Bha,Lla),(Spy,Syn));").unwrap();
        let result = repo.pattern_match(handle, &wrong).unwrap();
        assert!(!result.exact_topology);
        assert!(result.rf.distance > 0);
        // Three-leaf patterns carry no non-trivial unrooted splits, so RF
        // cannot discriminate them — only the exact check does.
        let wrong3 = phylo::newick::parse("((Bha,Syn),Lla);").unwrap();
        let result = repo.pattern_match(handle, &wrong3).unwrap();
        assert!(!result.exact_topology);
        assert_eq!(result.rf.distance, 0);
    }

    #[test]
    fn pattern_match_unknown_species_errors() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let pattern = phylo::newick::parse("((Bha,Ghost),Syn);").unwrap();
        assert!(repo.pattern_match(handle, &pattern).is_err());
    }
}
