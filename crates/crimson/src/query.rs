//! Structure queries over the stored tree: minimal spanning clade, tree
//! projection and tree pattern match (§2.2 of the paper).
//!
//! All queries run against the disk-resident repository through the node,
//! frame and index access paths; none of them materialize the full stored
//! tree in memory — only the nodes a query touches are fetched, which is the
//! paper's central argument for a database-backed design.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{NodeRecord, Repository, StoredNodeId, TreeHandle};
use phylo::ops;
use phylo::{NodeId, Tree};
use reconstruction::compare::{robinson_foulds, RfResult};
use std::collections::VecDeque;

/// Result of a tree pattern match query.
#[derive(Debug, Clone)]
pub struct PatternMatch {
    /// `true` when the projected subtree and the pattern are isomorphic as
    /// leaf-labelled topologies (the paper's exact match).
    pub exact_topology: bool,
    /// `true` when, additionally, branch lengths agree within `1e-6`.
    pub exact_with_lengths: bool,
    /// Robinson–Foulds comparison between the projection and the pattern —
    /// the "measure of similarity" for approximate matches.
    pub rf: RfResult,
    /// The projected subtree the pattern was compared against.
    pub projection: Tree,
}

impl Repository {
    // ------------------------------------------------------------------
    // Minimal spanning clade
    // ------------------------------------------------------------------

    /// Minimal spanning clade of a set of nodes: all nodes in the subtree
    /// rooted at their least common ancestor (§2.2).
    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        if nodes.is_empty() {
            return Err(CrimsonError::InvalidSample("empty node set".to_string()));
        }
        let mut lca = nodes[0];
        for &n in &nodes[1..] {
            lca = self.lca(lca, n)?;
        }
        // Breadth-first collection of the subtree below the LCA via the
        // parent index.
        let mut out = Vec::new();
        let mut queue = VecDeque::from([lca]);
        while let Some(node) = queue.pop_front() {
            out.push(node);
            for child in self.children(node)? {
                queue.push_back(child);
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Tree projection
    // ------------------------------------------------------------------

    /// Project the stored tree onto a set of leaf nodes, following the
    /// paper's algorithm: sort the leaves by pre-order, insert them left to
    /// right, and determine each insertion point by checking
    /// ancestor/descendant relationships (LCA queries) along the rightmost
    /// path of the partial tree. Unary nodes never arise; edge weights are
    /// differences of stored cumulative root distances.
    ///
    /// The result is an in-memory [`Tree`] whose leaves carry the stored
    /// species names.
    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        if leaves.is_empty() {
            return Err(CrimsonError::InvalidSample("empty leaf set".to_string()));
        }
        // Fetch and order the leaf records by pre-order rank.
        let mut records = Vec::with_capacity(leaves.len());
        for &leaf in leaves {
            let rec = self.node_record(leaf)?;
            if rec.tree != handle {
                return Err(CrimsonError::InvalidSample(format!(
                    "node {leaf} does not belong to tree #{}",
                    handle.0
                )));
            }
            records.push(rec);
        }
        records.sort_by_key(|r| r.preorder);
        records.dedup_by_key(|r| r.id);

        let mut out = Tree::new();
        if records.len() == 1 {
            let only = out.add_node();
            if let Some(name) = &records[0].name {
                out.set_name(only, name.clone())?;
            }
            return Ok(out);
        }

        // Rightmost path of the partial projection: (stored record, new node).
        let mut path: Vec<(NodeRecord, NodeId)> = Vec::new();
        for rec in records {
            if path.is_empty() {
                let node = out.add_node();
                if let Some(name) = &rec.name {
                    out.set_name(node, name.clone())?;
                }
                path.push((rec, node));
                continue;
            }
            // LCA of the new leaf and the current rightmost leaf.
            let rightmost = path.last().expect("path is non-empty").0.id;
            let lca_id = self.lca(rightmost, rec.id)?;
            let lca_rec = self.node_record(lca_id)?;

            // Pop rightmost-path entries deeper than the LCA.
            let mut last_popped: Option<(NodeRecord, NodeId)> = None;
            while path.last().map_or(false, |(r, _)| r.depth > lca_rec.depth) {
                last_popped = path.pop();
            }

            let top_is_lca = path.last().map_or(false, |(r, _)| r.id == lca_rec.id);
            let attach_under = if top_is_lca {
                path.last().expect("checked above").1
            } else {
                // The LCA is a new node on the path: splice it in between the
                // popped child (if any) and the current top.
                let parent_info = path.last().map(|(r, n)| (r.root_distance, *n));
                let lca_node = out.add_node();
                if let Some(name) = &lca_rec.name {
                    out.set_name(lca_node, name.clone())?;
                }
                if let Some((child_rec, child_node)) = last_popped {
                    out.attach(lca_node, child_node)?;
                    out.set_branch_length(
                        child_node,
                        child_rec.root_distance - lca_rec.root_distance,
                    )?;
                }
                if let Some((parent_dist, parent_node)) = parent_info {
                    out.attach(parent_node, lca_node)?;
                    out.set_branch_length(lca_node, lca_rec.root_distance - parent_dist)?;
                }
                path.push((lca_rec.clone(), lca_node));
                lca_node
            };

            let leaf_node = out.add_node();
            if let Some(name) = &rec.name {
                out.set_name(leaf_node, name.clone())?;
            }
            out.attach(attach_under, leaf_node)?;
            let parent_dist = path.last().expect("attach target is on the path").0.root_distance;
            out.set_branch_length(leaf_node, rec.root_distance - parent_dist)?;
            path.push((rec, leaf_node));
        }

        // The bottom of the path is the projection root.
        let root_node = path.first().expect("at least one node was inserted").1;
        let mut top = root_node;
        while let Some(p) = out.parent(top) {
            top = p;
        }
        out.set_root(top)?;
        Ok(out)
    }

    /// Project by species names (§3 "user input" selection).
    pub fn project_species(&self, handle: TreeHandle, names: &[&str]) -> CrimsonResult<Tree> {
        let mut leaves = Vec::with_capacity(names.len());
        for name in names {
            leaves.push(self.require_species_node(handle, name)?);
        }
        self.project(handle, &leaves)
    }

    // ------------------------------------------------------------------
    // Tree pattern match
    // ------------------------------------------------------------------

    /// Tree pattern match (§2.2): project the stored tree onto the pattern's
    /// leaves and compare the projection with the pattern — exactly for an
    /// exact match, by Robinson–Foulds distance for an approximate one.
    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        let names: Vec<String> = pattern.leaf_names();
        if names.is_empty() {
            return Err(CrimsonError::InvalidSample("pattern has no named leaves".to_string()));
        }
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let projection = self.project_species(handle, &refs)?;
        let exact_topology = ops::isomorphic(&projection, pattern);
        let exact_with_lengths = ops::isomorphic_with_lengths(&projection, pattern, 1e-6);
        let rf = if names.len() >= 2 {
            robinson_foulds(&projection, pattern)?
        } else {
            RfResult { distance: 0, max_distance: 0, normalized: 0.0, shared: 0 }
        };
        Ok(PatternMatch { exact_topology, exact_with_lengths, rf, projection })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::{balanced_binary, figure1_tree};
    use phylo::ops::{is_unary_free, project_by_names};
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    fn repo_with(tree: &Tree, f: usize) -> (tempfile::TempDir, Repository, TreeHandle) {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions { frame_depth: f, buffer_pool_pages: 512 },
        )
        .unwrap();
        let handle = repo.load_tree("t", tree).unwrap();
        (dir, repo, handle)
    }

    #[test]
    fn figure2_projection_from_repository() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let projection = repo.project_species(handle, &["Bha", "Lla", "Syn"]).unwrap();
        // Must equal the in-memory projection (the paper's Figure 2).
        let expected = project_by_names(&tree, &["Bha", "Lla", "Syn"]).unwrap();
        assert!(ops::isomorphic_with_lengths(&projection, &expected, 1e-9),
            "stored projection:\n{}\nexpected:\n{}",
            phylo::render::ascii(&projection),
            phylo::render::ascii(&expected));
        // Lla's merged edge weight is 1.5 as in the paper.
        let lla = projection.find_leaf_by_name("Lla").unwrap();
        assert!((projection.branch_length(lla).unwrap() - 1.5).abs() < 1e-9);
        assert!(is_unary_free(&projection));
    }

    #[test]
    fn projection_matches_in_memory_on_many_subsets() {
        let tree = balanced_binary(5, 0.5); // 32 leaves
        let (_d, repo, handle) = repo_with(&tree, 3);
        let names = tree.leaf_names();
        for (skip, take) in [(0usize, 2usize), (1, 3), (3, 7), (5, 16), (0, 32)] {
            let subset: Vec<&str> =
                names.iter().skip(skip).step_by(2).take(take).map(|s| s.as_str()).collect();
            if subset.len() < 2 {
                continue;
            }
            let stored = repo.project_species(handle, &subset).unwrap();
            let expected = project_by_names(&tree, &subset).unwrap();
            assert!(
                ops::isomorphic_with_lengths(&stored, &expected, 1e-9),
                "subset {subset:?}\nstored:\n{}\nexpected:\n{}",
                phylo::render::ascii(&stored),
                phylo::render::ascii(&expected)
            );
        }
    }

    #[test]
    fn projection_on_simulated_tree_matches() {
        let tree = yule_tree(200, 1.0, 17);
        let (_d, repo, handle) = repo_with(&tree, 8);
        let names = tree.leaf_names();
        let subset: Vec<&str> = names.iter().step_by(9).map(|s| s.as_str()).collect();
        let stored = repo.project_species(handle, &subset).unwrap();
        let expected = project_by_names(&tree, &subset).unwrap();
        assert!(ops::isomorphic_with_lengths(&stored, &expected, 1e-9));
    }

    #[test]
    fn projection_single_leaf_and_errors() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let syn = repo.require_species_node(handle, "Syn").unwrap();
        let p = repo.project(handle, &[syn]).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.name(p.root_unchecked()), Some("Syn"));
        assert!(repo.project(handle, &[]).is_err());
        assert!(repo.project_species(handle, &["Ghost"]).is_err());
    }

    #[test]
    fn projection_rejects_foreign_nodes() {
        let tree = figure1_tree();
        let (_d, mut repo, handle) = {
            let dir = tempdir().unwrap();
            let mut repo = Repository::create(
                dir.path().join("repo.crimson"),
                RepositoryOptions { frame_depth: 2, buffer_pool_pages: 256 },
            )
            .unwrap();
            let handle = repo.load_tree("t", &tree).unwrap();
            (dir, repo, handle)
        };
        let other = repo.load_tree("other", &balanced_binary(3, 1.0)).unwrap();
        let foreign = repo.require_species_node(other, "T0").unwrap();
        assert!(repo.project(handle, &[foreign]).is_err());
    }

    #[test]
    fn minimal_spanning_clade_figure1() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let lla = repo.require_species_node(handle, "Lla").unwrap();
        let spy = repo.require_species_node(handle, "Spy").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, spy]).unwrap();
        // LCA is their parent; the clade is {parent, Lla, Spy}.
        assert_eq!(clade.len(), 3);
        let bha = repo.require_species_node(handle, "Bha").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, bha]).unwrap();
        // LCA is the interior node i1; its subtree has 5 nodes.
        assert_eq!(clade.len(), 5);
        let syn = repo.require_species_node(handle, "Syn").unwrap();
        let clade = repo.minimal_spanning_clade(&[lla, syn]).unwrap();
        assert_eq!(clade.len(), 8, "spanning clade of distant leaves is the whole tree");
        assert!(repo.minimal_spanning_clade(&[]).is_err());
    }

    #[test]
    fn pattern_match_exact_and_swapped() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        // The Figure 2 pattern matches exactly.
        let pattern = phylo::newick::parse("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);").unwrap();
        let result = repo.pattern_match(handle, &pattern).unwrap();
        assert!(result.exact_topology);
        assert!(result.exact_with_lengths);
        assert_eq!(result.rf.distance, 0);
        // Swapping Bha and Lla (the paper's counter-example) breaks the
        // weighted match.
        let swapped = phylo::newick::parse("((Lla:0.75,Bha:1.5):1.5,Syn:2.5);").unwrap();
        let result = repo.pattern_match(handle, &swapped).unwrap();
        assert!(!result.exact_with_lengths);
        // A topologically different pattern is not even an approximate match:
        // the pattern groups {Bha,Lla} and {Spy,Syn}, while the stored tree
        // groups {Lla,Spy}, so the RF distance is positive.
        let wrong = phylo::newick::parse("((Bha,Lla),(Spy,Syn));").unwrap();
        let result = repo.pattern_match(handle, &wrong).unwrap();
        assert!(!result.exact_topology);
        assert!(result.rf.distance > 0);
        // Three-leaf patterns carry no non-trivial unrooted splits, so RF
        // cannot discriminate them — only the exact check does.
        let wrong3 = phylo::newick::parse("((Bha,Syn),Lla);").unwrap();
        let result = repo.pattern_match(handle, &wrong3).unwrap();
        assert!(!result.exact_topology);
        assert_eq!(result.rf.distance, 0);
    }

    #[test]
    fn pattern_match_unknown_species_errors() {
        let tree = figure1_tree();
        let (_d, repo, handle) = repo_with(&tree, 2);
        let pattern = phylo::newick::parse("((Bha,Ghost),Syn);").unwrap();
        assert!(repo.pattern_match(handle, &pattern).is_err());
    }
}
