//! The Query Repository: a persistent history of executed queries.
//!
//! "The system also records a history of user input queries in the Query
//! Repository. Used in conjunction with the Crimson GUI, the Query Repository
//! makes it convenient for users to recall and rerun historical queries"
//! (§2.1). Each entry stores the query kind, a JSON parameter payload and a
//! short human-readable result summary.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{ReadCtx, Repository};
use serde::{Deserialize, Serialize};
use storage::db::DbRead;
use storage::value::Value;

/// The kind of query an entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// A data-loading operation.
    Load,
    /// A species sampling query.
    Sampling,
    /// A tree projection query.
    Projection,
    /// A least-common-ancestor query.
    Lca,
    /// A minimal spanning clade query.
    SpanningClade,
    /// A tree pattern match.
    PatternMatch,
    /// A single transient benchmark run.
    Benchmark,
    /// A persisted experiment sweep (methods × samplings × replicates).
    Experiment,
}

impl QueryKind {
    /// The stable on-disk name of this kind; inverse of [`QueryKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Load => "load",
            QueryKind::Sampling => "sampling",
            QueryKind::Projection => "projection",
            QueryKind::Lca => "lca",
            QueryKind::SpanningClade => "spanning_clade",
            QueryKind::PatternMatch => "pattern_match",
            QueryKind::Benchmark => "benchmark",
            QueryKind::Experiment => "experiment",
        }
    }

    /// Parse a stable on-disk name back into a kind; inverse of
    /// [`QueryKind::name`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "load" => QueryKind::Load,
            "sampling" => QueryKind::Sampling,
            "projection" => QueryKind::Projection,
            "lca" => QueryKind::Lca,
            "spanning_clade" => QueryKind::SpanningClade,
            "pattern_match" => QueryKind::PatternMatch,
            "benchmark" => QueryKind::Benchmark,
            "experiment" => QueryKind::Experiment,
            _ => return None,
        })
    }
}

/// One recorded query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Monotonically increasing id (execution order).
    pub id: u64,
    /// What kind of query this was.
    pub kind: QueryKind,
    /// JSON-encoded parameters, suitable for re-running the query.
    pub params: serde_json::Value,
    /// Short human-readable outcome ("sampled 16 species", "RF = 4", …).
    pub summary: String,
}

impl<'a, D: DbRead> ReadCtx<'a, D> {
    /// All recorded queries in execution order.
    pub fn query_history(&self) -> CrimsonResult<Vec<HistoryEntry>> {
        let mut rows = self.db.scan(self.tables.history)?;
        rows.sort_by_key(|(_, row)| row.values[0].as_int().unwrap_or(0));
        rows.iter()
            .map(|(_, row)| {
                let id = row.values[0].as_int().unwrap_or(0) as u64;
                let kind = QueryKind::parse(row.values[1].as_text().unwrap_or(""))
                    .ok_or_else(|| CrimsonError::History("unknown query kind".to_string()))?;
                let params: serde_json::Value =
                    serde_json::from_str(row.values[2].as_text().unwrap_or("null"))
                        .map_err(|e| CrimsonError::History(e.to_string()))?;
                let summary = row.values[3].as_text().unwrap_or("").to_string();
                Ok(HistoryEntry {
                    id,
                    kind,
                    params,
                    summary,
                })
            })
            .collect()
    }

    /// Fetch one history entry by id.
    pub fn history_entry(&self, id: u64) -> CrimsonResult<HistoryEntry> {
        self.query_history()?
            .into_iter()
            .find(|e| e.id == id)
            .ok_or_else(|| CrimsonError::History(format!("no history entry {id}")))
    }

    /// Entries of a given kind, in execution order.
    pub fn history_of_kind(&self, kind: QueryKind) -> CrimsonResult<Vec<HistoryEntry>> {
        Ok(self
            .query_history()?
            .into_iter()
            .filter(|e| e.kind == kind)
            .collect())
    }
}

impl Repository {
    /// Record a query in the history. Returns the new entry's id. The write
    /// is atomic: it joins the enclosing transaction (loads record their
    /// history entry in the same transaction as the data) or auto-commits
    /// on its own. The id counter only advances on success, so a failed or
    /// rolled-back write does not burn an id.
    pub fn record_query(
        &mut self,
        kind: QueryKind,
        params: serde_json::Value,
        summary: &str,
    ) -> CrimsonResult<u64> {
        let id = self.next_history_id;
        let params_text =
            serde_json::to_string(&params).map_err(|e| CrimsonError::History(e.to_string()))?;
        self.db.insert(
            self.tables.history,
            &[
                Value::Int(id as i64),
                Value::text(kind.name()),
                Value::text(params_text),
                Value::text(summary),
            ],
        )?;
        self.next_history_id = id + 1;
        Ok(id)
    }

    /// All recorded queries in execution order.
    pub fn query_history(&self) -> CrimsonResult<Vec<HistoryEntry>> {
        self.ctx().query_history()
    }

    /// Fetch one history entry by id.
    pub fn history_entry(&self, id: u64) -> CrimsonResult<HistoryEntry> {
        self.ctx().history_entry(id)
    }

    /// Entries of a given kind, in execution order.
    pub fn history_of_kind(&self, kind: QueryKind) -> CrimsonResult<Vec<HistoryEntry>> {
        self.ctx().history_of_kind(kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use serde_json::json;
    use tempfile::tempdir;

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions::default(),
        )
        .unwrap();
        (dir, repo)
    }

    #[test]
    fn record_and_list() {
        let (_d, mut repo) = repo();
        let id0 = repo
            .record_query(
                QueryKind::Sampling,
                json!({"k": 16, "seed": 1}),
                "sampled 16 species",
            )
            .unwrap();
        let id1 = repo
            .record_query(
                QueryKind::Projection,
                json!({"leaves": 16}),
                "projected 31 nodes",
            )
            .unwrap();
        assert_eq!(id0, 0);
        assert_eq!(id1, 1);
        let all = repo.query_history().unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].kind, QueryKind::Sampling);
        assert_eq!(all[0].params["k"], 16);
        assert_eq!(all[1].summary, "projected 31 nodes");
    }

    #[test]
    fn fetch_by_id_and_kind() {
        let (_d, mut repo) = repo();
        repo.record_query(QueryKind::Lca, json!({"a": 1, "b": 2}), "lca = 0")
            .unwrap();
        repo.record_query(QueryKind::Lca, json!({"a": 3, "b": 4}), "lca = 1")
            .unwrap();
        repo.record_query(QueryKind::Benchmark, json!({"method": "nj"}), "rf = 2")
            .unwrap();
        let entry = repo.history_entry(1).unwrap();
        assert_eq!(entry.params["a"], 3);
        assert_eq!(repo.history_of_kind(QueryKind::Lca).unwrap().len(), 2);
        assert_eq!(repo.history_of_kind(QueryKind::Benchmark).unwrap().len(), 1);
        assert!(repo.history_entry(99).is_err());
    }

    const ALL_KINDS: [QueryKind; 8] = [
        QueryKind::Load,
        QueryKind::Sampling,
        QueryKind::Projection,
        QueryKind::Lca,
        QueryKind::SpanningClade,
        QueryKind::PatternMatch,
        QueryKind::Benchmark,
        QueryKind::Experiment,
    ];

    #[test]
    fn every_kind_name_parse_round_trips() {
        for kind in ALL_KINDS {
            assert_eq!(
                QueryKind::parse(kind.name()),
                Some(kind),
                "kind {kind:?} must round-trip through its on-disk name"
            );
        }
        assert_eq!(QueryKind::parse("no_such_kind"), None);
        assert_eq!(QueryKind::parse(""), None);
    }

    #[test]
    fn every_kind_roundtrips_record_list_fetch() {
        let (_d, mut repo) = repo();
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            let id = repo
                .record_query(
                    *kind,
                    json!({"kind_index": i, "nested": json!({"a": json!([1, 2, 3])})}),
                    &format!("summary #{i}"),
                )
                .unwrap();
            assert_eq!(id, i as u64);
        }
        // list: all entries in execution order with their kinds intact.
        let all = repo.query_history().unwrap();
        assert_eq!(all.len(), ALL_KINDS.len());
        for (i, entry) in all.iter().enumerate() {
            assert_eq!(entry.kind, ALL_KINDS[i]);
            assert_eq!(entry.id, i as u64);
        }
        // fetch-params: each entry's JSON payload survives the round-trip.
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            let entry = repo.history_entry(i as u64).unwrap();
            assert_eq!(entry.kind, *kind);
            assert_eq!(entry.params["kind_index"], i);
            assert_eq!(entry.params["nested"]["a"][2], 3);
            assert_eq!(entry.summary, format!("summary #{i}"));
            assert_eq!(repo.history_of_kind(*kind).unwrap().len(), 1);
        }
    }

    #[test]
    fn every_kind_survives_flush_and_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        {
            let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
            for (i, kind) in ALL_KINDS.iter().enumerate() {
                repo.record_query(*kind, json!({"i": i}), &format!("s{i}"))
                    .unwrap();
            }
            repo.flush().unwrap();
        }
        let repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        let all = repo.query_history().unwrap();
        assert_eq!(all.len(), ALL_KINDS.len());
        for (i, entry) in all.iter().enumerate() {
            assert_eq!(entry.kind, ALL_KINDS[i]);
            assert_eq!(entry.params["i"], i);
        }
    }

    #[test]
    fn every_kind_survives_crash_recovery() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        {
            let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
            for (i, kind) in ALL_KINDS.iter().enumerate() {
                repo.record_query(*kind, json!({"i": i}), &format!("s{i}"))
                    .unwrap();
            }
            // Crash: drop without flush — the dirty pages are lost and the
            // entries must come back through WAL replay.
        }
        let repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        let report = repo
            .recovery_report()
            .expect("reopen after crash reports recovery");
        assert!(
            report.committed_txns > 0,
            "history transactions must replay: {report:?}"
        );
        let all = repo.query_history().unwrap();
        assert_eq!(all.len(), ALL_KINDS.len());
        for (i, kind) in ALL_KINDS.iter().enumerate() {
            assert_eq!(all[i].kind, *kind);
        }
    }

    #[test]
    fn history_survives_reopen() {
        let dir = tempdir().unwrap();
        let path = dir.path().join("repo.crimson");
        {
            let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
            repo.record_query(
                QueryKind::Load,
                json!({"tree": "gold"}),
                "loaded 1000 nodes",
            )
            .unwrap();
            repo.flush().unwrap();
        }
        let mut repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
        let all = repo.query_history().unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].kind, QueryKind::Load);
        // New ids continue after the persisted ones.
        let id = repo
            .record_query(QueryKind::Sampling, json!({}), "sampled")
            .unwrap();
        assert_eq!(id, 1);
    }
}
