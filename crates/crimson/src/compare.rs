//! Index-native tree comparison: Robinson–Foulds and triplet distances
//! computed straight off the persistent interval index.
//!
//! The evaluation pipeline's workhorse is "how far is this tree from that
//! one". Before this module, answering it for *stored* trees meant
//! materializing both as in-memory [`Tree`]s (a full projection each) and
//! running the bitset comparison — everything PR 1's interval index avoids,
//! paid right back. Here a stored tree is exposed as a
//! [`reconstruction::compare::CladeSource`]: one contiguous range scan over
//! `ivl_by_pre` yields every node's `(pre, end)` clade interval in
//! pre-order, which is exactly the stream the Day-style streaming comparison
//! consumes. Internal structure never decodes a node row; only **leaf** rows
//! are fetched (through their heap locators, via the record cache), because
//! leaf names are the only cross-tree identity.
//!
//! Everything is implemented on [`ReadCtx`], so the same code serves the
//! writer's [`Repository`] and concurrent snapshot
//! [`crate::reader::RepositoryReader`]s.

use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{ReadCtx, Repository, StoredNodeId, TreeHandle, TREE_SHIFT};
use labeling::interval::{interval_key_prefix, interval_range_end, IntervalEntry};
use phylo::Tree;
use reconstruction::compare::{compare_sources, CladeSource, NodeVisitor, SourceComparison};
use storage::db::DbRead;

/// A stored tree's topology, streamed off the `ivl_by_pre` covering index.
///
/// Obtained from [`Repository::clade_source`] (or the reader equivalent) and
/// consumed by [`reconstruction::compare::compare_sources`]; the structural
/// part of the stream is one range scan, and only leaf rows are decoded for
/// their names.
pub struct StoredCladeSource<'a, D: DbRead> {
    ctx: ReadCtx<'a, D>,
    handle: TreeHandle,
    nodes: u64,
}

impl<D: DbRead> CladeSource for StoredCladeSource<'_, D> {
    type Error = CrimsonError;

    fn node_count_hint(&self) -> usize {
        self.nodes as usize
    }

    fn for_each_node(&self, visit: &mut NodeVisitor<'_>) -> CrimsonResult<()> {
        let tree = self.handle.0;
        let low = interval_key_prefix(tree, 0);
        let high = interval_range_end(tree, (self.nodes.saturating_sub(1)) as u32);
        let mut entries: Vec<(IntervalEntry, storage::RecordId)> =
            Vec::with_capacity(self.nodes as usize);
        let mut malformed = false;
        self.ctx.db.raw_scan(
            self.ctx.tables.ivl_by_pre,
            Some(&low),
            Some(&high),
            &mut |key, rid| match IntervalEntry::decode_key(key) {
                Some((_, entry)) => {
                    entries.push((entry, storage::RecordId::from_u64(rid)));
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed {
            return Err(CrimsonError::CorruptRepository(
                "malformed interval-index key".to_string(),
            ));
        }
        if entries.len() as u64 != self.nodes {
            return Err(CrimsonError::CorruptRepository(format!(
                "tree #{tree} catalogs {} nodes but its interval range holds {}",
                self.nodes,
                entries.len()
            )));
        }
        // Leaf names through the heap locators the index carries — one page
        // read per cold leaf row, no B+tree descent, nothing for internal
        // nodes.
        let mut names: Vec<Option<String>> = Vec::with_capacity(entries.len());
        for (entry, rid) in &entries {
            if entry.is_leaf {
                let sid = StoredNodeId((tree << TREE_SHIFT) | entry.node as u64);
                let rec = self.ctx.node_record_by_locator(sid, *rid)?;
                names.push(rec.name.clone());
            } else {
                names.push(None);
            }
        }
        for ((entry, _), name) in entries.iter().zip(&names) {
            visit(entry.pre, entry.end, entry.node, name.as_deref());
        }
        Ok(())
    }
}

impl<'a, D: DbRead> ReadCtx<'a, D> {
    /// The stored tree as a streaming clade source.
    pub fn clade_source(&self, handle: TreeHandle) -> CrimsonResult<StoredCladeSource<'a, D>> {
        let rec = self.tree_record(handle)?;
        Ok(StoredCladeSource {
            ctx: *self,
            handle,
            nodes: rec.node_count,
        })
    }

    /// Compare two stored trees without materializing either.
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        let sa = self.clade_source(a)?;
        let sb = self.clade_source(b)?;
        compare_sources::<_, _, CrimsonError>(&sa, &sb, triplets)
    }

    /// Compare a stored tree against an in-memory one (the stored tree is
    /// the reference side; per-clade agreement describes the in-memory
    /// tree's nodes).
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        let sa = self.clade_source(a)?;
        compare_sources::<_, _, CrimsonError>(&sa, b, triplets)
    }
}

impl Repository {
    /// Robinson–Foulds (rooted and unrooted), per-clade agreement and —
    /// when `triplets` is set — triplet distance between two stored trees,
    /// computed inside the interval index: one range scan per tree, leaf
    /// rows only, no tree materialization.
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        self.ctx().compare_stored(a, b, triplets)
    }

    /// Compare a stored tree (reference side) against an in-memory tree.
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        self.ctx().compare_stored_with_tree(a, b, triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::{balanced_binary, figure1_tree};
    use reconstruction::compare::{robinson_foulds, rooted_robinson_foulds, triplet_distance};
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("cmp.crimson"),
            RepositoryOptions {
                frame_depth: 8,
                buffer_pool_pages: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, repo)
    }

    #[test]
    fn stored_comparison_matches_materialized_comparison() {
        let (_d, mut repo) = repo();
        let a = yule_tree(60, 1.0, 3);
        let b = yule_tree(60, 1.0, 4); // same leaf-name set, other topology
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();

        let cmp = repo.compare_stored(ha, hb, true).unwrap();
        assert_eq!(cmp.rf, robinson_foulds(&a, &b).unwrap());
        assert_eq!(cmp.rooted_rf, rooted_robinson_foulds(&a, &b).unwrap());
        let t = triplet_distance(&a, &b).unwrap();
        assert!((cmp.triplet.unwrap() - t).abs() < 1e-15);

        // Stored vs in-memory agrees too, in both pairings.
        let with_tree = repo.compare_stored_with_tree(ha, &b, true).unwrap();
        assert_eq!(with_tree.rf, cmp.rf);
        assert_eq!(with_tree.rooted_rf, cmp.rooted_rf);
        assert!((with_tree.triplet.unwrap() - t).abs() < 1e-15);
    }

    #[test]
    fn identical_stored_trees_have_zero_distance() {
        let (_d, mut repo) = repo();
        let tree = balanced_binary(5, 1.0);
        let ha = repo.load_tree("a", &tree).unwrap();
        // Same topology under a different name: ids differ, structure equal.
        let hb = repo.load_tree("b", &tree).unwrap();
        let cmp = repo.compare_stored(ha, hb, false).unwrap();
        assert_eq!(cmp.rf.distance, 0);
        assert_eq!(cmp.rooted_rf.distance, 0);
        assert!(cmp.clades.iter().all(|c| c.agrees));
    }

    #[test]
    fn stored_comparison_from_snapshot_reader() {
        let (_d, mut repo) = repo();
        let a = yule_tree(40, 1.0, 7);
        let b = yule_tree(40, 1.0, 8);
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();
        let reader = repo.reader().unwrap();
        let via_reader = reader.compare_stored(ha, hb, false).unwrap();
        let via_writer = repo.compare_stored(ha, hb, false).unwrap();
        assert_eq!(via_reader.rf, via_writer.rf);
        assert_eq!(via_reader.rooted_rf, via_writer.rooted_rf);
    }

    #[test]
    fn stored_comparison_errors() {
        let (_d, mut repo) = repo();
        let ha = repo.load_tree("fig", &figure1_tree()).unwrap();
        // Unknown handle.
        assert!(repo.compare_stored(ha, TreeHandle(99), false).is_err());
        // Different leaf sets.
        let other = repo.load_tree("bal", &balanced_binary(3, 1.0)).unwrap();
        assert!(matches!(
            repo.compare_stored(ha, other, false),
            Err(CrimsonError::Compare(_))
        ));
    }
}
