//! Index-native tree comparison: Robinson–Foulds and triplet distances
//! computed straight off the persistent interval index.
//!
//! The evaluation pipeline's workhorse is "how far is this tree from that
//! one". Before this module, answering it for *stored* trees meant
//! materializing both as in-memory [`Tree`]s (a full projection each) and
//! running the bitset comparison — everything PR 1's interval index avoids,
//! paid right back. Here a stored tree is exposed as a
//! [`reconstruction::compare::CladeSource`]: one contiguous range scan over
//! `ivl_by_pre` yields every node's `(pre, end)` clade interval in
//! pre-order, which is exactly the stream the Day-style streaming comparison
//! consumes. Internal structure never decodes a node row; only **leaf** rows
//! are fetched (through their heap locators, via the record cache), because
//! leaf names are the only cross-tree identity.
//!
//! Everything is implemented on [`ReadCtx`], so the same code serves the
//! writer's [`Repository`] and concurrent snapshot
//! [`crate::reader::RepositoryReader`]s.

use crate::content::TreeContent;
use crate::error::{CrimsonError, CrimsonResult};
use crate::repository::{
    ReadCtx, Repository, StoredNodeId, TreeHandle, TreeStatsRecord, TREE_SHIFT,
};
use labeling::clade_hash::CladeRef;
use labeling::interval::{interval_key_prefix, interval_range_end, IntervalEntry};
use phylo::traverse::Traverse;
use phylo::Tree;
use reconstruction::compare::{
    compare_sources, CladeAgreement, CladeSource, NodeVisitor, RfResult, SourceComparison,
};
use storage::db::DbRead;

/// The [`RfResult`] of comparing a tree against an identical copy: zero
/// distance, every one of the `shared` non-trivial clades/splits present on
/// both sides — exactly what the streaming pass computes, without streaming.
fn rf_identical(shared: u64) -> RfResult {
    RfResult {
        distance: 0,
        max_distance: 2 * shared as usize,
        normalized: 0.0,
        shared: shared as usize,
    }
}

/// Assemble the [`SourceComparison`] of two content-identical trees from one
/// side's clade counts.
fn identical_comparison(
    rooted_clades: u64,
    unrooted_splits: u64,
    clades: Vec<CladeAgreement>,
    triplets: bool,
) -> SourceComparison {
    SourceComparison {
        rf: rf_identical(unrooted_splits),
        rooted_rf: rf_identical(rooted_clades),
        triplet: triplets.then_some(0.0),
        clades,
    }
}

/// The agreement rows of an in-memory tree compared against an identical
/// copy (arena node ids, as [`Tree`]'s own clade stream exposes them).
fn tree_agreement(tree: &Tree, n_leaves: u32) -> Vec<CladeAgreement> {
    let n = tree.node_count();
    let mut sizes = vec![0u32; n];
    for v in tree.postorder() {
        if tree.is_leaf(v) {
            sizes[v.index()] = 1;
        }
        if let Some(p) = tree.parent(v) {
            sizes[p.index()] += sizes[v.index()];
        }
    }
    let mut out = Vec::new();
    for v in tree.preorder() {
        let size = sizes[v.index()];
        if size >= 2 && size < n_leaves {
            out.push(CladeAgreement {
                node: v.0,
                size,
                agrees: true,
            });
        }
    }
    out
}

/// The comparison of two in-memory trees, synthesized in O(n) when their
/// canonical root hashes match — or `None` when they differ (or the hash is
/// ambiguous: duplicate/missing leaf names), in which case the caller runs
/// the streaming comparison. The experiment runner probes this before every
/// cell comparison, so reconstructions that recover the reference exactly
/// skip the bitset pass and the O(n³) triplet count outright.
pub(crate) fn equal_tree_comparison(
    a: &Tree,
    b: &Tree,
    triplets: bool,
) -> Option<SourceComparison> {
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let n_leaves = b.leaf_ids().count() as u32;
    if triplets && n_leaves < 3 {
        return None;
    }
    if !labeling::clade_hash::distinct_named_leaves(a)
        || !labeling::clade_hash::distinct_named_leaves(b)
    {
        return None;
    }
    if labeling::clade_hash::root_hash(a)? != labeling::clade_hash::root_hash(b)? {
        return None;
    }
    let counts = TreeContent::compute(b).counts;
    Some(identical_comparison(
        counts.rooted,
        counts.unrooted,
        tree_agreement(b, n_leaves),
        triplets,
    ))
}

/// A stored tree's topology, streamed off the `ivl_by_pre` covering index.
///
/// Obtained from [`Repository::clade_source`] (or the reader equivalent) and
/// consumed by [`reconstruction::compare::compare_sources`]; the structural
/// part of the stream is one range scan, and only leaf rows are decoded for
/// their names.
pub struct StoredCladeSource<'a, D: DbRead> {
    ctx: ReadCtx<'a, D>,
    handle: TreeHandle,
    nodes: u64,
}

impl<D: DbRead> CladeSource for StoredCladeSource<'_, D> {
    type Error = CrimsonError;

    fn node_count_hint(&self) -> usize {
        self.nodes as usize
    }

    fn for_each_node(&self, visit: &mut NodeVisitor<'_>) -> CrimsonResult<()> {
        let tree = self.handle.0;
        let entries = self.load_span(tree, 0, (self.nodes.saturating_sub(1)) as u32)?;
        // A cold tree materializes fewer interval entries than its logical
        // node count: the difference must be covered exactly by its
        // structural-sharing bridges.
        let refs = if (entries.len() as u64) < self.nodes {
            self.ctx.clade_refs_of(self.handle)?
        } else {
            Vec::new()
        };
        let bridged: u64 = refs.iter().map(|r| (r.end - r.pre + 1) as u64).sum();
        if entries.len() as u64 + bridged != self.nodes {
            return Err(CrimsonError::CorruptRepository(format!(
                "tree #{tree} catalogs {} nodes but its interval range holds {} (+{} bridged)",
                self.nodes,
                entries.len(),
                bridged
            )));
        }
        // Leaf names through the heap locators the index carries — one page
        // read per cold leaf row, no B+tree descent, nothing for internal
        // nodes.
        let mut names: Vec<Option<String>> = Vec::with_capacity(entries.len());
        for (entry, rid) in &entries {
            if entry.is_leaf {
                let sid = StoredNodeId((tree << TREE_SHIFT) | entry.node as u64);
                let rec = self.ctx.node_record_by_locator(sid, *rid)?;
                names.push(rec.name.clone());
            } else {
                names.push(None);
            }
        }
        // Interleave the materialized entries with the bridged spans in
        // logical pre order: bridges occupy exactly the pre gaps, and both
        // sequences are already sorted, so a two-pointer merge suffices.
        let mut rit = refs.iter().peekable();
        for ((entry, _), name) in entries.iter().zip(&names) {
            while let Some(r) = rit.peek() {
                if r.pre < entry.pre {
                    self.visit_bridge(r, visit)?;
                    rit.next();
                } else {
                    break;
                }
            }
            visit(entry.pre, entry.end, entry.node, name.as_deref());
        }
        for r in rit {
            self.visit_bridge(r, visit)?;
        }
        Ok(())
    }
}

impl<D: DbRead> StoredCladeSource<'_, D> {
    /// One contiguous `ivl_by_pre` range scan over `[lo_pre, hi_pre]` of
    /// `tree`, yielding decoded entries with their heap locators.
    fn load_span(
        &self,
        tree: u64,
        lo_pre: u32,
        hi_pre: u32,
    ) -> CrimsonResult<Vec<(IntervalEntry, storage::RecordId)>> {
        let low = interval_key_prefix(tree, lo_pre);
        let high = interval_range_end(tree, hi_pre);
        let mut entries: Vec<(IntervalEntry, storage::RecordId)> = Vec::new();
        let mut malformed = false;
        self.ctx.db.raw_scan(
            self.ctx.tables.ivl_by_pre,
            Some(&low),
            Some(&high),
            &mut |key, rid| match IntervalEntry::decode_key(key) {
                Some((_, entry)) => {
                    entries.push((entry, storage::RecordId::from_u64(rid)));
                    Ok(true)
                }
                None => {
                    malformed = true;
                    Ok(false)
                }
            },
        )?;
        if malformed {
            return Err(CrimsonError::CorruptRepository(
                "malformed interval-index key".to_string(),
            ));
        }
        Ok(entries)
    }

    /// Stream one bridged span by scanning its canonical source range and
    /// shifting every rank into this tree's logical numbering. Bridged
    /// nodes have no rows in this tree, so the source-local id exposed to
    /// the visitor is the node's logical pre-order rank.
    fn visit_bridge(&self, r: &CladeRef, visit: &mut NodeVisitor<'_>) -> CrimsonResult<()> {
        let span = self.load_span(r.src_tree, r.src_pre, r.src_end)?;
        if span.len() as u64 != (r.src_end - r.src_pre + 1) as u64 {
            return Err(CrimsonError::CorruptRepository(format!(
                "bridge into tree #{} spans {} nodes but its source range holds {}",
                r.src_tree,
                r.src_end - r.src_pre + 1,
                span.len()
            )));
        }
        for (entry, rid) in &span {
            let name = if entry.is_leaf {
                let sid = StoredNodeId((r.src_tree << TREE_SHIFT) | entry.node as u64);
                self.ctx.node_record_by_locator(sid, *rid)?.name.clone()
            } else {
                None
            };
            let pre = r.pre + (entry.pre - r.src_pre);
            let end = r.pre + (entry.end - r.src_pre);
            visit(pre, end, pre, name.as_deref());
        }
        Ok(())
    }
}

impl<'a, D: DbRead> ReadCtx<'a, D> {
    /// The stored tree as a streaming clade source.
    pub fn clade_source(&self, handle: TreeHandle) -> CrimsonResult<StoredCladeSource<'a, D>> {
        let rec = self.tree_record(handle)?;
        Ok(StoredCladeSource {
            ctx: *self,
            handle,
            nodes: rec.node_count,
        })
    }

    /// Compare two stored trees without materializing either. When both
    /// carry content addresses with equal root hashes (and unambiguous leaf
    /// names), the result is synthesized from the stored clade counts in
    /// O(1) — no index scan, no leaf-row fetches, no streaming comparison.
    ///
    /// The short-circuited result leaves `clades` empty: on an identical
    /// pair every non-trivial clade agrees, so the per-clade listing carries
    /// no information and enumerating it would cost exactly the O(n) scan
    /// the short-circuit exists to avoid (the agreeing-clade count is still
    /// exact in `rooted_rf.shared`). Callers that need the full listing for
    /// an identical pair can stream it via
    /// [`ReadCtx::compare_stored_with_tree`], whose in-memory side makes
    /// the enumeration a pure CPU pass.
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        if let (Some(sa), Some(sb)) = (self.tree_stats(a)?, self.tree_stats(b)?) {
            if Self::short_circuit_applies(&sa, &sb) {
                let rec = self.tree_record(b)?;
                if !(triplets && rec.leaf_count < 3) {
                    return Ok(identical_comparison(
                        sb.rooted_clades,
                        sb.unrooted_splits,
                        Vec::new(),
                        triplets,
                    ));
                }
            }
        }
        let sa = self.clade_source(a)?;
        let sb = self.clade_source(b)?;
        compare_sources::<_, _, CrimsonError>(&sa, &sb, triplets)
    }

    /// Compare a stored tree against an in-memory one (the stored tree is
    /// the reference side; per-clade agreement describes the in-memory
    /// tree's nodes). Short-circuits like [`ReadCtx::compare_stored`] when
    /// the in-memory tree's root hash matches the stored content address —
    /// the in-memory side is hashed, but the stored side is never streamed
    /// and no leaf row is fetched.
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        if let Some(sa) = self.tree_stats(a)? {
            if !sa.cold && sa.distinct_leaves && !b.is_empty() {
                let content = TreeContent::compute(b);
                let root_hash = content.hashes[b.root_unchecked().index()];
                let n_leaves = b.leaf_ids().count() as u32;
                if root_hash == sa.root_hash
                    && content.distinct_leaves
                    && !(triplets && n_leaves < 3)
                {
                    let clades = tree_agreement(b, n_leaves);
                    return Ok(identical_comparison(
                        content.counts.rooted,
                        content.counts.unrooted,
                        clades,
                        triplets,
                    ));
                }
            }
        }
        let sa = self.clade_source(a)?;
        compare_sources::<_, _, CrimsonError>(&sa, b, triplets)
    }

    /// The equal-hash short-circuit is sound only when both sides carry a
    /// content address, the addresses match, and every leaf name is present
    /// and unique on both sides (duplicate or missing names make the hash
    /// ambiguous). Cold trees never short-circuit: their agreement rows
    /// would describe only the materialized spine.
    fn short_circuit_applies(sa: &TreeStatsRecord, sb: &TreeStatsRecord) -> bool {
        sa.root_hash == sb.root_hash
            && sa.distinct_leaves
            && sb.distinct_leaves
            && !sa.cold
            && !sb.cold
    }
}

impl Repository {
    /// Robinson–Foulds (rooted and unrooted), per-clade agreement and —
    /// when `triplets` is set — triplet distance between two stored trees,
    /// computed inside the interval index: one range scan per tree, leaf
    /// rows only, no tree materialization.
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        self.ctx().compare_stored(a, b, triplets)
    }

    /// Compare a stored tree (reference side) against an in-memory tree.
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<SourceComparison> {
        self.ctx().compare_stored_with_tree(a, b, triplets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::{balanced_binary, figure1_tree};
    use reconstruction::compare::{robinson_foulds, rooted_robinson_foulds, triplet_distance};
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    fn repo() -> (tempfile::TempDir, Repository) {
        let dir = tempdir().unwrap();
        let repo = Repository::create(
            dir.path().join("cmp.crimson"),
            RepositoryOptions {
                frame_depth: 8,
                buffer_pool_pages: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        (dir, repo)
    }

    #[test]
    fn stored_comparison_matches_materialized_comparison() {
        let (_d, mut repo) = repo();
        let a = yule_tree(60, 1.0, 3);
        let b = yule_tree(60, 1.0, 4); // same leaf-name set, other topology
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();

        let cmp = repo.compare_stored(ha, hb, true).unwrap();
        assert_eq!(cmp.rf, robinson_foulds(&a, &b).unwrap());
        assert_eq!(cmp.rooted_rf, rooted_robinson_foulds(&a, &b).unwrap());
        let t = triplet_distance(&a, &b).unwrap();
        assert!((cmp.triplet.unwrap() - t).abs() < 1e-15);

        // Stored vs in-memory agrees too, in both pairings.
        let with_tree = repo.compare_stored_with_tree(ha, &b, true).unwrap();
        assert_eq!(with_tree.rf, cmp.rf);
        assert_eq!(with_tree.rooted_rf, cmp.rooted_rf);
        assert!((with_tree.triplet.unwrap() - t).abs() < 1e-15);
    }

    #[test]
    fn identical_stored_trees_have_zero_distance() {
        let (_d, mut repo) = repo();
        let tree = balanced_binary(5, 1.0);
        let ha = repo.load_tree("a", &tree).unwrap();
        // Same topology under a different name: ids differ, structure equal.
        let hb = repo.load_tree("b", &tree).unwrap();
        let cmp = repo.compare_stored(ha, hb, false).unwrap();
        assert_eq!(cmp.rf.distance, 0);
        assert_eq!(cmp.rooted_rf.distance, 0);
        assert!(cmp.clades.iter().all(|c| c.agrees));
    }

    #[test]
    fn stored_comparison_from_snapshot_reader() {
        let (_d, mut repo) = repo();
        let a = yule_tree(40, 1.0, 7);
        let b = yule_tree(40, 1.0, 8);
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();
        let reader = repo.reader().unwrap();
        let via_reader = reader.compare_stored(ha, hb, false).unwrap();
        let via_writer = repo.compare_stored(ha, hb, false).unwrap();
        assert_eq!(via_reader.rf, via_writer.rf);
        assert_eq!(via_reader.rooted_rf, via_writer.rooted_rf);
    }

    #[test]
    fn short_circuit_matches_streamed_identical_comparison() {
        let (_d, mut repo) = repo();
        let tree = yule_tree(120, 1.0, 12);
        let ha = repo.load_tree("a", &tree).unwrap();
        let hb = repo.load_tree("b", &tree).unwrap();
        // Hash-equal hot trees take the O(1) path …
        let fast = repo.compare_stored(ha, hb, true).unwrap();
        // … a cold copy blocks it, so this streams through the same code
        // the pre-hash build used (stitched), giving the ground truth.
        let hc = repo.store_tree_shared("c", &tree, u32::MAX).unwrap();
        let slow = repo.compare_stored(ha, hc, true).unwrap();
        assert_eq!(fast.rf, slow.rf);
        assert_eq!(fast.rooted_rf, slow.rooted_rf);
        assert_eq!(fast.triplet, slow.triplet);
        assert_eq!(fast.rf.distance, 0);
        // The O(1) path omits the (all-agreeing) per-clade listing; the
        // agreeing-clade count is still exact.
        assert!(fast.clades.is_empty());
        assert_eq!(fast.rooted_rf.shared, slow.clades.len());
        assert!(slow.clades.iter().all(|c| c.agrees));
        // The in-memory pairing short-circuits to the same numbers and, with
        // the tree in memory, still enumerates the full agreement listing.
        let with_tree = repo.compare_stored_with_tree(ha, &tree, true).unwrap();
        assert_eq!(with_tree.rf, fast.rf);
        assert_eq!(with_tree.rooted_rf, fast.rooted_rf);
        assert_eq!(with_tree.triplet, Some(0.0));
        assert_eq!(with_tree.clades.len(), slow.clades.len());
        assert!(with_tree.clades.iter().all(|c| c.agrees));
    }

    #[test]
    fn cold_stored_tree_streams_through_its_bridges() {
        let (_d, mut repo) = repo();
        let a = yule_tree(150, 1.0, 31);
        let b = yule_tree(150, 1.0, 32); // same leaf names, other topology
        let ha = repo.load_tree("a", &a).unwrap();
        let hb = repo.load_tree("b", &b).unwrap();
        // A cold copy of `b` bridges every large subtree into the hot copy.
        let hc = repo.store_tree_shared("b-cold", &b, 1).unwrap();
        assert!(!repo.clade_refs_of(hc).unwrap().is_empty());
        let hot = repo.compare_stored(ha, hb, true).unwrap();
        let cold = repo.compare_stored(ha, hc, true).unwrap();
        assert_eq!(cold.rf, hot.rf);
        assert_eq!(cold.rooted_rf, hot.rooted_rf);
        assert_eq!(cold.triplet, hot.triplet);
        assert_eq!(cold.rf, robinson_foulds(&a, &b).unwrap());
        // Cold trees work on either side of the comparison.
        let reversed = repo.compare_stored(hc, ha, false).unwrap();
        assert_eq!(reversed.rf.distance, hot.rf.distance);
    }

    #[test]
    fn stored_comparison_errors() {
        let (_d, mut repo) = repo();
        let ha = repo.load_tree("fig", &figure1_tree()).unwrap();
        // Unknown handle.
        assert!(repo.compare_stored(ha, TreeHandle(99), false).is_err());
        // Different leaf sets.
        let other = repo.load_tree("bal", &balanced_binary(3, 1.0)).unwrap();
        assert!(matches!(
            repo.compare_stored(ha, other, false),
            Err(CrimsonError::Compare(_))
        ));
    }
}
