//! # crimson — the tree data management system
//!
//! This crate ties the substrates together into the system the paper
//! describes (Figure 3):
//!
//! * **Repository Manager** ([`repository`]) — trees are stored *in
//!   relational form* on the embedded storage engine: a node table carrying
//!   hierarchical Dewey labels, cumulative evolutionary time and parent
//!   links; a frame (subtree) table with source nodes; a species table with
//!   sequence data; and a tree catalog. Secondary B+tree indexes provide
//!   random access by species name, node id and evolutionary time.
//! * **Data Loader** ([`loader`]) — loads Newick/NEXUS trees with or without
//!   species data, and appends species data to existing trees (§3 "Loading
//!   Data").
//! * **Structure queries** ([`query`]) — least common ancestor,
//!   ancestor/descendant, minimal spanning clade, tree projection and tree
//!   pattern match, all executed against the disk-resident repository.
//!
//! ## The interval index behind structure queries
//!
//! At load time the repository persists pre/post-order interval labels as a
//! covering raw B+tree index (layout in [`labeling::interval`]):
//!
//! * `ivl_by_pre`, keyed `(tree_id, pre)` with `(end, parent_pre, node,
//!   is_leaf)` riding in the key and the node row's heap locator as the
//!   value. A node's subtree is the contiguous range `[(t, pre), (t, end)]`,
//!   so `minimal_spanning_clade` and dense projections are **single range
//!   scans**, and the LCA walk lifts through `parent_pre` without touching
//!   node rows.
//! * `ivl_by_node`, mapping a stored node id to its packed `(pre, end)`
//!   interval: `is_ancestor` is two point lookups and two integer
//!   comparisons.
//!
//! Decoded node rows and interval entries are held in small two-generation
//! LRU caches, so repeated LCA/projection queries skip row decoding
//! entirely. The pre-index label-walk/BFS implementations survive as
//! `*_reference` methods — the property tests cross-validate against them,
//! and `crimson-bench`'s smoke profile asserts the ≥5× page-read advantage.
//! * **Sampling** ([`sampling`]) — uniform random sampling, sampling with
//!   respect to an evolutionary time, and user-supplied species lists (§2.2),
//!   available on the writer and on snapshot readers alike.
//! * **Experiment subsystem** ([`experiment`]) — the Benchmark Manager grown
//!   into a persistent pipeline: evaluation sweeps fan out across snapshot
//!   workers, reconstructed trees are stored like any other tree, and spec,
//!   metrics and per-clade agreement rows land in catalog tables inside one
//!   atomic transaction.
//! * **Index-native comparison** ([`compare`]) — Robinson–Foulds and triplet
//!   distances between stored trees computed by streaming the interval
//!   index ([`compare::StoredCladeSource`]), never materializing a tree.
//! * **Query Repository** ([`history`]) — records executed queries so they
//!   can be recalled and re-run, as the Crimson GUI does.
//! * **Concurrent readers** ([`reader`]) — Crimson is pitched as a shared
//!   service; [`reader::RepositoryReader`] handles (from
//!   [`Repository::reader`]) serve every structure query from other
//!   threads against the last *committed* snapshot, never blocking behind
//!   an in-flight load, and [`batch::QueryBatch`] fans a batch of queries
//!   across a scoped worker pool, returning results in submission order.
//!
//! ```no_run
//! use crimson::prelude::*;
//! use simulation::gold::GoldStandardBuilder;
//!
//! let gold = GoldStandardBuilder::new().leaves(64).sequence_length(200).seed(7).build().unwrap();
//! let mut repo = Repository::create("demo.crimson", RepositoryOptions::default()).unwrap();
//! let tree_id = repo.load_gold_standard("gold", &gold).unwrap();
//! let sample = repo.sample_uniform(tree_id, 16, 1).unwrap();
//! let projection = repo.project(tree_id, &sample).unwrap();
//! assert_eq!(projection.leaf_count(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub(crate) mod cache;
pub mod compare;
pub mod content;
pub mod error;
pub mod experiment;
pub mod history;
pub mod loader;
pub mod query;
pub mod reader;
pub mod repository;
pub mod sampling;

pub use batch::{BatchOutput, BatchQuery, QueryBatch};
pub use content::{CladeCounts, ContentStats};
pub use error::CrimsonError;
pub use experiment::{
    DistanceSource, EvalReport, EvalSpec, ExperimentRecord, ExperimentResult, ExperimentRunner,
    ExperimentSpec, Method,
};
pub use labeling::clade_hash::CladeHash;
pub use reader::{PinnedReader, ReadRetry, RepositoryReader};
pub use repository::{
    DegradedReport, Durability, Repository, RepositoryOptions, ScrubReport, StoredNodeId,
    TreeHandle, TreeStatsRecord,
};
pub use storage::CheckpointPolicy;

/// Commonly used items.
pub mod prelude {
    pub use crate::batch::{BatchOutput, BatchQuery, QueryBatch};
    pub use crate::compare::StoredCladeSource;
    pub use crate::content::{CladeCounts, ContentStats};
    pub use crate::error::CrimsonError;
    pub use crate::experiment::{
        CladeRow, DistanceSource, EvalReport, EvalSpec, ExperimentRecord, ExperimentResult,
        ExperimentRunner, ExperimentSpec, Method,
    };
    pub use crate::history::QueryKind;
    pub use crate::loader::LoadMode;
    pub use crate::reader::{PinnedReader, ReadRetry, RepositoryReader};
    pub use crate::repository::{
        DegradedReport, Durability, IntegrityReport, Repository, RepositoryOptions, ScrubReport,
        StoredNodeId, TreeHandle, TreeStatsRecord,
    };
    pub use crate::sampling::SamplingStrategy;
    pub use storage::CheckpointPolicy;
}
