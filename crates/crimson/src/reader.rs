//! Concurrent snapshot readers for the repository.
//!
//! Crimson is pitched as a shared service: many researchers query the same
//! repository while new gold standards keep loading. [`RepositoryReader`]
//! is the handle that makes that concurrent: it is `Send + Sync`, shares
//! the writer's buffer pool, and serves every read from the last
//! **committed** state — the storage layer's before-image overlay makes the
//! writer's in-flight transaction invisible, so readers never block behind
//! a load and never observe a half-loaded tree.
//!
//! ## The snapshot-read rule
//!
//! A single page read is always committed-consistent. A multi-page
//! operation (an LCA walk, a clade scan, a projection) could still straddle
//! a commit — the first pages read pre-commit, the rest post-commit. The
//! reader brackets every public operation with the pool's read generation
//! and retries the operation when the generation moved. Retries are cheap
//! (the touched pages are hot) and rare (one per commit per in-flight
//! operation); queries over already-loaded trees return identical results
//! either way, so the retry only exists to rule out torn *index structure*
//! reads, which would otherwise surface as spurious errors.
//!
//! Each reader carries its own record/interval caches (sharded, see
//! [`crate::cache::ShardedCache`]). Cached rows are immutable once loaded
//! and readers only ever observe committed rows, so the caches never need
//! invalidation — exactly the same argument the writer's caches rely on.

use crate::cache::ShardedCache;
use crate::error::CrimsonResult;
use crate::history::{HistoryEntry, QueryKind};
use crate::query::PatternMatch;
use crate::repository::{
    FrameRecord, IntegrityReport, NodeRecord, ReadCtx, Repository, StoredFrameId, StoredNodeId,
    Tables, TreeHandle, TreeRecord, ENTRY_CACHE_GEN, RECORD_CACHE_GEN,
};
use labeling::interval::IntervalEntry;
use phylo::Tree;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;
use storage::db::DbReader;

/// Retry/backoff policy for snapshot reads racing a rapid committer: a
/// bounded number of attempts with **jittered exponential backoff** between
/// them. A bare spin (the old behaviour, reachable with
/// `base_delay: Duration::ZERO`) keeps every retry phase-locked to the
/// writer's commit cadence; backing off with jitter desynchronises the
/// reader so it lands in an inter-commit gap after a couple of attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRetry {
    /// Maximum bracket attempts before giving up with
    /// [`CrimsonError::Busy`](crate::error::CrimsonError::Busy).
    pub attempts: usize,
    /// Backoff before the second attempt; doubles per retry. Zero disables
    /// sleeping entirely (pure spin).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for ReadRetry {
    fn default() -> Self {
        ReadRetry {
            attempts: 64,
            base_delay: Duration::from_micros(20),
            max_delay: Duration::from_millis(2),
        }
    }
}

impl ReadRetry {
    /// Sleep before retry number `attempt` (1-based): exponential in the
    /// attempt, with deterministic jitter drawn from `salt` spreading
    /// concurrent readers over `[delay/2, delay]`.
    fn backoff(&self, attempt: usize, salt: u64) {
        if self.base_delay.is_zero() {
            return;
        }
        let shift = (attempt - 1).min(16) as u32;
        let ceiling = self.max_delay.max(self.base_delay);
        let delay = self
            .base_delay
            .saturating_mul(1u32 << shift.min(31))
            .min(ceiling);
        let nanos = delay.as_nanos() as u64;
        // splitmix64: cheap, seedable, good enough to decorrelate readers.
        let mut z = salt
            .wrapping_add(attempt as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let jittered = nanos / 2 + z % (nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }
}

/// A concurrent snapshot reader over a [`Repository`], created by
/// [`Repository::reader`]. All methods take `&self`; share one reader
/// across threads or create one per thread — both are supported, the
/// former shares its caches, the latter isolates them.
pub struct RepositoryReader {
    db: DbReader,
    tables: Tables,
    records: ShardedCache<StoredNodeId, Arc<NodeRecord>>,
    entries: ShardedCache<u64, IntervalEntry>,
    retry: ReadRetry,
}

impl std::fmt::Debug for RepositoryReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepositoryReader")
            .field("generation", &self.db.generation())
            .finish()
    }
}

impl RepositoryReader {
    pub(crate) fn new(repo: &Repository) -> CrimsonResult<RepositoryReader> {
        Ok(RepositoryReader {
            db: repo.db.reader()?,
            tables: repo.tables,
            records: ShardedCache::new(RECORD_CACHE_GEN),
            entries: ShardedCache::new(ENTRY_CACHE_GEN),
            retry: ReadRetry::default(),
        })
    }

    /// The storage read generation this reader currently observes (advances
    /// with every commit or rollback).
    pub fn generation(&self) -> u64 {
        self.db.generation()
    }

    /// Replace the retry/backoff policy for this reader's snapshot brackets.
    pub fn set_read_retry(&mut self, retry: ReadRetry) {
        self.retry = ReadRetry {
            attempts: retry.attempts.max(1),
            ..retry
        };
    }

    /// This reader's retry/backoff policy.
    pub fn read_retry(&self) -> ReadRetry {
        self.retry
    }

    /// Run `f` over the snapshot read engine, retrying — with jittered
    /// exponential backoff — when a commit lands mid-operation (see the
    /// module docs for why that is both rare and cheap).
    fn read<R>(&self, f: impl Fn(&ReadCtx<'_, DbReader>) -> CrimsonResult<R>) -> CrimsonResult<R> {
        let mut last = None;
        let attempts = self.retry.attempts.max(1);
        for attempt in 0..attempts {
            if attempt > 0 {
                // Count the retry in the pool's shared statistics: the
                // writer-side harnesses assert that background checkpoints
                // do not spike this.
                self.db.note_snapshot_retry();
                // Back off before re-bracketing: a phase-locked spin against
                // a fast committer can lose every race; sleeping a jittered,
                // growing interval lands the retry in an inter-commit gap.
                self.retry.backoff(attempt, self.db.generation());
            }
            let gen = self.db.stable_generation();
            let ctx = ReadCtx {
                db: &self.db,
                tables: self.tables,
                records: &self.records,
                entries: &self.entries,
            };
            let out = f(&ctx);
            if self.db.generation() == gen {
                return out;
            }
            last = Some(out);
        }
        // Every bracket lost the race against a committing writer — only
        // possible when the operation itself takes longer than the writer's
        // inter-commit gap, continuously. Either way the result may mix two
        // committed states, so the committed-snapshot contract cannot be
        // honoured; report Busy rather than serving a possibly-torn value
        // or phantom corruption.
        self.db.note_snapshot_retry();
        let detail = match &last.expect("attempts is at least 1") {
            Ok(_) => "the last attempt succeeded but its bracket did not hold".to_string(),
            Err(e) => format!("the last attempt failed with: {e}"),
        };
        Err(crate::error::CrimsonError::Busy(format!(
            "read retried {attempts} times against a continuously committing writer; {detail}"
        )))
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Look up a tree by name.
    pub fn find_tree(&self, name: &str) -> CrimsonResult<Option<TreeRecord>> {
        self.read(|ctx| ctx.find_tree(name))
    }

    /// Look up a tree by name, failing when absent.
    pub fn tree_by_name(&self, name: &str) -> CrimsonResult<TreeRecord> {
        self.read(|ctx| ctx.tree_by_name(name))
    }

    /// Look up a tree by handle.
    pub fn tree_record(&self, handle: TreeHandle) -> CrimsonResult<TreeRecord> {
        self.read(|ctx| ctx.tree_record(handle))
    }

    /// All trees committed so far.
    pub fn list_trees(&self) -> CrimsonResult<Vec<TreeRecord>> {
        self.read(|ctx| ctx.list_trees())
    }

    // ------------------------------------------------------------------
    // Nodes, frames, species
    // ------------------------------------------------------------------

    /// Fetch a node row (through this reader's record cache).
    pub fn node_record(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        self.read(|ctx| ctx.node_record(id))
    }

    /// Fetch a frame row.
    pub fn frame_record(&self, id: StoredFrameId) -> CrimsonResult<FrameRecord> {
        self.read(|ctx| ctx.frame_record(id))
    }

    /// Children of a stored node (via the parent index).
    pub fn children(&self, id: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.children(id))
    }

    /// All leaf node ids of a tree.
    pub fn leaves(&self, handle: TreeHandle) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.leaves(handle))
    }

    /// The leaf node a species name maps to in the given tree, if any.
    pub fn species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<Option<StoredNodeId>> {
        self.read(|ctx| ctx.species_node(handle, name))
    }

    /// The leaf node a species name maps to, failing when absent.
    pub fn require_species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.require_species_node(handle, name))
    }

    /// Sequences stored for the given species names.
    pub fn sequences_for(
        &self,
        handle: TreeHandle,
        names: &[String],
    ) -> CrimsonResult<HashMap<String, String>> {
        self.read(|ctx| ctx.sequences_for(handle, names))
    }

    /// Number of species rows stored for a tree.
    pub fn species_count(&self, handle: TreeHandle) -> CrimsonResult<usize> {
        self.read(|ctx| ctx.species_count(handle))
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// The packed `[pre, end]` interval of a stored node.
    pub fn interval_of(&self, id: StoredNodeId) -> CrimsonResult<(u32, u32)> {
        self.read(|ctx| ctx.interval_of(id))
    }

    /// Least common ancestor over the interval index (see
    /// [`Repository::lca`]).
    pub fn lca(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.lca(a, b))
    }

    /// Ancestor-or-self test: two interval lookups, two comparisons.
    pub fn is_ancestor(&self, ancestor: StoredNodeId, node: StoredNodeId) -> CrimsonResult<bool> {
        self.read(|ctx| ctx.is_ancestor(ancestor, node))
    }

    /// Reference LCA over the stored hierarchical Dewey labels (see
    /// [`Repository::lca_label_walk`]); kept on the reader so the
    /// concurrency stress harness can cross-validate under load.
    pub fn lca_label_walk(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.lca_label_walk(a, b))
    }

    /// Minimal spanning clade (one LCA + one interval range scan).
    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.minimal_spanning_clade(nodes))
    }

    /// Reference spanning clade (label-walk LCA + BFS row fetches).
    pub fn minimal_spanning_clade_reference(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.minimal_spanning_clade_reference(nodes))
    }

    /// Tree projection onto a leaf selection (see [`Repository::project`]).
    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project(handle, leaves))
    }

    /// Reference projection (per-pair label walks, uncached rows).
    pub fn project_reference(
        &self,
        handle: TreeHandle,
        leaves: &[StoredNodeId],
    ) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project_reference(handle, leaves))
    }

    /// Project by species names.
    pub fn project_species(&self, handle: TreeHandle, names: &[&str]) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project_species(handle, names))
    }

    /// Tree pattern match (projection + comparison).
    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        self.read(|ctx| ctx.pattern_match(handle, pattern))
    }

    // ------------------------------------------------------------------
    // Sampling (deterministic per seed, identical to the writer's draws)
    // ------------------------------------------------------------------

    /// Execute a sampling strategy, returning the selected leaf nodes.
    pub fn sample(
        &self,
        handle: TreeHandle,
        strategy: &crate::sampling::SamplingStrategy,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample(handle, strategy, seed))
    }

    /// Uniformly sample `k` distinct species from the tree.
    pub fn sample_uniform(
        &self,
        handle: TreeHandle,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_uniform(handle, k, seed))
    }

    /// Sample `k` species with respect to evolutionary time `time`.
    pub fn sample_by_time(
        &self,
        handle: TreeHandle,
        time: f64,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_by_time(handle, time, k, seed))
    }

    /// The evolutionary-time frontier (see [`Repository::time_frontier`]).
    pub fn time_frontier(&self, handle: TreeHandle, time: f64) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.time_frontier(handle, time))
    }

    /// Resolve an explicit list of species names to leaf nodes.
    pub fn sample_by_names(
        &self,
        handle: TreeHandle,
        names: &[&str],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_by_names(handle, names))
    }

    /// The names of a set of stored leaf nodes.
    pub fn names_of(&self, nodes: &[StoredNodeId]) -> CrimsonResult<Vec<String>> {
        self.read(|ctx| ctx.names_of(nodes))
    }

    // ------------------------------------------------------------------
    // Index-native tree comparison
    // ------------------------------------------------------------------

    /// Compare two stored trees inside the interval index (see
    /// [`Repository::compare_stored`]).
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<reconstruction::compare::SourceComparison> {
        self.read(|ctx| ctx.compare_stored(a, b, triplets))
    }

    /// Compare a stored tree (reference side) against an in-memory tree.
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<reconstruction::compare::SourceComparison> {
        self.read(|ctx| ctx.compare_stored_with_tree(a, b, triplets))
    }

    // ------------------------------------------------------------------
    // Experiments
    // ------------------------------------------------------------------

    /// Evaluate one experiment grid cell against this snapshot — the unit
    /// of work [`crate::experiment::ExperimentRunner`] fans across workers.
    pub(crate) fn evaluate_cell(
        &self,
        gold: TreeHandle,
        method: crate::experiment::Method,
        distance_source: crate::experiment::DistanceSource,
        strategy: &crate::sampling::SamplingStrategy,
        seed: u64,
        compute_triplets: bool,
    ) -> CrimsonResult<crate::experiment::CellEval> {
        self.read(|ctx| {
            ctx.evaluate_cell(
                gold,
                method,
                distance_source,
                strategy,
                seed,
                compute_triplets,
            )
        })
    }

    /// All persisted experiments, in id order.
    pub fn list_experiments(&self) -> CrimsonResult<Vec<crate::experiment::ExperimentRecord>> {
        self.read(|ctx| ctx.list_experiments())
    }

    /// Look up an experiment by name, failing when absent.
    pub fn experiment_by_name(
        &self,
        name: &str,
    ) -> CrimsonResult<crate::experiment::ExperimentRecord> {
        self.read(|ctx| ctx.experiment_by_name(name))
    }

    /// All result rows of an experiment, in grid-cell order.
    pub fn experiment_results(
        &self,
        experiment: u64,
    ) -> CrimsonResult<Vec<crate::experiment::ExperimentResult>> {
        self.read(|ctx| ctx.experiment_results(experiment))
    }

    /// The per-clade agreement rows of one result.
    pub fn experiment_clades(
        &self,
        result: u64,
    ) -> CrimsonResult<Vec<crate::experiment::CladeRow>> {
        self.read(|ctx| ctx.experiment_clades(result))
    }

    // ------------------------------------------------------------------
    // History and integrity
    // ------------------------------------------------------------------

    /// All recorded queries in execution order.
    pub fn query_history(&self) -> CrimsonResult<Vec<HistoryEntry>> {
        self.read(|ctx| ctx.query_history())
    }

    /// Entries of a given kind, in execution order.
    pub fn history_of_kind(&self, kind: QueryKind) -> CrimsonResult<Vec<HistoryEntry>> {
        self.read(|ctx| ctx.history_of_kind(kind))
    }

    /// Fetch one history entry by id.
    pub fn history_entry(&self, id: u64) -> CrimsonResult<HistoryEntry> {
        self.read(|ctx| ctx.history_entry(id))
    }

    /// Cross-table invariant check over the committed state.
    pub fn integrity_check(&self) -> CrimsonResult<IntegrityReport> {
        self.read(|ctx| ctx.integrity_check())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::figure1_tree;
    use tempfile::tempdir;

    #[test]
    fn reader_matches_writer_on_quiet_repository() {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("r.crimson"),
            RepositoryOptions {
                frame_depth: 2,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        let reader = repo.reader().unwrap();

        assert_eq!(reader.tree_by_name("fig1").unwrap().handle, handle);
        assert_eq!(reader.leaves(handle).unwrap().len(), 5);
        let lla = reader.require_species_node(handle, "Lla").unwrap();
        let spy = reader.require_species_node(handle, "Spy").unwrap();
        assert_eq!(
            reader.lca(lla, spy).unwrap(),
            repo.lca(lla, spy).unwrap(),
            "reader and writer disagree on an LCA"
        );
        assert_eq!(
            reader.lca(lla, spy).unwrap(),
            reader.lca_label_walk(lla, spy).unwrap()
        );
        let clade = reader.minimal_spanning_clade(&[lla, spy]).unwrap();
        assert_eq!(clade, repo.minimal_spanning_clade(&[lla, spy]).unwrap());
        let p = reader
            .project_species(handle, &["Bha", "Lla", "Syn"])
            .unwrap();
        assert_eq!(p.leaf_count(), 3);
        reader.integrity_check().unwrap();
    }

    #[test]
    fn reader_does_not_see_uncommitted_tree() {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("r.crimson"),
            RepositoryOptions {
                frame_depth: 2,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .unwrap();
        repo.load_tree("first", &figure1_tree()).unwrap();
        let reader = repo.reader().unwrap();
        assert_eq!(reader.list_trees().unwrap().len(), 1);

        // Open a transaction by hand and load inside it: the reader must
        // keep seeing exactly one tree until the commit.
        repo.db.begin().unwrap();
        repo.load_tree("second", &figure1_tree()).unwrap();
        assert_eq!(repo.list_trees().unwrap().len(), 2, "writer sees its load");
        assert_eq!(
            reader.list_trees().unwrap().len(),
            1,
            "reader must not see the in-flight load"
        );
        assert!(reader.find_tree("second").unwrap().is_none());
        repo.db.commit().unwrap();
        assert_eq!(reader.list_trees().unwrap().len(), 2);
        assert!(reader.find_tree("second").unwrap().is_some());
    }
}
