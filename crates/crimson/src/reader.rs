//! Concurrent snapshot readers for the repository.
//!
//! Crimson is pitched as a shared service: many researchers query the same
//! repository while new gold standards keep loading. [`RepositoryReader`]
//! is the handle that makes that concurrent: it is `Send + Sync`, shares
//! the writer's buffer pool, and serves every read from a **pinned
//! committed snapshot** — the storage layer's per-page version chains make
//! the writer's in-flight transaction (and every commit that lands after
//! the pin) invisible, so readers never block behind a load and never
//! observe a half-loaded tree.
//!
//! ## The snapshot-read rule
//!
//! A single page read is always committed-consistent, but a multi-page
//! operation (an LCA walk, a clade scan, a projection) must not straddle a
//! commit — the first pages read pre-commit, the rest post-commit. Every
//! public operation therefore **pins a snapshot epoch** before its first
//! page touch ([`storage::db::DbReader::pin_epoch`]) and runs entirely
//! against that epoch's view ([`storage::EpochView`]): the pool keeps the
//! last `K = `[`storage::buffer::VERSION_CHAIN_CAP`] committed versions of
//! every recently-written page, and the pinned read resolves each page to
//! the newest version at or below its epoch. Commits landing mid-operation
//! are simply never seen — the operation completes against a frozen state
//! without retrying, however fast the writer commits.
//!
//! The one residual failure is [`storage::StorageError::SnapshotRetired`]:
//! the version chain is bounded, so a read that holds its pin while the
//! writer commits more than K new versions of a page the read then touches
//! finds its epoch garbage-collected. The reader handles it by re-pinning
//! a fresh epoch and re-running the operation, bounded by [`ReadRetry`];
//! exhausting that budget surfaces
//! [`CrimsonError::Busy`](crate::error::CrimsonError::Busy). The
//! concurrency stress harness drives a group-commit-cadence writer against
//! four readers and observes zero retirements at K = 4, so the fallback is
//! cold in practice — kept only so the contract degrades loudly instead of
//! serving a torn view if a future workload breaks the bound.
//!
//! Each reader carries its own record/interval caches (sharded, see
//! [`crate::cache::ShardedCache`]). Cached rows are immutable once loaded
//! and readers only ever observe committed rows, so the caches never need
//! invalidation — exactly the same argument the writer's caches rely on.

use crate::cache::ShardedCache;
use crate::error::{CrimsonError, CrimsonResult};
use crate::history::{HistoryEntry, QueryKind};
use crate::query::PatternMatch;
use crate::repository::{
    FrameRecord, IntegrityReport, NodeRecord, ReadCtx, Repository, StoredFrameId, StoredNodeId,
    Tables, TreeHandle, TreeRecord, ENTRY_CACHE_GEN, RECORD_CACHE_GEN,
};
use labeling::interval::IntervalEntry;
use phylo::Tree;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use storage::db::DbReader;
use storage::{EpochView, StorageError};

/// Monotone id source for per-reader backoff salts: every reader gets its
/// own splitmix64-whitened seed, so concurrent readers that do hit the
/// (cold) re-pin path sleep *different* jittered intervals instead of
/// phase-locking to each other.
static READER_SEQ: AtomicU64 = AtomicU64::new(0);

/// splitmix64 — cheap, seedable, good enough to decorrelate readers.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Retry/backoff policy for the **cold** snapshot-retired fallback: a
/// bounded number of attempts with **jittered exponential backoff** between
/// them. Under versioned reads an attempt only fails when the writer
/// committed more than [`storage::buffer::VERSION_CHAIN_CAP`] versions of a
/// touched page while the read held its pin; backing off with per-reader
/// jitter desynchronises the re-pin from the commit cadence (and from other
/// readers) so the retry lands inside the version window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadRetry {
    /// Maximum pin attempts before giving up with
    /// [`CrimsonError::Busy`](crate::error::CrimsonError::Busy).
    pub attempts: usize,
    /// Backoff before the second attempt; doubles per retry. Zero disables
    /// sleeping entirely (pure spin).
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for ReadRetry {
    fn default() -> Self {
        ReadRetry {
            attempts: 64,
            base_delay: Duration::from_micros(20),
            max_delay: Duration::from_millis(2),
        }
    }
}

impl ReadRetry {
    /// Sleep before retry number `attempt` (1-based): exponential in the
    /// attempt, with deterministic jitter drawn from `salt` spreading
    /// concurrent readers over `[delay/2, delay]`.
    fn backoff(&self, attempt: usize, salt: u64) {
        if self.base_delay.is_zero() {
            return;
        }
        let shift = (attempt - 1).min(16) as u32;
        let ceiling = self.max_delay.max(self.base_delay);
        let delay = self
            .base_delay
            .saturating_mul(1u32 << shift.min(31))
            .min(ceiling);
        let nanos = delay.as_nanos() as u64;
        let z = splitmix64(salt.wrapping_add(attempt as u64));
        let jittered = nanos / 2 + z % (nanos / 2 + 1);
        std::thread::sleep(Duration::from_nanos(jittered));
    }
}

/// A concurrent snapshot reader over a [`Repository`], created by
/// [`Repository::reader`]. All methods take `&self`; share one reader
/// across threads or create one per thread — both are supported, the
/// former shares its caches, the latter isolates them.
pub struct RepositoryReader {
    db: DbReader,
    tables: Tables,
    records: ShardedCache<StoredNodeId, Arc<NodeRecord>>,
    entries: ShardedCache<u64, IntervalEntry>,
    retry: ReadRetry,
    /// Per-reader backoff salt (whitened instance counter): distinct per
    /// reader by construction, so the jittered backoffs of concurrent
    /// readers are decorrelated even when they retire at the same instant.
    salt: u64,
}

impl std::fmt::Debug for RepositoryReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepositoryReader")
            .field("generation", &self.db.generation())
            .finish()
    }
}

impl RepositoryReader {
    pub(crate) fn new(repo: &Repository) -> CrimsonResult<RepositoryReader> {
        Ok(RepositoryReader {
            db: repo.db.reader()?,
            tables: repo.tables,
            records: ShardedCache::new(RECORD_CACHE_GEN),
            entries: ShardedCache::new(ENTRY_CACHE_GEN),
            retry: ReadRetry::default(),
            salt: splitmix64(READER_SEQ.fetch_add(1, Ordering::Relaxed)),
        })
    }

    /// The storage read generation this reader currently observes (advances
    /// with every commit or rollback).
    pub fn generation(&self) -> u64 {
        self.db.generation()
    }

    /// Block until the write-ahead log is durable up to `lsn` (leading or
    /// following a group fsync as needed). This is the durability *barrier*
    /// side of [`crate::repository::Durability::Async`]: it does not need —
    /// and must not hold — the single writer, so a server session can
    /// release the writer after an asynchronous commit and wait here while
    /// other sessions' commits ride the same fsync round.
    pub fn wait_durable(&self, lsn: storage::wal::Lsn) -> CrimsonResult<()> {
        self.db.wait_durable(lsn)?;
        Ok(())
    }

    /// Absolute LSN up to which the write-ahead log is known durable.
    pub fn durable_lsn(&self) -> storage::wal::Lsn {
        self.db.durable_lsn()
    }

    /// Replace the retry/backoff policy for this reader's (cold)
    /// snapshot-retired fallback.
    pub fn set_read_retry(&mut self, retry: ReadRetry) {
        self.retry = ReadRetry {
            attempts: retry.attempts.max(1),
            ..retry
        };
    }

    /// This reader's retry/backoff policy.
    pub fn read_retry(&self) -> ReadRetry {
        self.retry
    }

    /// Pin a snapshot of the current committed state. Every query method on
    /// the returned [`PinnedReader`] evaluates against this one frozen
    /// epoch — commits landing after the pin are invisible until the pin is
    /// dropped. Use it to make a *group* of reads mutually consistent (the
    /// batch executor pins one epoch per batch) or to hold a stable view
    /// open across writer activity.
    pub fn pin(&self) -> CrimsonResult<PinnedReader<'_>> {
        let pin = self.db.pin_epoch();
        let view = self.db.at_epoch(&pin)?;
        Ok(PinnedReader {
            reader: self,
            _pin: pin,
            view,
        })
    }

    /// Run `f` against a freshly pinned snapshot epoch: pin, resolve the
    /// epoch view, run, unpin. The operation never races the writer — its
    /// epoch's page versions are immutable — so the only reason to loop is
    /// the cold [`StorageError::SnapshotRetired`] fallback (the writer
    /// committed past the bounded version chain mid-operation), in which
    /// case we re-pin a fresh epoch after a jittered backoff.
    fn read<R>(
        &self,
        f: impl Fn(&ReadCtx<'_, EpochView<'_>>) -> CrimsonResult<R>,
    ) -> CrimsonResult<R> {
        let attempts = self.retry.attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                // Count the re-pin in the pool's shared statistics: the
                // concurrency harnesses assert this stays flat (zero) under
                // a continuously committing writer.
                self.db.note_snapshot_retry();
                // Back off before re-pinning so the fresh epoch has a full
                // version window ahead of it; per-reader salt keeps
                // concurrent readers from phase-locking on the same
                // schedule.
                self.retry.backoff(attempt, self.salt);
            }
            let pin = self.db.pin_epoch();
            let out = self
                .db
                .at_epoch(&pin)
                .map_err(CrimsonError::from)
                .and_then(|view| {
                    let ctx = ReadCtx {
                        db: &view,
                        tables: self.tables,
                        records: &self.records,
                        entries: &self.entries,
                    };
                    f(&ctx)
                });
            match out {
                Err(e) if snapshot_retired(&e) => last = e.to_string(),
                other => return other,
            }
        }
        // Every pinned attempt outlived its version chain — the writer
        // committed more than the chain capacity of versions of some page
        // this operation touches, every time. Report Busy rather than
        // serving a possibly-torn value; the stress harness shows this is
        // unreachable at the current chain depth.
        self.db.note_snapshot_retry();
        Err(CrimsonError::Busy(format!(
            "read re-pinned {attempts} times against a continuously committing writer; \
             the last attempt failed with: {last}"
        )))
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Look up a tree by name.
    pub fn find_tree(&self, name: &str) -> CrimsonResult<Option<TreeRecord>> {
        self.read(|ctx| ctx.find_tree(name))
    }

    /// Look up a tree by name, failing when absent.
    pub fn tree_by_name(&self, name: &str) -> CrimsonResult<TreeRecord> {
        self.read(|ctx| ctx.tree_by_name(name))
    }

    /// Look up a tree by handle.
    pub fn tree_record(&self, handle: TreeHandle) -> CrimsonResult<TreeRecord> {
        self.read(|ctx| ctx.tree_record(handle))
    }

    /// All trees committed so far.
    pub fn list_trees(&self) -> CrimsonResult<Vec<TreeRecord>> {
        self.read(|ctx| ctx.list_trees())
    }

    // ------------------------------------------------------------------
    // Nodes, frames, species
    // ------------------------------------------------------------------

    /// Fetch a node row (through this reader's record cache).
    pub fn node_record(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        self.read(|ctx| ctx.node_record(id))
    }

    /// Fetch a frame row.
    pub fn frame_record(&self, id: StoredFrameId) -> CrimsonResult<FrameRecord> {
        self.read(|ctx| ctx.frame_record(id))
    }

    /// Children of a stored node (via the parent index).
    pub fn children(&self, id: StoredNodeId) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.children(id))
    }

    /// All leaf node ids of a tree.
    pub fn leaves(&self, handle: TreeHandle) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.leaves(handle))
    }

    /// The leaf node a species name maps to in the given tree, if any.
    pub fn species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<Option<StoredNodeId>> {
        self.read(|ctx| ctx.species_node(handle, name))
    }

    /// The leaf node a species name maps to, failing when absent.
    pub fn require_species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.require_species_node(handle, name))
    }

    /// Sequences stored for the given species names.
    pub fn sequences_for(
        &self,
        handle: TreeHandle,
        names: &[String],
    ) -> CrimsonResult<HashMap<String, String>> {
        self.read(|ctx| ctx.sequences_for(handle, names))
    }

    /// Number of species rows stored for a tree.
    pub fn species_count(&self, handle: TreeHandle) -> CrimsonResult<usize> {
        self.read(|ctx| ctx.species_count(handle))
    }

    // ------------------------------------------------------------------
    // Structure queries
    // ------------------------------------------------------------------

    /// The packed `[pre, end]` interval of a stored node.
    pub fn interval_of(&self, id: StoredNodeId) -> CrimsonResult<(u32, u32)> {
        self.read(|ctx| ctx.interval_of(id))
    }

    /// Least common ancestor over the interval index (see
    /// [`Repository::lca`]).
    pub fn lca(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.lca(a, b))
    }

    /// Ancestor-or-self test: two interval lookups, two comparisons.
    pub fn is_ancestor(&self, ancestor: StoredNodeId, node: StoredNodeId) -> CrimsonResult<bool> {
        self.read(|ctx| ctx.is_ancestor(ancestor, node))
    }

    /// Reference LCA over the stored hierarchical Dewey labels (see
    /// [`Repository::lca_label_walk`]); kept on the reader so the
    /// concurrency stress harness can cross-validate under load.
    pub fn lca_label_walk(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.read(|ctx| ctx.lca_label_walk(a, b))
    }

    /// Minimal spanning clade (one LCA + one interval range scan).
    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.minimal_spanning_clade(nodes))
    }

    /// Reference spanning clade (label-walk LCA + BFS row fetches).
    pub fn minimal_spanning_clade_reference(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.minimal_spanning_clade_reference(nodes))
    }

    /// Tree projection onto a leaf selection (see [`Repository::project`]).
    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project(handle, leaves))
    }

    /// Reference projection (per-pair label walks, uncached rows).
    pub fn project_reference(
        &self,
        handle: TreeHandle,
        leaves: &[StoredNodeId],
    ) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project_reference(handle, leaves))
    }

    /// Project by species names.
    pub fn project_species(&self, handle: TreeHandle, names: &[&str]) -> CrimsonResult<Tree> {
        self.read(|ctx| ctx.project_species(handle, names))
    }

    /// Tree pattern match (projection + comparison).
    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        self.read(|ctx| ctx.pattern_match(handle, pattern))
    }

    // ------------------------------------------------------------------
    // Sampling (deterministic per seed, identical to the writer's draws)
    // ------------------------------------------------------------------

    /// Execute a sampling strategy, returning the selected leaf nodes.
    pub fn sample(
        &self,
        handle: TreeHandle,
        strategy: &crate::sampling::SamplingStrategy,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample(handle, strategy, seed))
    }

    /// Uniformly sample `k` distinct species from the tree.
    pub fn sample_uniform(
        &self,
        handle: TreeHandle,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_uniform(handle, k, seed))
    }

    /// Sample `k` species with respect to evolutionary time `time`.
    pub fn sample_by_time(
        &self,
        handle: TreeHandle,
        time: f64,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_by_time(handle, time, k, seed))
    }

    /// The evolutionary-time frontier (see [`Repository::time_frontier`]).
    pub fn time_frontier(&self, handle: TreeHandle, time: f64) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.time_frontier(handle, time))
    }

    /// Resolve an explicit list of species names to leaf nodes.
    pub fn sample_by_names(
        &self,
        handle: TreeHandle,
        names: &[&str],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.read(|ctx| ctx.sample_by_names(handle, names))
    }

    /// The names of a set of stored leaf nodes.
    pub fn names_of(&self, nodes: &[StoredNodeId]) -> CrimsonResult<Vec<String>> {
        self.read(|ctx| ctx.names_of(nodes))
    }

    // ------------------------------------------------------------------
    // Index-native tree comparison
    // ------------------------------------------------------------------

    /// Compare two stored trees inside the interval index (see
    /// [`Repository::compare_stored`]).
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<reconstruction::compare::SourceComparison> {
        self.read(|ctx| ctx.compare_stored(a, b, triplets))
    }

    /// Compare a stored tree (reference side) against an in-memory tree.
    pub fn compare_stored_with_tree(
        &self,
        a: TreeHandle,
        b: &Tree,
        triplets: bool,
    ) -> CrimsonResult<reconstruction::compare::SourceComparison> {
        self.read(|ctx| ctx.compare_stored_with_tree(a, b, triplets))
    }

    // ------------------------------------------------------------------
    // Content addresses
    // ------------------------------------------------------------------

    /// The content-address summary row of a tree (see
    /// [`Repository::tree_stats`]).
    pub fn tree_stats(
        &self,
        handle: TreeHandle,
    ) -> CrimsonResult<Option<crate::repository::TreeStatsRecord>> {
        self.read(|ctx| ctx.tree_stats(handle))
    }

    /// O(1) whole-tree equality via stored root hashes.
    pub fn trees_equal(&self, a: TreeHandle, b: TreeHandle) -> CrimsonResult<bool> {
        self.read(|ctx| ctx.trees_equal(a, b))
    }

    /// O(1) subtree equality between two stored nodes.
    pub fn subtrees_equal(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<bool> {
        self.read(|ctx| ctx.subtrees_equal(a, b))
    }

    /// The canonical clade hash of the subtree rooted at a stored node.
    pub fn subtree_hash(&self, id: StoredNodeId) -> CrimsonResult<labeling::CladeHash> {
        self.read(|ctx| ctx.node_content_hash(id))
    }

    /// Stored trees whose content address equals `hash` (no-scan lookup).
    pub fn trees_with_root_hash(
        &self,
        hash: labeling::CladeHash,
    ) -> CrimsonResult<Vec<TreeHandle>> {
        self.read(|ctx| ctx.trees_with_root_hash(hash))
    }

    /// Every published stored subtree whose content address equals `hash`.
    pub fn subtrees_with_hash(
        &self,
        hash: labeling::CladeHash,
    ) -> CrimsonResult<Vec<(TreeHandle, u32, u32)>> {
        self.read(|ctx| ctx.subtrees_with_hash(hash))
    }

    /// The structural-sharing reference rows of a cold tree.
    pub fn clade_refs_of(&self, handle: TreeHandle) -> CrimsonResult<Vec<labeling::CladeRef>> {
        self.read(|ctx| ctx.clade_refs_of(handle))
    }

    /// Aggregate sharing statistics across the repository snapshot.
    pub fn content_stats(&self) -> CrimsonResult<crate::content::ContentStats> {
        self.read(|ctx| ctx.content_stats())
    }

    // ------------------------------------------------------------------
    // Experiments
    // ------------------------------------------------------------------

    /// Evaluate one experiment grid cell against this snapshot — the unit
    /// of work [`crate::experiment::ExperimentRunner`] fans across workers.
    pub(crate) fn evaluate_cell(
        &self,
        gold: TreeHandle,
        method: crate::experiment::Method,
        distance_source: crate::experiment::DistanceSource,
        strategy: &crate::sampling::SamplingStrategy,
        seed: u64,
        compute_triplets: bool,
    ) -> CrimsonResult<crate::experiment::CellEval> {
        self.read(|ctx| {
            ctx.evaluate_cell(
                gold,
                method,
                distance_source,
                strategy,
                seed,
                compute_triplets,
            )
        })
    }

    /// All persisted experiments, in id order.
    pub fn list_experiments(&self) -> CrimsonResult<Vec<crate::experiment::ExperimentRecord>> {
        self.read(|ctx| ctx.list_experiments())
    }

    /// Look up an experiment by name, failing when absent.
    pub fn experiment_by_name(
        &self,
        name: &str,
    ) -> CrimsonResult<crate::experiment::ExperimentRecord> {
        self.read(|ctx| ctx.experiment_by_name(name))
    }

    /// All result rows of an experiment, in grid-cell order.
    pub fn experiment_results(
        &self,
        experiment: u64,
    ) -> CrimsonResult<Vec<crate::experiment::ExperimentResult>> {
        self.read(|ctx| ctx.experiment_results(experiment))
    }

    /// The per-clade agreement rows of one result.
    pub fn experiment_clades(
        &self,
        result: u64,
    ) -> CrimsonResult<Vec<crate::experiment::CladeRow>> {
        self.read(|ctx| ctx.experiment_clades(result))
    }

    // ------------------------------------------------------------------
    // History and integrity
    // ------------------------------------------------------------------

    /// All recorded queries in execution order.
    pub fn query_history(&self) -> CrimsonResult<Vec<HistoryEntry>> {
        self.read(|ctx| ctx.query_history())
    }

    /// Entries of a given kind, in execution order.
    pub fn history_of_kind(&self, kind: QueryKind) -> CrimsonResult<Vec<HistoryEntry>> {
        self.read(|ctx| ctx.history_of_kind(kind))
    }

    /// Fetch one history entry by id.
    pub fn history_entry(&self, id: u64) -> CrimsonResult<HistoryEntry> {
        self.read(|ctx| ctx.history_entry(id))
    }

    /// Cross-table invariant check over the committed state.
    pub fn integrity_check(&self) -> CrimsonResult<IntegrityReport> {
        self.read(|ctx| ctx.integrity_check())
    }
}

/// `true` when the error is the (cold) snapshot-retired signal — the only
/// failure [`RepositoryReader::read`] re-pins on.
fn snapshot_retired(e: &CrimsonError) -> bool {
    matches!(
        e,
        CrimsonError::Storage(StorageError::SnapshotRetired { .. })
    )
}

/// A [`RepositoryReader`] frozen at one snapshot epoch, created by
/// [`RepositoryReader::pin`]. Every query evaluates against the same
/// committed state however many commits land while the pin is held, which
/// makes a *group* of reads mutually consistent — the property the batch
/// executor and the experiment sweep rely on. Shares the parent reader's
/// row caches.
///
/// Holding the pin keeps the epoch's page versions alive in the pool, so
/// drop it promptly when done. A query can still fail with
/// [`StorageError::SnapshotRetired`] if the writer commits more versions of
/// a touched page than the bounded chain keeps (unreachable in the stress
/// harness at the current depth); callers who need to absorb even that fall
/// back to the parent reader's re-pinning methods.
pub struct PinnedReader<'a> {
    reader: &'a RepositoryReader,
    _pin: storage::EpochPin,
    view: EpochView<'a>,
}

impl std::fmt::Debug for PinnedReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PinnedReader")
            .field("epoch", &self.view.epoch())
            .finish()
    }
}

impl PinnedReader<'_> {
    /// The pinned snapshot epoch (the commit sequence this view reads as
    /// of).
    pub fn epoch(&self) -> u64 {
        self.view.epoch()
    }

    /// Run `f` against the pinned epoch view with the parent reader's
    /// caches.
    fn run<R>(
        &self,
        f: impl FnOnce(&ReadCtx<'_, EpochView<'_>>) -> CrimsonResult<R>,
    ) -> CrimsonResult<R> {
        let ctx = ReadCtx {
            db: &self.view,
            tables: self.reader.tables,
            records: &self.reader.records,
            entries: &self.reader.entries,
        };
        f(&ctx)
    }

    /// Look up a tree by name.
    pub fn find_tree(&self, name: &str) -> CrimsonResult<Option<TreeRecord>> {
        self.run(|ctx| ctx.find_tree(name))
    }

    /// Look up a tree by name, failing when absent.
    pub fn tree_by_name(&self, name: &str) -> CrimsonResult<TreeRecord> {
        self.run(|ctx| ctx.tree_by_name(name))
    }

    /// All trees committed as of the pinned epoch.
    pub fn list_trees(&self) -> CrimsonResult<Vec<TreeRecord>> {
        self.run(|ctx| ctx.list_trees())
    }

    /// Fetch a node row (through the parent reader's record cache).
    pub fn node_record(&self, id: StoredNodeId) -> CrimsonResult<NodeRecord> {
        self.run(|ctx| ctx.node_record(id))
    }

    /// All leaf node ids of a tree.
    pub fn leaves(&self, handle: TreeHandle) -> CrimsonResult<Vec<StoredNodeId>> {
        self.run(|ctx| ctx.leaves(handle))
    }

    /// The leaf node a species name maps to in the given tree, if any.
    pub fn species_node(
        &self,
        handle: TreeHandle,
        name: &str,
    ) -> CrimsonResult<Option<StoredNodeId>> {
        self.run(|ctx| ctx.species_node(handle, name))
    }

    /// Least common ancestor over the interval index.
    pub fn lca(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.run(|ctx| ctx.lca(a, b))
    }

    /// Ancestor-or-self test.
    pub fn is_ancestor(&self, ancestor: StoredNodeId, node: StoredNodeId) -> CrimsonResult<bool> {
        self.run(|ctx| ctx.is_ancestor(ancestor, node))
    }

    /// Reference LCA over the stored hierarchical labels.
    pub fn lca_label_walk(&self, a: StoredNodeId, b: StoredNodeId) -> CrimsonResult<StoredNodeId> {
        self.run(|ctx| ctx.lca_label_walk(a, b))
    }

    /// Minimal spanning clade (one LCA + one interval range scan).
    pub fn minimal_spanning_clade(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.run(|ctx| ctx.minimal_spanning_clade(nodes))
    }

    /// Reference spanning clade (label-walk LCA + BFS row fetches).
    pub fn minimal_spanning_clade_reference(
        &self,
        nodes: &[StoredNodeId],
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.run(|ctx| ctx.minimal_spanning_clade_reference(nodes))
    }

    /// Tree projection onto a leaf selection.
    pub fn project(&self, handle: TreeHandle, leaves: &[StoredNodeId]) -> CrimsonResult<Tree> {
        self.run(|ctx| ctx.project(handle, leaves))
    }

    /// Reference projection (per-pair label walks, uncached rows).
    pub fn project_reference(
        &self,
        handle: TreeHandle,
        leaves: &[StoredNodeId],
    ) -> CrimsonResult<Tree> {
        self.run(|ctx| ctx.project_reference(handle, leaves))
    }

    /// Tree pattern match (projection + comparison).
    pub fn pattern_match(&self, handle: TreeHandle, pattern: &Tree) -> CrimsonResult<PatternMatch> {
        self.run(|ctx| ctx.pattern_match(handle, pattern))
    }

    /// Compare two stored trees inside the interval index.
    pub fn compare_stored(
        &self,
        a: TreeHandle,
        b: TreeHandle,
        triplets: bool,
    ) -> CrimsonResult<reconstruction::compare::SourceComparison> {
        self.run(|ctx| ctx.compare_stored(a, b, triplets))
    }

    /// The names of a set of stored leaf nodes.
    pub fn names_of(&self, nodes: &[StoredNodeId]) -> CrimsonResult<Vec<String>> {
        self.run(|ctx| ctx.names_of(nodes))
    }

    /// Look up a tree by handle.
    pub fn tree_record(&self, handle: TreeHandle) -> CrimsonResult<TreeRecord> {
        self.run(|ctx| ctx.tree_record(handle))
    }

    /// Uniformly sample `k` distinct species from the tree (deterministic
    /// per seed, identical to the writer's draws).
    pub fn sample_uniform(
        &self,
        handle: TreeHandle,
        k: usize,
        seed: u64,
    ) -> CrimsonResult<Vec<StoredNodeId>> {
        self.run(|ctx| ctx.sample_uniform(handle, k, seed))
    }

    /// Cross-table invariant check over the pinned committed state.
    pub fn integrity_check(&self) -> CrimsonResult<IntegrityReport> {
        self.run(|ctx| ctx.integrity_check())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use phylo::builder::figure1_tree;
    use tempfile::tempdir;

    #[test]
    fn reader_matches_writer_on_quiet_repository() {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("r.crimson"),
            RepositoryOptions {
                frame_depth: 2,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let tree = figure1_tree();
        let handle = repo.load_tree("fig1", &tree).unwrap();
        let reader = repo.reader().unwrap();

        assert_eq!(reader.tree_by_name("fig1").unwrap().handle, handle);
        assert_eq!(reader.leaves(handle).unwrap().len(), 5);
        let lla = reader.require_species_node(handle, "Lla").unwrap();
        let spy = reader.require_species_node(handle, "Spy").unwrap();
        assert_eq!(
            reader.lca(lla, spy).unwrap(),
            repo.lca(lla, spy).unwrap(),
            "reader and writer disagree on an LCA"
        );
        assert_eq!(
            reader.lca(lla, spy).unwrap(),
            reader.lca_label_walk(lla, spy).unwrap()
        );
        let clade = reader.minimal_spanning_clade(&[lla, spy]).unwrap();
        assert_eq!(clade, repo.minimal_spanning_clade(&[lla, spy]).unwrap());
        let p = reader
            .project_species(handle, &["Bha", "Lla", "Syn"])
            .unwrap();
        assert_eq!(p.leaf_count(), 3);
        reader.integrity_check().unwrap();
    }

    #[test]
    fn reader_does_not_see_uncommitted_tree() {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("r.crimson"),
            RepositoryOptions {
                frame_depth: 2,
                buffer_pool_pages: 256,
                ..Default::default()
            },
        )
        .unwrap();
        repo.load_tree("first", &figure1_tree()).unwrap();
        let reader = repo.reader().unwrap();
        assert_eq!(reader.list_trees().unwrap().len(), 1);

        // Open a transaction by hand and load inside it: the reader must
        // keep seeing exactly one tree until the commit.
        repo.db.begin().unwrap();
        repo.load_tree("second", &figure1_tree()).unwrap();
        assert_eq!(repo.list_trees().unwrap().len(), 2, "writer sees its load");
        assert_eq!(
            reader.list_trees().unwrap().len(),
            1,
            "reader must not see the in-flight load"
        );
        assert!(reader.find_tree("second").unwrap().is_none());
        repo.db.commit().unwrap();
        assert_eq!(reader.list_trees().unwrap().len(), 2);
        assert!(reader.find_tree("second").unwrap().is_some());
    }
}
