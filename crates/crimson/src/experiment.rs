//! The persistent experiment subsystem: stored, queryable, re-runnable
//! evaluation sweeps.
//!
//! The paper's Benchmark Manager (§2.2) samples the gold standard, projects
//! the induced subtree, reconstructs a tree and scores it — and then threw
//! everything but a summary row away. Here "run an experiment" is a stored
//! artifact instead:
//!
//! * every reconstructed tree is persisted as an ordinary stored tree
//!   (through the bulk-load fast path), so it answers LCA/projection/
//!   pattern-match queries and index-native comparisons like any other tree;
//! * spec parameters, per-stage timings, per-method distance metrics and
//!   **per-clade agreement rows** land in the `experiments` /
//!   `experiment_results` / `experiment_clades` catalog tables;
//! * the whole sweep — trees, rows, history record — commits as **one
//!   atomic transaction**: a crash mid-experiment leaves nothing behind;
//! * the (method × sampling × replicate) grid fans out across scoped worker
//!   threads reading a committed snapshot ([`crate::reader`]) while this
//!   writer persists finished runs, in the same spirit as
//!   [`crate::batch::QueryBatch`];
//! * all randomness — sampling draws, replicate seeds — derives
//!   deterministically from the spec's single `seed`, so the same spec
//!   always produces identical metrics.
//!
//! The transient single-run path survives as [`ExperimentRunner::evaluate`]
//! (recorded under [`QueryKind::Benchmark`] like the old manager); persisted
//! sweeps are recorded under [`QueryKind::Experiment`] with their spec, seed
//! and tree handles fetchable from the history like every other kind.

use crate::error::{CrimsonError, CrimsonResult};
use crate::history::QueryKind;
use crate::repository::{
    ReadCtx, Repository, StoredNodeId, TreeHandle, TreeRecord, BULK_FILL, TREE_SHIFT,
};
use crate::sampling::SamplingStrategy;
use phylo::distance::patristic_matrix;
use phylo::Tree;
use reconstruction::compare::{compare_sources, CladeAgreement, RfResult, SourceComparison};
use reconstruction::distance::{jc_corrected_matrix, k2p_corrected_matrix, p_distance_matrix};
use reconstruction::{neighbor_joining, upgma};
use serde::{Deserialize, Serialize};
use serde_json::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;
use storage::db::DbRead;
use storage::value::Value;

/// Reconstruction algorithm to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Method {
    /// UPGMA hierarchical clustering (assumes a molecular clock).
    Upgma,
    /// Neighbor-Joining (assumes additivity only).
    NeighborJoining,
}

impl Method {
    /// Short name used in reports and catalog rows; inverse of
    /// [`Method::parse`].
    pub fn name(self) -> &'static str {
        match self {
            Method::Upgma => "UPGMA",
            Method::NeighborJoining => "NJ",
        }
    }

    /// Parse a stored method name.
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "UPGMA" => Method::Upgma,
            "NJ" => Method::NeighborJoining,
            _ => return None,
        })
    }
}

/// Where the algorithm's input distances come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceSource {
    /// True patristic distances read off the projected gold standard — the
    /// noise-free upper bound on algorithm performance.
    TruePatristic,
    /// Raw p-distances computed from stored sequences.
    SequencesP,
    /// Jukes–Cantor corrected distances from stored sequences.
    SequencesJc,
    /// Kimura two-parameter corrected distances from stored sequences.
    SequencesK2p,
}

impl DistanceSource {
    /// Short name used in reports and catalog rows; inverse of
    /// [`DistanceSource::parse`].
    pub fn name(self) -> &'static str {
        match self {
            DistanceSource::TruePatristic => "true-patristic",
            DistanceSource::SequencesP => "seq-p",
            DistanceSource::SequencesJc => "seq-jc",
            DistanceSource::SequencesK2p => "seq-k2p",
        }
    }

    /// Parse a stored distance-source name.
    pub fn parse(s: &str) -> Option<DistanceSource> {
        Some(match s {
            "true-patristic" => DistanceSource::TruePatristic,
            "seq-p" => DistanceSource::SequencesP,
            "seq-jc" => DistanceSource::SequencesJc,
            "seq-k2p" => DistanceSource::SequencesK2p,
            _ => return None,
        })
    }
}

/// Timings of the individual pipeline stages, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// Sampling time.
    pub sampling_ms: f64,
    /// Projection time.
    pub projection_ms: f64,
    /// Distance-matrix construction time.
    pub distances_ms: f64,
    /// Reconstruction time.
    pub reconstruction_ms: f64,
    /// Comparison time.
    pub comparison_ms: f64,
}

/// Specification of one transient evaluation run (the old Benchmark
/// Manager's unit of work).
#[derive(Debug, Clone)]
pub struct EvalSpec {
    /// How to choose the species sample.
    pub strategy: SamplingStrategy,
    /// The algorithm under evaluation.
    pub method: Method,
    /// The algorithm's input distances.
    pub distance_source: DistanceSource,
    /// Whether to also compute the (cubic-time) triplet distance.
    pub compute_triplets: bool,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for EvalSpec {
    fn default() -> Self {
        EvalSpec {
            strategy: SamplingStrategy::Uniform { k: 32 },
            method: Method::NeighborJoining,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 0,
        }
    }
}

/// Result of one transient evaluation run.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Number of species in the sample.
    pub sample_size: usize,
    /// The evaluated algorithm.
    pub method: Method,
    /// The input distance source.
    pub distance_source: DistanceSource,
    /// Unrooted Robinson–Foulds comparison against the projected truth.
    pub rf: RfResult,
    /// Rooted (clade-based) Robinson–Foulds comparison.
    pub rooted_rf: RfResult,
    /// Triplet distance, when requested.
    pub triplet: Option<f64>,
    /// Per-clade agreement of the reconstruction against the projection.
    pub clades: Vec<CladeAgreement>,
    /// Stage timings.
    pub timings: StageTimings,
    /// The projected gold-standard subtree (the reference answer).
    pub reference: Tree,
    /// The reconstructed tree.
    pub reconstruction: Tree,
}

impl EvalReport {
    /// One line in the style the experiment tables use.
    pub fn summary_row(&self) -> String {
        format!(
            "{:>5} taxa  {:<6} {:<14} RF={:<4} nRF={:.3}  rootedRF={:<4} time[s/p/d/r/c]={:.1}/{:.1}/{:.1}/{:.1}/{:.1}ms",
            self.sample_size,
            self.method.name(),
            self.distance_source.name(),
            self.rf.distance,
            self.rf.normalized,
            self.rooted_rf.distance,
            self.timings.sampling_ms,
            self.timings.projection_ms,
            self.timings.distances_ms,
            self.timings.reconstruction_ms,
            self.timings.comparison_ms,
        )
    }
}

/// Specification of a persisted experiment sweep: the full
/// (method × sampling × replicate) grid, one seed, one distance source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Unique experiment name (also prefixes the reconstructions' tree
    /// names).
    pub name: String,
    /// The algorithms under evaluation.
    pub methods: Vec<Method>,
    /// The sampling strategies defining the sampled subtrees.
    pub strategies: Vec<SamplingStrategy>,
    /// Independent replicates per (method, strategy) pair.
    pub replicates: usize,
    /// The algorithms' input distances.
    pub distance_source: DistanceSource,
    /// Whether to also compute the (cubic-time) triplet distance.
    pub compute_triplets: bool,
    /// The single root seed every cell seed derives from.
    pub seed: u64,
    /// Worker threads evaluating grid cells against committed snapshots.
    pub workers: usize,
    /// Commit every finished grid cell as its own transaction instead of
    /// one sweep-wide transaction. Cell commits ride the storage engine's
    /// group-commit path (concurrent with evaluation, one fsync per batch
    /// under [`crate::Durability::Sync`], none until the next group fsync
    /// under `Async`), results become visible to readers as they land, and
    /// a provisional catalog row keeps the results→experiments linkage
    /// intact throughout. On a mid-sweep failure the committed result and
    /// clade rows are cleaned up, but reconstructed trees of completed
    /// cells survive as ordinary trees — resume under a fresh name.
    /// Defaults to `false` (the historical all-or-nothing sweep); absent in
    /// stored specs from older repositories.
    #[serde(default)]
    pub cell_commits: bool,
}

/// One persisted experiment (a row of the `experiments` table).
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Stable experiment id.
    pub id: u64,
    /// Unique name.
    pub name: String,
    /// The gold-standard tree the sweep evaluated against.
    pub gold: TreeHandle,
    /// The full spec, re-runnable as-is.
    pub spec: ExperimentSpec,
    /// Root seed (redundant with `spec.seed`, indexed for convenience).
    pub seed: u64,
    /// Number of result rows (grid cells).
    pub runs: u64,
    /// Wall-clock milliseconds of the whole sweep.
    pub wall_ms: f64,
}

/// One persisted grid cell (a row of the `experiment_results` table).
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Stable result id.
    pub id: u64,
    /// Owning experiment.
    pub experiment: u64,
    /// The evaluated algorithm.
    pub method: Method,
    /// The sampling strategy of this cell.
    pub strategy: SamplingStrategy,
    /// Index of the strategy within the spec's `strategies`.
    pub strategy_index: usize,
    /// Replicate number within the (method, strategy) pair.
    pub replicate: usize,
    /// The cell's derived seed (deterministic in the spec seed).
    pub cell_seed: u64,
    /// Number of species in the sample.
    pub sample_size: usize,
    /// Handle of the persisted reconstructed tree.
    pub recon: TreeHandle,
    /// Unrooted Robinson–Foulds against the projected truth.
    pub rf: RfResult,
    /// Rooted Robinson–Foulds.
    pub rooted_rf: RfResult,
    /// Triplet distance, when the spec requested it.
    pub triplet: Option<f64>,
    /// Stage timings measured in the worker.
    pub timings: StageTimings,
    /// Milliseconds spent persisting this cell (tree + rows).
    pub persist_ms: f64,
}

/// One per-clade agreement row (a row of the `experiment_clades` table):
/// whether the clade rooted at `node` of the stored reconstruction also
/// exists in the projected gold standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CladeRow {
    /// Owning result.
    pub result: u64,
    /// Stored node id of the clade root in the reconstructed tree.
    pub node: StoredNodeId,
    /// Number of leaves in the clade.
    pub size: u32,
    /// `true` when the projection contains the same clade.
    pub agrees: bool,
}

/// Derive the sampling seed of grid cell (strategy `s`, replicate `r`) from
/// the spec's root seed — a splitmix64 chain, so every cell draws an
/// independent, reproducible stream and the same spec always produces the
/// same metrics. The method index is deliberately *not* mixed in: all
/// methods of a (strategy, replicate) cell evaluate the **same** sample, so
/// their metrics are paired and their stored reconstructions share a leaf
/// set (comparable index-natively).
pub fn cell_seed(seed: u64, strategy: usize, replicate: usize) -> u64 {
    fn splitmix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    let mut z = splitmix(seed);
    z = splitmix(z ^ strategy as u64);
    splitmix(z ^ replicate as u64)
}

/// The worker-side outcome of one grid cell: everything the main thread
/// needs to persist it.
#[derive(Debug)]
pub(crate) struct CellEval {
    pub sample_size: usize,
    pub reference: Tree,
    pub reconstruction: Tree,
    pub rf: RfResult,
    pub rooted_rf: RfResult,
    pub triplet: Option<f64>,
    pub clades: Vec<CladeAgreement>,
    pub timings: StageTimings,
}

impl<D: DbRead> ReadCtx<'_, D> {
    /// Evaluate one (method, strategy, seed) cell: sample → project →
    /// distances → reconstruct → compare. Pure read; runs identically on
    /// the writer and on snapshot readers.
    pub(crate) fn evaluate_cell(
        &self,
        gold: TreeHandle,
        method: Method,
        distance_source: DistanceSource,
        strategy: &SamplingStrategy,
        seed: u64,
        compute_triplets: bool,
    ) -> CrimsonResult<CellEval> {
        let mut timings = StageTimings::default();

        let start = Instant::now();
        let sample = self.sample(gold, strategy, seed)?;
        timings.sampling_ms = start.elapsed().as_secs_f64() * 1e3;
        if sample.len() < 3 {
            return Err(CrimsonError::InvalidSample(
                "evaluation runs need at least 3 sampled species".to_string(),
            ));
        }

        let start = Instant::now();
        let reference = self.project(gold, &sample)?;
        timings.projection_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let names = self.names_of(&sample)?;
        let matrix = match distance_source {
            DistanceSource::TruePatristic => patristic_matrix(&reference)?,
            DistanceSource::SequencesP => p_distance_matrix(&self.sequences_for(gold, &names)?)?,
            DistanceSource::SequencesJc => jc_corrected_matrix(&self.sequences_for(gold, &names)?)?,
            DistanceSource::SequencesK2p => {
                k2p_corrected_matrix(&self.sequences_for(gold, &names)?)?
            }
        };
        timings.distances_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let reconstruction = match method {
            Method::Upgma => upgma(&matrix)?,
            Method::NeighborJoining => neighbor_joining(&matrix)?,
        };
        timings.reconstruction_ms = start.elapsed().as_secs_f64() * 1e3;

        // One streaming pass per tree yields RF (both flavours), triplets
        // and the per-clade agreement of the reconstruction — the same
        // engine the index-native stored-tree comparison runs on. When the
        // reconstruction recovers the reference exactly, the canonical root
        // hashes match and the whole comparison (including the O(n³)
        // triplet count) is synthesized in O(n) instead.
        let start = Instant::now();
        let cmp: SourceComparison = match crate::compare::equal_tree_comparison(
            &reference,
            &reconstruction,
            compute_triplets,
        ) {
            Some(cmp) => cmp,
            None => compare_sources::<_, _, CrimsonError>(
                &reference,
                &reconstruction,
                compute_triplets,
            )?,
        };
        timings.comparison_ms = start.elapsed().as_secs_f64() * 1e3;

        Ok(CellEval {
            sample_size: sample.len(),
            reference,
            reconstruction,
            rf: cmp.rf,
            rooted_rf: cmp.rooted_rf,
            triplet: cmp.triplet,
            clades: cmp.clades,
            timings,
        })
    }

    // ------------------------------------------------------------------
    // Experiment catalog reads
    // ------------------------------------------------------------------

    /// All persisted experiments, in id order.
    pub fn list_experiments(&self) -> CrimsonResult<Vec<ExperimentRecord>> {
        let mut rows = self.db.scan(self.tables.experiments)?;
        rows.sort_by_key(|(_, row)| row.values[0].as_int().unwrap_or(0));
        rows.iter()
            .map(|(_, row)| decode_experiment_row(row))
            .collect()
    }

    /// Look up an experiment by name.
    pub fn find_experiment(&self, name: &str) -> CrimsonResult<Option<ExperimentRecord>> {
        let rows = self
            .db
            .lookup_rows(self.tables.experiments, "name", &Value::text(name))?;
        rows.into_iter()
            .next()
            .map(|(_, row)| decode_experiment_row(&row))
            .transpose()
    }

    /// Look up an experiment by name, failing when absent.
    pub fn experiment_by_name(&self, name: &str) -> CrimsonResult<ExperimentRecord> {
        self.find_experiment(name)?
            .ok_or_else(|| CrimsonError::UnknownExperiment(name.to_string()))
    }

    /// All result rows of an experiment, in result-id (= grid cell) order.
    pub fn experiment_results(&self, experiment: u64) -> CrimsonResult<Vec<ExperimentResult>> {
        let rows = self.db.lookup_rows(
            self.tables.experiment_results,
            "exp_id",
            &Value::Int(experiment as i64),
        )?;
        let mut out: Vec<ExperimentResult> = rows
            .iter()
            .map(|(_, row)| decode_result_row(row))
            .collect::<CrimsonResult<_>>()?;
        out.sort_by_key(|r| r.id);
        Ok(out)
    }

    /// The per-clade agreement rows of one result, in node order.
    pub fn experiment_clades(&self, result: u64) -> CrimsonResult<Vec<CladeRow>> {
        let rows = self.db.lookup_rows(
            self.tables.experiment_clades,
            "result_id",
            &Value::Int(result as i64),
        )?;
        let mut out: Vec<CladeRow> = rows
            .iter()
            .map(|(_, row)| CladeRow {
                result: row.values[0].as_int().unwrap_or(0) as u64,
                node: StoredNodeId(row.values[1].as_int().unwrap_or(0) as u64),
                size: row.values[2].as_int().unwrap_or(0) as u32,
                agrees: row.values[3].as_bool().unwrap_or(false),
            })
            .collect();
        out.sort_by_key(|c| c.node);
        Ok(out)
    }
}

fn decode_experiment_row(row: &storage::schema::Row) -> CrimsonResult<ExperimentRecord> {
    let spec_text = row.values[3].as_text().unwrap_or("");
    let spec: ExperimentSpec = serde_json::from_str(spec_text).map_err(|e| {
        CrimsonError::CorruptRepository(format!("experiment spec does not parse: {e}"))
    })?;
    Ok(ExperimentRecord {
        id: row.values[0].as_int().unwrap_or(0) as u64,
        name: row.values[1].as_text().unwrap_or("").to_string(),
        gold: TreeHandle(row.values[2].as_int().unwrap_or(0) as u64),
        spec,
        seed: row.values[4].as_int().unwrap_or(0) as u64,
        runs: row.values[5].as_int().unwrap_or(0) as u64,
        wall_ms: row.values[6].as_float().unwrap_or(0.0),
    })
}

fn decode_result_row(row: &storage::schema::Row) -> CrimsonResult<ExperimentResult> {
    let method_text = row.values[2].as_text().unwrap_or("");
    let method = Method::parse(method_text).ok_or_else(|| {
        CrimsonError::CorruptRepository(format!("unknown stored method `{method_text}`"))
    })?;
    let strategy: SamplingStrategy = serde_json::from_str(row.values[3].as_text().unwrap_or(""))
        .map_err(|e| {
            CrimsonError::CorruptRepository(format!("stored strategy does not parse: {e}"))
        })?;
    let rf_of = |d: usize, m: usize, s: usize| {
        let distance = row.values[d].as_int().unwrap_or(0) as usize;
        let max_distance = row.values[m].as_int().unwrap_or(0) as usize;
        RfResult {
            distance,
            max_distance,
            normalized: if max_distance == 0 {
                0.0
            } else {
                distance as f64 / max_distance as f64
            },
            shared: row.values[s].as_int().unwrap_or(0) as usize,
        }
    };
    Ok(ExperimentResult {
        id: row.values[0].as_int().unwrap_or(0) as u64,
        experiment: row.values[1].as_int().unwrap_or(0) as u64,
        method,
        strategy,
        strategy_index: row.values[4].as_int().unwrap_or(0) as usize,
        replicate: row.values[5].as_int().unwrap_or(0) as usize,
        cell_seed: row.values[6].as_int().unwrap_or(0) as u64,
        sample_size: row.values[7].as_int().unwrap_or(0) as usize,
        recon: TreeHandle(row.values[8].as_int().unwrap_or(0) as u64),
        rf: rf_of(9, 10, 11),
        rooted_rf: rf_of(12, 13, 14),
        triplet: row.values[15].as_float(),
        timings: StageTimings {
            sampling_ms: row.values[16].as_float().unwrap_or(0.0),
            projection_ms: row.values[17].as_float().unwrap_or(0.0),
            distances_ms: row.values[18].as_float().unwrap_or(0.0),
            reconstruction_ms: row.values[19].as_float().unwrap_or(0.0),
            comparison_ms: row.values[20].as_float().unwrap_or(0.0),
        },
        persist_ms: row.values[21].as_float().unwrap_or(0.0),
    })
}

/// One grid cell's coordinates and derived seed.
#[derive(Debug, Clone, Copy)]
struct Cell {
    mi: usize,
    si: usize,
    ri: usize,
    seed: u64,
}

/// The experiment runner: the Benchmark Manager's successor. Bound to one
/// gold-standard tree; [`ExperimentRunner::evaluate`] reproduces the old
/// transient run, [`ExperimentRunner::run`] executes and **persists** a
/// full parallel sweep.
pub struct ExperimentRunner<'a> {
    repo: &'a mut Repository,
    tree: TreeHandle,
}

impl<'a> ExperimentRunner<'a> {
    /// Create a runner for the given gold-standard tree.
    pub fn new(repo: &'a mut Repository, tree: TreeHandle) -> Self {
        ExperimentRunner { repo, tree }
    }

    /// Execute one transient evaluation run (not persisted beyond its
    /// history entry — the old `BenchmarkManager::run`).
    pub fn evaluate(&mut self, spec: &EvalSpec) -> CrimsonResult<EvalReport> {
        let eval = self.repo.ctx().evaluate_cell(
            self.tree,
            spec.method,
            spec.distance_source,
            &spec.strategy,
            spec.seed,
            spec.compute_triplets,
        )?;
        let report = EvalReport {
            sample_size: eval.sample_size,
            method: spec.method,
            distance_source: spec.distance_source,
            rf: eval.rf,
            rooted_rf: eval.rooted_rf,
            triplet: eval.triplet,
            clades: eval.clades,
            timings: eval.timings,
            reference: eval.reference,
            reconstruction: eval.reconstruction,
        };
        self.repo.record_query(
            QueryKind::Benchmark,
            json!({
                "tree": self.tree.0,
                "method": spec.method.name(),
                "distance_source": spec.distance_source.name(),
                "sample_size": report.sample_size,
                "seed": spec.seed,
            }),
            &format!(
                "{} on {} taxa: RF={} (normalized {:.3})",
                spec.method.name(),
                report.sample_size,
                report.rf.distance,
                report.rf.normalized
            ),
        )?;
        Ok(report)
    }

    /// Run the same transient specification for several methods — the
    /// head-to-head table the demo shows.
    pub fn evaluate_methods(
        &mut self,
        spec: &EvalSpec,
        methods: &[Method],
    ) -> CrimsonResult<Vec<EvalReport>> {
        methods
            .iter()
            .map(|m| {
                let mut s = spec.clone();
                s.method = *m;
                self.evaluate(&s)
            })
            .collect()
    }

    /// Execute and persist a full (method × sampling × replicate) sweep.
    ///
    /// Grid cells are evaluated by `spec.workers` scoped threads against a
    /// committed snapshot of the repository while this writer persists
    /// finished cells (reconstructed tree via the bulk-load path, result
    /// row, per-clade agreement rows) in deterministic cell order. The
    /// entire sweep — every tree, every row, the experiment record and its
    /// history entry — is one atomic transaction.
    pub fn run(&mut self, spec: &ExperimentSpec) -> CrimsonResult<ExperimentRecord> {
        let gold = self.tree;
        run_sweep(self.repo, gold, spec)
    }

    /// Re-run a persisted experiment's spec under a new name (against the
    /// same gold tree it originally ran on). The stored spec carries every
    /// parameter, so the new experiment reproduces the old one's metrics
    /// exactly.
    pub fn rerun(&mut self, existing: &str, new_name: &str) -> CrimsonResult<ExperimentRecord> {
        let record = self.repo.experiment_by_name(existing)?;
        let mut spec = record.spec;
        spec.name = new_name.to_string();
        run_sweep(self.repo, record.gold, &spec)
    }
}

fn validate_spec(spec: &ExperimentSpec) -> CrimsonResult<()> {
    if spec.name.is_empty() {
        return Err(CrimsonError::InvalidSample(
            "experiment name must not be empty".to_string(),
        ));
    }
    if spec.methods.is_empty() || spec.strategies.is_empty() || spec.replicates == 0 {
        return Err(CrimsonError::InvalidSample(
            "experiment grid is empty (methods × strategies × replicates)".to_string(),
        ));
    }
    Ok(())
}

fn run_sweep(
    repo: &mut Repository,
    gold: TreeHandle,
    spec: &ExperimentSpec,
) -> CrimsonResult<ExperimentRecord> {
    validate_spec(spec)?;
    if repo.db.in_transaction() {
        return Err(CrimsonError::InvalidSample(
            "experiments cannot join an open transaction (their workers read committed snapshots)"
                .to_string(),
        ));
    }
    if repo.find_experiment(&spec.name)?.is_some() {
        return Err(CrimsonError::DuplicateExperiment(spec.name.clone()));
    }
    // The gold tree must be committed — the snapshot workers read it.
    let gold_record: TreeRecord = repo.tree_record(gold)?;

    let mut cells = Vec::with_capacity(spec.methods.len() * spec.strategies.len());
    for mi in 0..spec.methods.len() {
        for si in 0..spec.strategies.len() {
            for ri in 0..spec.replicates {
                cells.push(Cell {
                    mi,
                    si,
                    ri,
                    seed: cell_seed(spec.seed, si, ri),
                });
            }
        }
    }
    let n_cells = cells.len();
    let exp_id = next_id(repo, repo.tables.experiments, "exp_id")?;
    let result_base = next_id(repo, repo.tables.experiment_results, "result_id")?;
    let spec_json =
        serde_json::to_string(spec).map_err(|e| CrimsonError::History(e.to_string()))?;

    let reader = repo.reader()?;
    // Never spawn more workers than there are grid cells (surplus workers
    // exit immediately but their spawn/join cost lands in the measured
    // wall-clock) or than the machine has cores (oversubscribed snapshot
    // workers contend instead of evaluating).
    let cores = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
    let workers = spec.workers.clamp(1, n_cells).min(cores);
    let start = Instant::now();

    let (runs, wall_ms) = if spec.cell_commits {
        run_grid_cell_commits(
            repo,
            &reader,
            gold,
            &gold_record,
            spec,
            &spec_json,
            &cells,
            workers,
            exp_id,
            result_base,
            start,
        )?
    } else {
        repo.with_txn(|repo| {
            let recon_handles = evaluate_grid(
                repo,
                &reader,
                gold,
                spec,
                &cells,
                workers,
                |repo, i, eval| {
                    persist_cell(repo, exp_id, result_base + i as u64, spec, cells[i], eval)
                },
            )?;
            let runs = recon_handles.len() as u64;
            // Measured once, before the commit: both the catalog row and the
            // returned record carry this same figure.
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            insert_experiment_row(repo, exp_id, gold, spec, &spec_json, runs, wall_ms)?;
            record_experiment_history(
                repo,
                exp_id,
                gold,
                &gold_record,
                spec,
                &spec_json,
                result_base,
                &recon_handles,
            )?;
            Ok((runs, wall_ms))
        })?
    };

    Ok(ExperimentRecord {
        id: exp_id,
        name: spec.name.clone(),
        gold,
        spec: spec.clone(),
        seed: spec.seed,
        runs,
        wall_ms,
    })
}

/// Evaluate the full grid with a pool of snapshot workers, handing every
/// finished cell to `persist` in deterministic grid order (out-of-order
/// arrivals are buffered until their turn). Factored out of [`run_sweep`]
/// so the one-big-transaction and per-cell-commit paths share the
/// scheduling machinery.
fn evaluate_grid(
    repo: &mut Repository,
    reader: &crate::reader::RepositoryReader,
    gold: TreeHandle,
    spec: &ExperimentSpec,
    cells: &[Cell],
    workers: usize,
    mut persist: impl FnMut(&mut Repository, usize, &CellEval) -> CrimsonResult<TreeHandle>,
) -> CrimsonResult<Vec<TreeHandle>> {
    let n_cells = cells.len();
    {
        let cursor = AtomicUsize::new(0);
        let poison = AtomicBool::new(false);
        let recon_handles = std::thread::scope(|scope| -> CrimsonResult<Vec<TreeHandle>> {
            // Bounded channel: evaluated-but-unpersisted cells hold full
            // trees, so when the single writer falls behind, workers block
            // on send instead of buffering the whole grid in memory. The
            // channel MUST be local to this scope closure: on the
            // early-exit failure path below, `rx` then drops before the
            // scope joins its threads, releasing any worker still blocked
            // in `send` (with `rx` outliving the scope, that join would
            // deadlock).
            let (tx, rx) = mpsc::sync_channel::<(usize, CrimsonResult<CellEval>)>(workers);
            for _ in 0..workers {
                let tx = tx.clone();
                let reader = &reader;
                let cells = &cells;
                let cursor = &cursor;
                let poison = &poison;
                scope.spawn(move || loop {
                    if poison.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = cells[i];
                    // One pinned snapshot epoch per cell (reader.read()
                    // pins before the first page touch): the whole cell —
                    // sampling, distance estimation, comparison — sees one
                    // committed state even while sibling cells commit.
                    let out = reader.evaluate_cell(
                        gold,
                        spec.methods[cell.mi],
                        spec.distance_source,
                        &spec.strategies[cell.si],
                        cell.seed,
                        spec.compute_triplets,
                    );
                    if tx.send((i, out)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);

            // Persist finished cells in deterministic grid order while the
            // workers keep evaluating: buffer out-of-order arrivals and
            // drain the contiguous prefix.
            let mut pending: BTreeMap<usize, CellEval> = BTreeMap::new();
            let mut next = 0usize;
            let mut recon_handles: Vec<TreeHandle> = Vec::with_capacity(n_cells);
            let mut failure: Option<CrimsonError> = None;
            'recv: for _ in 0..n_cells {
                match rx.recv() {
                    Ok((i, Ok(eval))) => {
                        pending.insert(i, eval);
                    }
                    Ok((_, Err(e))) => {
                        failure = Some(e);
                        break 'recv;
                    }
                    Err(_) => break 'recv,
                }
                while let Some(eval) = pending.remove(&next) {
                    match persist(repo, next, &eval) {
                        Ok(handle) => recon_handles.push(handle),
                        Err(e) => {
                            failure = Some(e);
                            break 'recv;
                        }
                    }
                    next += 1;
                }
            }
            poison.store(true, Ordering::Relaxed);
            if let Some(e) = failure {
                return Err(e);
            }
            if recon_handles.len() != n_cells {
                return Err(CrimsonError::InvalidSample(format!(
                    "experiment sweep lost {} of {n_cells} cells (a worker died)",
                    n_cells - recon_handles.len()
                )));
            }
            Ok(recon_handles)
        })?;
        Ok(recon_handles)
    }
}

/// The per-cell-commit sweep: a provisional catalog row is committed before
/// any result row (so readers and [`Repository::integrity_check`] never see
/// a result without its experiment), each finished cell commits as its own
/// transaction through the repository's configured durability mode, and a
/// final transaction replaces the provisional row with the real figures and
/// writes the history entry. Returns `(runs, wall_ms)`.
#[allow(clippy::too_many_arguments)]
fn run_grid_cell_commits(
    repo: &mut Repository,
    reader: &crate::reader::RepositoryReader,
    gold: TreeHandle,
    gold_record: &TreeRecord,
    spec: &ExperimentSpec,
    spec_json: &str,
    cells: &[Cell],
    workers: usize,
    exp_id: u64,
    result_base: u64,
    start: Instant,
) -> CrimsonResult<(u64, f64)> {
    let n_cells = cells.len();
    // Provisional row: the grid size as `runs`, zero wall-clock. A crash
    // mid-sweep leaves it plus a prefix of committed cells — a consistent,
    // queryable state (the zero wall-clock marks it unfinished).
    repo.with_txn(|repo| {
        insert_experiment_row(repo, exp_id, gold, spec, spec_json, n_cells as u64, 0.0)
    })?;

    let evaluated = evaluate_grid(repo, reader, gold, spec, cells, workers, |repo, i, eval| {
        repo.with_txn(|repo| {
            persist_cell(repo, exp_id, result_base + i as u64, spec, cells[i], eval)
        })
    });
    let recon_handles = match evaluated {
        Ok(handles) => handles,
        Err(e) => {
            // Best-effort cleanup of the committed prefix; the original
            // failure is what the caller needs to see.
            let _ = cleanup_partial_sweep(repo, exp_id, result_base, n_cells as u64);
            return Err(e);
        }
    };

    let runs = recon_handles.len() as u64;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    repo.with_txn(|repo| {
        // No in-place update API: replace the provisional row under the
        // same id, in the same transaction as the history entry.
        delete_experiment_row(repo, exp_id)?;
        insert_experiment_row(repo, exp_id, gold, spec, spec_json, runs, wall_ms)?;
        record_experiment_history(
            repo,
            exp_id,
            gold,
            gold_record,
            spec,
            spec_json,
            result_base,
            &recon_handles,
        )
    })?;
    Ok((runs, wall_ms))
}

/// Insert one row of the `experiments` catalog table. Joins the caller's
/// open transaction (auto-commits otherwise).
fn insert_experiment_row(
    repo: &mut Repository,
    exp_id: u64,
    gold: TreeHandle,
    spec: &ExperimentSpec,
    spec_json: &str,
    runs: u64,
    wall_ms: f64,
) -> CrimsonResult<()> {
    repo.db.insert(
        repo.tables.experiments,
        &[
            Value::Int(exp_id as i64),
            Value::text(spec.name.as_str()),
            Value::Int(gold.0 as i64),
            Value::text(spec_json),
            Value::Int(spec.seed as i64),
            Value::Int(runs as i64),
            Value::Float(wall_ms),
        ],
    )?;
    Ok(())
}

/// Delete the `experiments` row carrying `exp_id` (via its unique index).
fn delete_experiment_row(repo: &mut Repository, exp_id: u64) -> CrimsonResult<()> {
    for rid in repo.db.index_lookup(
        repo.tables.experiments,
        "exp_id",
        &Value::Int(exp_id as i64),
    )? {
        repo.db.delete(repo.tables.experiments, rid)?;
    }
    Ok(())
}

/// Write the sweep's history entry (shared by both sweep paths; joins the
/// caller's open transaction).
#[allow(clippy::too_many_arguments)]
fn record_experiment_history(
    repo: &mut Repository,
    exp_id: u64,
    gold: TreeHandle,
    gold_record: &TreeRecord,
    spec: &ExperimentSpec,
    spec_json: &str,
    result_base: u64,
    recon_handles: &[TreeHandle],
) -> CrimsonResult<()> {
    let runs = recon_handles.len() as u64;
    let spec_value: serde_json::Value =
        serde_json::from_str(spec_json).map_err(|e| CrimsonError::History(e.to_string()))?;
    repo.record_query(
        QueryKind::Experiment,
        json!({
            "experiment": exp_id,
            "name": spec.name,
            "gold_tree": gold.0,
            "seed": spec.seed,
            "spec": spec_value,
            "runs": runs,
            "recon_trees": recon_handles.iter().map(|h| h.0).collect::<Vec<u64>>(),
            "result_ids": (0..runs).map(|i| result_base + i).collect::<Vec<u64>>(),
        }),
        &format!(
            "experiment `{}`: {} runs ({} methods × {} samplings × {} replicates) on `{}`",
            spec.name,
            runs,
            spec.methods.len(),
            spec.strategies.len(),
            spec.replicates,
            gold_record.name
        ),
    )?;
    Ok(())
}

/// Best-effort rollback of an interrupted per-cell-commit sweep: every
/// committed result row, its clade rows and the provisional catalog row are
/// deleted, restoring the results→experiments invariant. Reconstructed
/// trees of completed cells survive as ordinary standalone trees (the
/// engine has no tree-delete path), so a retry needs a fresh name.
fn cleanup_partial_sweep(
    repo: &mut Repository,
    exp_id: u64,
    result_base: u64,
    n_cells: u64,
) -> CrimsonResult<()> {
    repo.with_txn(|repo| {
        for result_id in result_base..result_base + n_cells {
            let key = Value::Int(result_id as i64);
            for rid in repo
                .db
                .index_lookup(repo.tables.experiment_clades, "result_id", &key)?
            {
                repo.db.delete(repo.tables.experiment_clades, rid)?;
            }
            for rid in repo
                .db
                .index_lookup(repo.tables.experiment_results, "result_id", &key)?
            {
                repo.db.delete(repo.tables.experiment_results, rid)?;
            }
        }
        delete_experiment_row(repo, exp_id)
    })
}

/// Persist one finished grid cell: the reconstructed tree (deduplicated —
/// a cell whose reconstruction is content-identical to an already stored
/// tree references the canonical copy instead of writing a second one), its
/// result row and its per-clade agreement rows. Runs inside the
/// experiment's transaction.
fn persist_cell(
    repo: &mut Repository,
    exp_id: u64,
    result_id: u64,
    spec: &ExperimentSpec,
    cell: Cell,
    eval: &CellEval,
) -> CrimsonResult<TreeHandle> {
    let start = Instant::now();
    let method = spec.methods[cell.mi];
    let tree_name = format!("{}/{}-s{}-r{}", spec.name, method.name(), cell.si, cell.ri);
    let (recon, deduped) = repo.store_tree_dedup(&tree_name, &eval.reconstruction)?;

    // Agreement rows name stored nodes. On a fresh store the
    // reconstruction's arena ids carry over verbatim; on a dedup hit they
    // mean nothing in the canonical tree, so each clade is remapped through
    // its content hash (equal trees hold every clade of one another).
    let node_ids: Vec<i64> = if deduped {
        let hashes = labeling::clade_hash::tree_hashes(&eval.reconstruction);
        let node_map = repo.ctx().hash_to_node_map(recon)?;
        eval.clades
            .iter()
            .map(|c| {
                node_map
                    .get(&hashes[c.node as usize])
                    .map(|sid| sid.0 as i64)
                    .ok_or_else(|| {
                        CrimsonError::CorruptRepository(format!(
                            "canonical tree #{} lacks a clade of its duplicate",
                            recon.0
                        ))
                    })
            })
            .collect::<CrimsonResult<_>>()?
    } else {
        eval.clades
            .iter()
            .map(|c| ((recon.0 << TREE_SHIFT) | c.node as u64) as i64)
            .collect()
    };

    let strategy_json = serde_json::to_string(&spec.strategies[cell.si])
        .map_err(|e| CrimsonError::History(e.to_string()))?;
    let mut clades = eval.clades.iter().zip(&node_ids);
    repo.db
        .bulk_insert_with(repo.tables.experiment_clades, BULK_FILL, |values| {
            let Some((c, &node_id)) = clades.next() else {
                return Ok(false);
            };
            values.push(Value::Int(result_id as i64));
            values.push(Value::Int(node_id));
            values.push(Value::Int(c.size as i64));
            values.push(Value::Bool(c.agrees));
            Ok(true)
        })?;

    let persist_ms = start.elapsed().as_secs_f64() * 1e3;
    repo.db.insert(
        repo.tables.experiment_results,
        &[
            Value::Int(result_id as i64),
            Value::Int(exp_id as i64),
            Value::text(method.name()),
            Value::text(strategy_json),
            Value::Int(cell.si as i64),
            Value::Int(cell.ri as i64),
            Value::Int(cell.seed as i64),
            Value::Int(eval.sample_size as i64),
            Value::Int(recon.0 as i64),
            Value::Int(eval.rf.distance as i64),
            Value::Int(eval.rf.max_distance as i64),
            Value::Int(eval.rf.shared as i64),
            Value::Int(eval.rooted_rf.distance as i64),
            Value::Int(eval.rooted_rf.max_distance as i64),
            Value::Int(eval.rooted_rf.shared as i64),
            match eval.triplet {
                Some(t) => Value::Float(t),
                None => Value::Null,
            },
            Value::Float(eval.timings.sampling_ms),
            Value::Float(eval.timings.projection_ms),
            Value::Float(eval.timings.distances_ms),
            Value::Float(eval.timings.reconstruction_ms),
            Value::Float(eval.timings.comparison_ms),
            Value::Float(persist_ms),
        ],
    )?;
    Ok(recon)
}

/// The next free id of a catalog table: max existing + 1 (rolled-back
/// transactions may leave gaps; a row count could collide). The unique id
/// index yields rows in id order, so only the last row needs decoding.
fn next_id(repo: &Repository, table: storage::db::TableId, column: &str) -> CrimsonResult<u64> {
    match repo.db.index_range(table, column, None, None)?.last() {
        Some(&rid) => Ok(repo.db.get(table, rid)?.values[0].as_int().unwrap_or(-1) as u64 + 1),
        None => Ok(0),
    }
}

impl Repository {
    /// All persisted experiments, in id order.
    pub fn list_experiments(&self) -> CrimsonResult<Vec<ExperimentRecord>> {
        self.ctx().list_experiments()
    }

    /// Look up an experiment by name.
    pub fn find_experiment(&self, name: &str) -> CrimsonResult<Option<ExperimentRecord>> {
        self.ctx().find_experiment(name)
    }

    /// Look up an experiment by name, failing when absent.
    pub fn experiment_by_name(&self, name: &str) -> CrimsonResult<ExperimentRecord> {
        self.ctx().experiment_by_name(name)
    }

    /// All result rows of an experiment, in grid-cell order.
    pub fn experiment_results(&self, experiment: u64) -> CrimsonResult<Vec<ExperimentResult>> {
        self.ctx().experiment_results(experiment)
    }

    /// The per-clade agreement rows of one result.
    pub fn experiment_clades(&self, result: u64) -> CrimsonResult<Vec<CladeRow>> {
        self.ctx().experiment_clades(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use simulation::gold::GoldStandardBuilder;
    use simulation::seqevo::Model;
    use tempfile::tempdir;

    fn gold_repo(
        leaves: usize,
        sites: usize,
        seed: u64,
    ) -> (tempfile::TempDir, Repository, TreeHandle) {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("repo.crimson"),
            RepositoryOptions {
                frame_depth: 8,
                buffer_pool_pages: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        let gold = GoldStandardBuilder::new()
            .leaves(leaves)
            .sequence_length(sites)
            .model(Model::Jc69 { rate: 0.1 })
            .seed(seed)
            .build()
            .unwrap();
        let handle = repo.load_gold_standard("gold", &gold).unwrap();
        (dir, repo, handle)
    }

    #[test]
    fn true_distance_nj_recovers_projection_exactly() {
        let (_d, mut repo, handle) = gold_repo(48, 0, 3);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let report = runner
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 16 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::TruePatristic,
                compute_triplets: true,
                seed: 1,
            })
            .unwrap();
        assert_eq!(report.sample_size, 16);
        assert_eq!(report.rf.distance, 0, "NJ on true distances must be exact");
        let triplet = report.triplet.expect("triplets were requested");
        assert!((0.0..=1.0).contains(&triplet));
        assert!(report.summary_row().contains("NJ"));
    }

    #[test]
    fn true_distance_upgma_recovers_ultrametric_projection() {
        let (_d, mut repo, handle) = gold_repo(48, 0, 11);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let report = runner
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 20 },
                method: Method::Upgma,
                distance_source: DistanceSource::TruePatristic,
                compute_triplets: false,
                seed: 2,
            })
            .unwrap();
        assert_eq!(
            report.rf.distance, 0,
            "UPGMA on ultrametric true distances must be exact"
        );
        // An exact reconstruction agrees on every clade.
        assert!(report.clades.iter().all(|c| c.agrees));
    }

    #[test]
    fn sequence_based_run_produces_report_and_history() {
        let (_d, mut repo, handle) = gold_repo(32, 300, 7);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let report = runner
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 12 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::SequencesJc,
                compute_triplets: false,
                seed: 5,
            })
            .unwrap();
        assert_eq!(report.sample_size, 12);
        assert!(report.rf.normalized <= 1.0);
        assert_eq!(report.reference.leaf_count(), 12);
        assert_eq!(report.reconstruction.leaf_count(), 12);
        let history = repo.history_of_kind(QueryKind::Benchmark).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].params["sample_size"], 12);
    }

    #[test]
    fn evaluate_methods_runs_all() {
        let (_d, mut repo, handle) = gold_repo(32, 200, 13);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let reports = runner
            .evaluate_methods(
                &EvalSpec {
                    strategy: SamplingStrategy::Uniform { k: 10 },
                    distance_source: DistanceSource::SequencesJc,
                    ..Default::default()
                },
                &[Method::Upgma, Method::NeighborJoining],
            )
            .unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].method, Method::Upgma);
        assert_eq!(reports[1].method, Method::NeighborJoining);
    }

    #[test]
    fn longer_sequences_reconstruct_no_worse_on_average() {
        // More data → better (or equal) reconstruction. Averaged over seeds
        // to damp stochastic flips.
        let mut short_err = 0usize;
        let mut long_err = 0usize;
        for seed in 0..3u64 {
            let (_d1, mut repo_short, h1) = gold_repo(24, 60, 100 + seed);
            let r1 = ExperimentRunner::new(&mut repo_short, h1)
                .evaluate(&EvalSpec {
                    strategy: SamplingStrategy::Uniform { k: 12 },
                    method: Method::NeighborJoining,
                    distance_source: DistanceSource::SequencesJc,
                    compute_triplets: false,
                    seed,
                })
                .unwrap();
            short_err += r1.rf.distance;

            let (_d2, mut repo_long, h2) = gold_repo(24, 2000, 100 + seed);
            let r2 = ExperimentRunner::new(&mut repo_long, h2)
                .evaluate(&EvalSpec {
                    strategy: SamplingStrategy::Uniform { k: 12 },
                    method: Method::NeighborJoining,
                    distance_source: DistanceSource::SequencesJc,
                    compute_triplets: false,
                    seed,
                })
                .unwrap();
            long_err += r2.rf.distance;
        }
        assert!(
            long_err <= short_err,
            "2000-site alignments ({long_err}) should not reconstruct worse than 60-site ones ({short_err})"
        );
    }

    #[test]
    fn time_respecting_evaluation_runs() {
        let (_d, mut repo, handle) = gold_repo(64, 150, 21);
        let report = ExperimentRunner::new(&mut repo, handle)
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::TimeRespecting { time: 0.05, k: 16 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::SequencesJc,
                compute_triplets: false,
                seed: 3,
            })
            .unwrap();
        assert_eq!(report.sample_size, 16);
    }

    #[test]
    fn missing_sequences_error() {
        let (_d, mut repo, handle) = gold_repo(16, 0, 1);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let err = runner.evaluate(&EvalSpec {
            strategy: SamplingStrategy::Uniform { k: 8 },
            distance_source: DistanceSource::SequencesJc,
            ..Default::default()
        });
        assert!(matches!(err, Err(CrimsonError::MissingSequences(_))));
    }

    #[test]
    fn tiny_sample_rejected() {
        let (_d, mut repo, handle) = gold_repo(16, 50, 2);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let err = runner.evaluate(&EvalSpec {
            strategy: SamplingStrategy::Uniform { k: 2 },
            ..Default::default()
        });
        assert!(matches!(err, Err(CrimsonError::InvalidSample(_))));
    }

    #[test]
    fn method_and_source_names_round_trip() {
        for m in [Method::Upgma, Method::NeighborJoining] {
            assert_eq!(Method::parse(m.name()), Some(m));
        }
        for s in [
            DistanceSource::TruePatristic,
            DistanceSource::SequencesP,
            DistanceSource::SequencesJc,
            DistanceSource::SequencesK2p,
        ] {
            assert_eq!(DistanceSource::parse(s.name()), Some(s));
        }
        assert_eq!(Method::parse("nope"), None);
        assert_eq!(DistanceSource::parse("nope"), None);
    }

    #[test]
    fn cell_seeds_are_distinct_and_deterministic() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..8 {
            for r in 0..16 {
                let seed = cell_seed(42, s, r);
                assert_eq!(seed, cell_seed(42, s, r), "derivation must be pure");
                assert!(seen.insert(seed), "cell seeds must not collide in a grid");
            }
        }
        assert_ne!(cell_seed(1, 0, 0), cell_seed(2, 0, 0));
    }

    #[test]
    fn small_sweep_persists_everything() {
        let (_d, mut repo, handle) = gold_repo(40, 200, 9);
        let spec = ExperimentSpec {
            name: "sweep".to_string(),
            methods: vec![Method::Upgma, Method::NeighborJoining],
            strategies: vec![
                SamplingStrategy::Uniform { k: 8 },
                SamplingStrategy::Uniform { k: 12 },
            ],
            replicates: 2,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 77,
            workers: 4,
            cell_commits: false,
        };
        let record = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
        assert_eq!(record.runs, 8);
        assert_eq!(record.name, "sweep");

        // Catalog rows are all there, in grid order.
        let fetched = repo.experiment_by_name("sweep").unwrap();
        assert_eq!(fetched.id, record.id);
        assert_eq!(fetched.spec.methods, spec.methods);
        let results = repo.experiment_results(record.id).unwrap();
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.experiment, record.id);
            let expected_cell = (
                i / 4, // method index: 2 strategies × 2 replicates
                (i / 2) % 2,
                i % 2,
            );
            assert_eq!(
                (r.method, r.strategy_index, r.replicate),
                (
                    spec.methods[expected_cell.0],
                    expected_cell.1,
                    expected_cell.2
                )
            );
            assert_eq!(r.cell_seed, cell_seed(77, expected_cell.1, expected_cell.2));
            // The reconstruction is an ordinary stored tree.
            let tree = repo.tree_record(r.recon).unwrap();
            assert_eq!(tree.leaf_count as usize, r.sample_size);
            // Per-clade rows reference stored nodes of that tree.
            let clades = repo.experiment_clades(r.id).unwrap();
            assert!(!clades.is_empty());
            for c in &clades {
                assert_eq!(c.node.0 >> TREE_SHIFT, r.recon.0);
                assert!(repo.node_record(c.node).is_ok());
            }
            // Agreement rows are consistent with the rooted RF share count.
            let agreeing = clades.iter().filter(|c| c.agrees).count();
            assert_eq!(agreeing, r.rooted_rf.shared);
        }
        // History carries the spec, seed and tree handles.
        let history = repo.history_of_kind(QueryKind::Experiment).unwrap();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].params["seed"], 77);
        assert_eq!(history[0].params["gold_tree"], handle.0);
        assert_eq!(
            history[0].params["recon_trees"].as_array().unwrap().len(),
            8
        );
        repo.integrity_check().unwrap();
    }

    #[test]
    fn duplicate_experiment_name_rejected() {
        let (_d, mut repo, handle) = gold_repo(24, 100, 4);
        let spec = ExperimentSpec {
            name: "dup".to_string(),
            methods: vec![Method::NeighborJoining],
            strategies: vec![SamplingStrategy::Uniform { k: 6 }],
            replicates: 1,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 1,
            workers: 1,
            cell_commits: false,
        };
        ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
        assert!(matches!(
            ExperimentRunner::new(&mut repo, handle).run(&spec),
            Err(CrimsonError::DuplicateExperiment(_))
        ));
    }

    #[test]
    fn failed_sweep_rolls_back_completely() {
        let (_d, mut repo, handle) = gold_repo(24, 0, 4); // no sequences
        let trees_before = repo.list_trees().unwrap().len();
        let spec = ExperimentSpec {
            name: "doomed".to_string(),
            methods: vec![Method::NeighborJoining],
            strategies: vec![SamplingStrategy::Uniform { k: 6 }],
            replicates: 2,
            // Sequence distances without sequences: every cell fails.
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 1,
            workers: 2,
            cell_commits: false,
        };
        assert!(ExperimentRunner::new(&mut repo, handle).run(&spec).is_err());
        assert_eq!(repo.list_trees().unwrap().len(), trees_before);
        assert!(repo.list_experiments().unwrap().is_empty());
        assert!(repo
            .history_of_kind(QueryKind::Experiment)
            .unwrap()
            .is_empty());
        repo.integrity_check().unwrap();
        // The failure is transient state only: the same name works next.
        let mut ok_spec = spec.clone();
        ok_spec.distance_source = DistanceSource::TruePatristic;
        ExperimentRunner::new(&mut repo, handle)
            .run(&ok_spec)
            .unwrap();
    }

    #[test]
    fn empty_grid_rejected() {
        let (_d, mut repo, handle) = gold_repo(16, 50, 2);
        let mut runner = ExperimentRunner::new(&mut repo, handle);
        let bad = ExperimentSpec {
            name: "x".to_string(),
            methods: vec![],
            strategies: vec![SamplingStrategy::Uniform { k: 4 }],
            replicates: 1,
            distance_source: DistanceSource::TruePatristic,
            compute_triplets: false,
            seed: 0,
            workers: 1,
            cell_commits: false,
        };
        assert!(runner.run(&bad).is_err());
    }

    #[test]
    fn rerun_reproduces_metrics_under_new_name() {
        let (_d, mut repo, handle) = gold_repo(32, 150, 21);
        let spec = ExperimentSpec {
            name: "orig".to_string(),
            methods: vec![Method::NeighborJoining],
            strategies: vec![SamplingStrategy::Uniform { k: 10 }],
            replicates: 2,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 5,
            workers: 2,
            cell_commits: false,
        };
        let first = ExperimentRunner::new(&mut repo, handle).run(&spec).unwrap();
        let second = ExperimentRunner::new(&mut repo, handle)
            .rerun("orig", "again")
            .unwrap();
        let r1 = repo.experiment_results(first.id).unwrap();
        let r2 = repo.experiment_results(second.id).unwrap();
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.rf, b.rf);
            assert_eq!(a.rooted_rf, b.rooted_rf);
            assert_eq!(a.sample_size, b.sample_size);
            assert_eq!(a.cell_seed, b.cell_seed);
        }
    }
}
