//! Parallel batch query execution.
//!
//! The ROADMAP's north star is a shared service absorbing heavy query
//! traffic; the natural unit of that traffic is a *batch* — a caller (or a
//! network front end) hands the engine a pile of independent structure
//! queries and wants aggregate throughput, not per-call latency.
//! [`QueryBatch`] fans a batch across a pool of scoped worker threads, each
//! driving a shared [`RepositoryReader`] snapshot, and returns the results
//! in submission order. No extra dependencies: plain `std::thread::scope`
//! plus an atomic work cursor.
//!
//! The executor pins **one snapshot epoch for the whole batch**
//! ([`RepositoryReader::pin`]): every query in the batch evaluates the same
//! committed state, so the batch's results are mutually consistent even
//! while the writer keeps loading trees mid-batch — queries see the state
//! as of the pin and never wait for a load to finish. If the pinned epoch
//! is retired mid-batch (the writer out-ran the bounded version chain — the
//! stress harness shows this is unreachable at the current depth), the
//! affected query transparently falls back to the reader's own re-pinning
//! path rather than failing the batch.

use crate::error::{CrimsonError, CrimsonResult};
use crate::query::PatternMatch;
use crate::reader::{PinnedReader, RepositoryReader};
use crate::repository::{NodeRecord, Repository, StoredNodeId, TreeHandle};
use parking_lot::Mutex;
use phylo::Tree;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One query in a batch.
#[derive(Debug, Clone)]
pub enum BatchQuery {
    /// Least common ancestor of two stored nodes.
    Lca(StoredNodeId, StoredNodeId),
    /// Ancestor-or-self test.
    IsAncestor(StoredNodeId, StoredNodeId),
    /// Minimal spanning clade of a node set.
    SpanningClade(Vec<StoredNodeId>),
    /// Projection of a tree onto a leaf selection.
    Project(TreeHandle, Vec<StoredNodeId>),
    /// Pattern match of an in-memory pattern against a stored tree.
    PatternMatch(TreeHandle, Tree),
    /// Fetch one node row.
    NodeRecord(StoredNodeId),
}

/// The result of one [`BatchQuery`], in the corresponding variant.
#[derive(Debug, Clone)]
pub enum BatchOutput {
    /// An LCA result.
    Node(StoredNodeId),
    /// An ancestor-test result.
    Flag(bool),
    /// A spanning clade, in pre-order.
    Nodes(Vec<StoredNodeId>),
    /// A projected subtree.
    Tree(Tree),
    /// A pattern-match report.
    Match(Box<PatternMatch>),
    /// A decoded node row.
    Record(Box<NodeRecord>),
}

/// A batch of independent read queries, executed across a worker pool.
#[derive(Debug, Default, Clone)]
pub struct QueryBatch {
    queries: Vec<BatchQuery>,
}

impl QueryBatch {
    /// An empty batch.
    pub fn new() -> Self {
        QueryBatch::default()
    }

    /// Append a query; returns its index (results come back in submission
    /// order, so the index addresses this query's result).
    pub fn push(&mut self, query: BatchQuery) -> usize {
        self.queries.push(query);
        self.queries.len() - 1
    }

    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the batch holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Execute the batch against a fresh snapshot reader of `repo` with
    /// `threads` workers. Results are returned in submission order; each
    /// query fails or succeeds independently.
    pub fn execute(
        &self,
        repo: &Repository,
        threads: usize,
    ) -> CrimsonResult<Vec<CrimsonResult<BatchOutput>>> {
        let reader = repo.reader()?;
        Ok(self.execute_on(&reader, threads))
    }

    /// Execute the batch against an existing reader (its caches stay warm
    /// across batches). One snapshot epoch is pinned up front and shared by
    /// every query, so the whole batch reads one committed state. `threads`
    /// is clamped to `[1, batch size]`; workers pull queries off a shared
    /// atomic cursor, so an expensive projection does not stall the rest of
    /// the batch behind a static partition.
    pub fn execute_on(
        &self,
        reader: &RepositoryReader,
        threads: usize,
    ) -> Vec<CrimsonResult<BatchOutput>> {
        let n = self.queries.len();
        if n == 0 {
            return Vec::new();
        }
        // Pin the batch's epoch. Pinning only fails on a storage-level
        // error resolving the epoch's catalog; degrade to per-query
        // snapshots (each query pins its own epoch) rather than failing
        // the batch outright.
        let pinned = reader.pin().ok();
        let workers = threads.clamp(1, n);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<CrimsonResult<BatchOutput>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let cursor = &cursor;
                let slots = &slots;
                let queries = &self.queries;
                let pinned = pinned.as_ref();
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = match pinned {
                        Some(pin) => match run_query_pinned(pin, &queries[i]) {
                            // The pinned epoch outlived the bounded version
                            // chain: serve this query through the reader's
                            // re-pinning path instead of failing it.
                            Err(CrimsonError::Storage(
                                storage::StorageError::SnapshotRetired { .. },
                            )) => run_query(reader, &queries[i]),
                            out => out,
                        },
                        None => run_query(reader, &queries[i]),
                    };
                    *slots[i].lock() = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().expect("worker filled every slot"))
            .collect()
    }
}

fn run_query_pinned(reader: &PinnedReader<'_>, query: &BatchQuery) -> CrimsonResult<BatchOutput> {
    match query {
        BatchQuery::Lca(a, b) => reader.lca(*a, *b).map(BatchOutput::Node),
        BatchQuery::IsAncestor(a, b) => reader.is_ancestor(*a, *b).map(BatchOutput::Flag),
        BatchQuery::SpanningClade(nodes) => {
            reader.minimal_spanning_clade(nodes).map(BatchOutput::Nodes)
        }
        BatchQuery::Project(handle, leaves) => {
            reader.project(*handle, leaves).map(BatchOutput::Tree)
        }
        BatchQuery::PatternMatch(handle, pattern) => reader
            .pattern_match(*handle, pattern)
            .map(|m| BatchOutput::Match(Box::new(m))),
        BatchQuery::NodeRecord(id) => reader
            .node_record(*id)
            .map(|r| BatchOutput::Record(Box::new(r))),
    }
}

fn run_query(reader: &RepositoryReader, query: &BatchQuery) -> CrimsonResult<BatchOutput> {
    match query {
        BatchQuery::Lca(a, b) => reader.lca(*a, *b).map(BatchOutput::Node),
        BatchQuery::IsAncestor(a, b) => reader.is_ancestor(*a, *b).map(BatchOutput::Flag),
        BatchQuery::SpanningClade(nodes) => {
            reader.minimal_spanning_clade(nodes).map(BatchOutput::Nodes)
        }
        BatchQuery::Project(handle, leaves) => {
            reader.project(*handle, leaves).map(BatchOutput::Tree)
        }
        BatchQuery::PatternMatch(handle, pattern) => reader
            .pattern_match(*handle, pattern)
            .map(|m| BatchOutput::Match(Box::new(m))),
        BatchQuery::NodeRecord(id) => reader
            .node_record(*id)
            .map(|r| BatchOutput::Record(Box::new(r))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::RepositoryOptions;
    use simulation::birth_death::yule_tree;
    use tempfile::tempdir;

    #[test]
    fn batch_matches_sequential_results_in_order() {
        let dir = tempdir().unwrap();
        let mut repo = Repository::create(
            dir.path().join("b.crimson"),
            RepositoryOptions {
                frame_depth: 8,
                buffer_pool_pages: 1024,
                ..Default::default()
            },
        )
        .unwrap();
        let tree = yule_tree(120, 1.0, 5);
        let handle = repo.load_tree("t", &tree).unwrap();
        let leaves = repo.leaves(handle).unwrap();

        let mut batch = QueryBatch::new();
        for i in 0..leaves.len() {
            let a = leaves[i];
            let b = leaves[(i * 7 + 3) % leaves.len()];
            batch.push(BatchQuery::Lca(a, b));
            batch.push(BatchQuery::IsAncestor(a, b));
            if i % 8 == 0 {
                batch.push(BatchQuery::SpanningClade(vec![
                    a,
                    b,
                    leaves[(i + 1) % leaves.len()],
                ]));
            }
            if i % 16 == 0 {
                let sel: Vec<StoredNodeId> =
                    leaves.iter().skip(i % 4).step_by(11).copied().collect();
                batch.push(BatchQuery::Project(handle, sel));
            }
        }
        assert!(!batch.is_empty());

        // Sequential reference via the writer's own engine.
        let mut expected = Vec::new();
        for q in &batch.queries {
            expected.push(match q {
                BatchQuery::Lca(a, b) => format!("{:?}", repo.lca(*a, *b).unwrap()),
                BatchQuery::IsAncestor(a, b) => {
                    format!("{:?}", repo.is_ancestor(*a, *b).unwrap())
                }
                BatchQuery::SpanningClade(nodes) => {
                    format!("{:?}", repo.minimal_spanning_clade(nodes).unwrap())
                }
                BatchQuery::Project(h, sel) => {
                    let t = repo.project(*h, sel).unwrap();
                    let mut names = t.leaf_names();
                    names.sort();
                    format!("{names:?}")
                }
                _ => unreachable!("not built above"),
            });
        }

        for threads in [1usize, 4] {
            let results = batch.execute(&repo, threads).unwrap();
            assert_eq!(results.len(), batch.len());
            for (i, (res, exp)) in results.iter().zip(&expected).enumerate() {
                let got = match res.as_ref().unwrap() {
                    BatchOutput::Node(n) => format!("{n:?}"),
                    BatchOutput::Flag(f) => format!("{f:?}"),
                    BatchOutput::Nodes(ns) => format!("{ns:?}"),
                    BatchOutput::Tree(t) => {
                        let mut names = t.leaf_names();
                        names.sort();
                        format!("{names:?}")
                    }
                    other => format!("{other:?}"),
                };
                assert_eq!(&got, exp, "query {i} with {threads} threads");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let dir = tempdir().unwrap();
        let repo =
            Repository::create(dir.path().join("b.crimson"), RepositoryOptions::default()).unwrap();
        let batch = QueryBatch::new();
        assert!(batch.execute(&repo, 4).unwrap().is_empty());
    }
}
