//! # crimson-reconstruction — tree inference algorithms and comparison metrics
//!
//! The Crimson Benchmark Manager "tests and evaluates tree inference
//! algorithms against the gold-standard simulation tree" (§2.2). This crate
//! provides both sides of that pipeline:
//!
//! * **Distance estimation** ([`distance`]): pairwise evolutionary distances
//!   from aligned sequences (raw p-distance, Jukes–Cantor and Kimura
//!   corrections) feeding the distance-based reconstruction methods.
//! * **Reconstruction algorithms** ([`upgma`], [`nj`]): UPGMA hierarchical
//!   clustering and Neighbor-Joining — the canonical distance methods whose
//!   behaviour the CIPRes benchmarking workflow was designed to score.
//! * **Tree comparison** ([`compare`]): Robinson–Foulds distance over clades
//!   (computed with bitset cluster tables in the spirit of Day's linear-time
//!   algorithm, paper ref \[1\]), normalized RF, majority-rule consensus
//!   trees and triplet distance.
//!
//! ```
//! use reconstruction::prelude::*;
//! use phylo::distance::patristic_matrix;
//! use phylo::builder::figure1_tree;
//!
//! // Reconstructing from the *true* patristic distances recovers the
//! // topology exactly.
//! let gold = figure1_tree();
//! let matrix = patristic_matrix(&gold).unwrap();
//! let inferred = neighbor_joining(&matrix).unwrap();
//! let rf = robinson_foulds(&gold, &inferred).unwrap();
//! assert_eq!(rf.distance, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod distance;
pub mod nj;
pub mod upgma;

pub use compare::{
    compare_sources, majority_consensus, robinson_foulds, triplet_distance, CladeAgreement,
    CladeSource, RfResult, SourceComparison,
};
pub use distance::{jc_corrected_matrix, k2p_corrected_matrix, p_distance_matrix, DistanceError};
pub use nj::neighbor_joining;
pub use upgma::upgma;

/// Commonly used items.
pub mod prelude {
    pub use crate::compare::{
        compare_sources, majority_consensus, robinson_foulds, triplet_distance, CladeAgreement,
        CladeSource, RfResult, SourceComparison,
    };
    pub use crate::distance::{
        jc_corrected_matrix, k2p_corrected_matrix, p_distance_matrix, DistanceError,
    };
    pub use crate::nj::neighbor_joining;
    pub use crate::upgma::upgma;
}
