//! Tree comparison metrics: Robinson–Foulds, consensus and triplet distance.
//!
//! The Benchmark Manager scores a reconstructed tree against the projected
//! gold-standard subtree. The workhorse metric is the Robinson–Foulds (RF)
//! distance — the size of the symmetric difference between the two trees'
//! bipartition (split) sets — computed here with bitset cluster tables, the
//! same idea behind Day's linear-time comparison cited by the paper
//! (ref \[1\]). A majority-rule consensus builder (the subject of that
//! citation) and a triplet distance round out the toolbox.

use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from tree comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The two trees are over different leaf-name sets.
    LeafSetMismatch {
        /// Names only present in the first tree.
        only_in_a: Vec<String>,
        /// Names only present in the second tree.
        only_in_b: Vec<String>,
    },
    /// A tree has unnamed or duplicate leaves.
    BadLeaves(String),
    /// Need at least this many leaves for the metric.
    TooFewLeaves(usize),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::LeafSetMismatch {
                only_in_a,
                only_in_b,
            } => write!(
                f,
                "leaf sets differ (only in first: {only_in_a:?}; only in second: {only_in_b:?})"
            ),
            CompareError::BadLeaves(m) => write!(f, "bad leaves: {m}"),
            CompareError::TooFewLeaves(n) => write!(f, "need at least {n} leaves"),
        }
    }
}

impl std::error::Error for CompareError {}

/// Result of a Robinson–Foulds comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfResult {
    /// Number of splits present in exactly one of the trees.
    pub distance: usize,
    /// Maximum possible distance for these trees (sum of internal-edge
    /// counts), used for normalization.
    pub max_distance: usize,
    /// `distance / max_distance`, or 0 when `max_distance` is 0.
    pub normalized: f64,
    /// Number of splits shared by both trees.
    pub shared: usize,
}

/// A set of leaves represented as a bitset over a fixed leaf ordering.
type LeafSet = Vec<u64>;

fn empty_set(n: usize) -> LeafSet {
    vec![0u64; n.div_ceil(64)]
}

fn set_bit(set: &mut LeafSet, i: usize) {
    set[i / 64] |= 1 << (i % 64);
}

fn get_bit(set: &LeafSet, i: usize) -> bool {
    set[i / 64] & (1 << (i % 64)) != 0
}

fn union_into(dst: &mut LeafSet, src: &LeafSet) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn count_bits(set: &LeafSet) -> usize {
    set.iter().map(|w| w.count_ones() as usize).sum()
}

fn complement(set: &LeafSet, n: usize) -> LeafSet {
    let mut out: LeafSet = set.iter().map(|w| !w).collect();
    // Mask off the bits beyond n.
    let excess = out.len() * 64 - n;
    if excess > 0 {
        let last = out.len() - 1;
        out[last] &= u64::MAX >> excess;
    }
    out
}

/// Collect the leaf-name → index map, failing on unnamed or duplicate leaves.
fn leaf_index(tree: &Tree) -> Result<HashMap<String, usize>, CompareError> {
    let mut map = HashMap::new();
    for (i, leaf) in tree.leaf_ids().enumerate() {
        let name = tree
            .name(leaf)
            .ok_or_else(|| CompareError::BadLeaves(format!("leaf {leaf} is unnamed")))?;
        if map.insert(name.to_string(), i).is_some() {
            return Err(CompareError::BadLeaves(format!(
                "duplicate leaf name `{name}`"
            )));
        }
    }
    Ok(map)
}

fn check_same_leaves(
    a: &HashMap<String, usize>,
    b: &HashMap<String, usize>,
) -> Result<(), CompareError> {
    if a.len() == b.len() && a.keys().all(|k| b.contains_key(k)) {
        return Ok(());
    }
    let mut only_in_a: Vec<String> = a.keys().filter(|k| !b.contains_key(*k)).cloned().collect();
    let mut only_in_b: Vec<String> = b.keys().filter(|k| !a.contains_key(*k)).cloned().collect();
    only_in_a.sort();
    only_in_b.sort();
    Err(CompareError::LeafSetMismatch {
        only_in_a,
        only_in_b,
    })
}

/// Compute, for every node, the bitset of leaf indices (according to `index`)
/// below it. Returned as a map from node to set, computed in post-order.
fn node_leafsets(tree: &Tree, index: &HashMap<String, usize>) -> HashMap<NodeId, LeafSet> {
    let n = index.len();
    let mut sets: HashMap<NodeId, LeafSet> = HashMap::with_capacity(tree.node_count());
    for node in tree.postorder() {
        let mut set = empty_set(n);
        if tree.is_leaf(node) {
            if let Some(name) = tree.name(node) {
                if let Some(&i) = index.get(name) {
                    set_bit(&mut set, i);
                }
            }
        } else {
            for &c in tree.children(node) {
                let child_set = sets
                    .get(&c)
                    .expect("post-order visits children first")
                    .clone();
                union_into(&mut set, &child_set);
            }
        }
        sets.insert(node, set);
    }
    sets
}

/// Collect the non-trivial unrooted splits of a tree (canonicalized so the
/// side not containing leaf 0 is stored), given a shared leaf index.
fn splits(tree: &Tree, index: &HashMap<String, usize>) -> HashSet<LeafSet> {
    let n = index.len();
    let sets = node_leafsets(tree, index);
    let mut out = HashSet::new();
    for node in tree.node_ids() {
        if tree.is_leaf(node) || tree.parent(node).is_none() {
            continue; // leaf edges and the root give trivial splits
        }
        let set = &sets[&node];
        let size = count_bits(set);
        if size <= 1 || size >= n - 1 {
            continue; // trivial split
        }
        let canonical = if get_bit(set, 0) {
            complement(set, n)
        } else {
            set.clone()
        };
        out.insert(canonical);
    }
    out
}

/// Collect the non-trivial **rooted clades** (clusters) of a tree.
fn clades(tree: &Tree, index: &HashMap<String, usize>) -> HashSet<LeafSet> {
    let n = index.len();
    let sets = node_leafsets(tree, index);
    let mut out = HashSet::new();
    for node in tree.node_ids() {
        if tree.is_leaf(node) {
            continue;
        }
        let set = &sets[&node];
        let size = count_bits(set);
        if size <= 1 || size >= n {
            continue;
        }
        out.insert(set.clone());
    }
    out
}

/// Robinson–Foulds distance over **unrooted splits** — the standard metric
/// for scoring a reconstruction against the truth when the reconstruction's
/// rooting is arbitrary (as with Neighbor-Joining).
pub fn robinson_foulds(a: &Tree, b: &Tree) -> Result<RfResult, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    if ia.len() < 3 {
        return Ok(RfResult {
            distance: 0,
            max_distance: 0,
            normalized: 0.0,
            shared: 0,
        });
    }
    let sa = splits(a, &ia);
    let sb = splits(b, &ia);
    let shared = sa.intersection(&sb).count();
    let distance = (sa.len() - shared) + (sb.len() - shared);
    let max_distance = sa.len() + sb.len();
    let normalized = if max_distance == 0 {
        0.0
    } else {
        distance as f64 / max_distance as f64
    };
    Ok(RfResult {
        distance,
        max_distance,
        normalized,
        shared,
    })
}

/// Robinson–Foulds distance over **rooted clades**; appropriate when both
/// trees are meaningfully rooted (e.g. comparing against a projection of the
/// rooted gold standard with a clock-based method such as UPGMA).
pub fn rooted_robinson_foulds(a: &Tree, b: &Tree) -> Result<RfResult, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    let ca = clades(a, &ia);
    let cb = clades(b, &ia);
    let shared = ca.intersection(&cb).count();
    let distance = (ca.len() - shared) + (cb.len() - shared);
    let max_distance = ca.len() + cb.len();
    let normalized = if max_distance == 0 {
        0.0
    } else {
        distance as f64 / max_distance as f64
    };
    Ok(RfResult {
        distance,
        max_distance,
        normalized,
        shared,
    })
}

/// Majority-rule consensus of a set of trees over the same leaf set: the tree
/// containing exactly the clades that appear in more than half of the inputs.
/// This is the linear-time majority tree problem of the paper's ref \[1\].
pub fn majority_consensus(trees: &[Tree]) -> Result<Tree, CompareError> {
    if trees.is_empty() {
        return Err(CompareError::TooFewLeaves(1));
    }
    let index = leaf_index(&trees[0])?;
    for t in &trees[1..] {
        let it = leaf_index(t)?;
        check_same_leaves(&index, &it)?;
    }
    let n = index.len();
    let mut names: Vec<String> = vec![String::new(); n];
    for (name, &i) in &index {
        names[i] = name.clone();
    }

    // Count each rooted clade across the inputs.
    let mut counts: HashMap<LeafSet, usize> = HashMap::new();
    for t in trees {
        for clade in clades(t, &index) {
            *counts.entry(clade).or_insert(0) += 1;
        }
    }
    let majority: Vec<LeafSet> = counts
        .into_iter()
        .filter(|(_, c)| 2 * *c > trees.len())
        .map(|(clade, _)| clade)
        .collect();

    // Build the consensus: start from the root clade (all leaves), add
    // majority clades from largest to smallest under their tightest parent.
    let mut tree = Tree::new();
    let root = tree.add_node();
    let mut full = empty_set(n);
    for i in 0..n {
        set_bit(&mut full, i);
    }
    // (clade, node) pairs already placed, ordered by insertion.
    let mut placed: Vec<(LeafSet, NodeId)> = vec![(full, root)];
    let mut ordered = majority;
    ordered.sort_by_key(|c| std::cmp::Reverse(count_bits(c)));
    for clade in ordered {
        let parent = tightest_superset(&placed, &clade);
        let node = tree.add_child(parent, None, None).expect("parent exists");
        placed.push((clade, node));
    }
    // Attach leaves under their tightest containing clade.
    for (i, name) in names.iter().enumerate() {
        let mut single = empty_set(n);
        set_bit(&mut single, i);
        let parent = tightest_superset(&placed, &single);
        tree.add_child(parent, Some(name.clone()), None)
            .expect("parent exists");
    }
    Ok(tree)
}

/// Among the placed clades, find the node of the smallest clade that is a
/// superset of `target`. Majority clades are pairwise compatible, so the
/// tightest superset is unique.
fn tightest_superset(placed: &[(LeafSet, NodeId)], target: &LeafSet) -> NodeId {
    let mut best: Option<(usize, NodeId)> = None;
    for (clade, node) in placed {
        if is_superset(clade, target) {
            let size = count_bits(clade);
            if best.is_none_or(|(bs, _)| size < bs) {
                best = Some((size, *node));
            }
        }
    }
    best.expect("the root clade contains every leaf").1
}

fn is_superset(sup: &LeafSet, sub: &LeafSet) -> bool {
    sup.iter().zip(sub).all(|(a, b)| a & b == *b)
}

/// Fraction of leaf triplets whose rooted topology differs between the two
/// trees. Exact O(n³) computation — intended for the sample sizes the
/// benchmark manager works with (≤ a few hundred taxa).
pub fn triplet_distance(a: &Tree, b: &Tree) -> Result<f64, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    let names: Vec<String> = ia.keys().cloned().collect();
    if names.len() < 3 {
        return Err(CompareError::TooFewLeaves(3));
    }
    let leaves_a: Vec<NodeId> = names
        .iter()
        .map(|n| a.find_leaf_by_name(n).expect("leaf exists"))
        .collect();
    let leaves_b: Vec<NodeId> = names
        .iter()
        .map(|n| b.find_leaf_by_name(n).expect("leaf exists"))
        .collect();
    let depths_a = a.all_depths();
    let depths_b = b.all_depths();

    // Rooted triplet topology: which of the three pairs has the deepest LCA;
    // 0,1,2 for the pair index, 3 for unresolved (all LCAs equal).
    let topology = |tree: &Tree, depths: &[usize], x: NodeId, y: NodeId, z: NodeId| -> u8 {
        let dxy = depths[tree.lca(x, y).index()];
        let dxz = depths[tree.lca(x, z).index()];
        let dyz = depths[tree.lca(y, z).index()];
        if dxy > dxz && dxy > dyz {
            0
        } else if dxz > dxy && dxz > dyz {
            1
        } else if dyz > dxy && dyz > dxz {
            2
        } else {
            3
        }
    };

    let n = names.len();
    let mut differing = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                let ta = topology(a, &depths_a, leaves_a[i], leaves_a[j], leaves_a[k]);
                let tb = topology(b, &depths_b, leaves_b[i], leaves_b[j], leaves_b[k]);
                if ta != tb {
                    differing += 1;
                }
                total += 1;
            }
        }
    }
    Ok(differing as f64 / total as f64)
}

// ---------------------------------------------------------------------------
// Abstract clade sources and streaming comparison
// ---------------------------------------------------------------------------

/// Visitor of a pre-order node stream: `(pre, end, node, leaf_name)`.
pub type NodeVisitor<'a> = dyn FnMut(u32, u32, u32, Option<&str>) + 'a;

/// An abstract supplier of a rooted tree's structure, streamed in pre-order.
///
/// The comparison metrics above require two materialized [`Tree`]s; this
/// trait decouples them from where the topology lives. Anything that can
/// enumerate its nodes in pre-order with subtree intervals — an in-memory
/// tree, or a database range scan over a persistent interval index — can be
/// compared without building a `Tree` first. [`compare_sources`] computes
/// rooted and unrooted Robinson–Foulds (and optionally the triplet distance)
/// exactly, in one pass over each source plus `O(n log n)` bookkeeping,
/// using the interval technique of Day's linear-time comparison.
pub trait CladeSource {
    /// Error produced while streaming (must subsume comparison errors).
    type Error: From<CompareError>;

    /// Stream every node in pre-order. For each node the visitor receives
    /// `(pre, end, node, leaf_name)`: the node's pre-order rank, the largest
    /// pre-order rank in its subtree, a source-local node id, and — for
    /// childless nodes (`pre == end`) — the leaf's name. Internal nodes may
    /// pass `None`; leaf nodes with `None` make the comparison fail with
    /// [`CompareError::BadLeaves`].
    fn for_each_node(&self, visit: &mut NodeVisitor<'_>) -> Result<(), Self::Error>;

    /// Optional node-count hint used only for preallocation.
    fn node_count_hint(&self) -> usize {
        0
    }
}

impl CladeSource for Tree {
    type Error = CompareError;

    fn node_count_hint(&self) -> usize {
        self.node_count()
    }

    fn for_each_node(&self, visit: &mut NodeVisitor<'_>) -> Result<(), CompareError> {
        if self.is_empty() {
            return Ok(());
        }
        let n = self.node_count();
        let mut pre_of = vec![0u32; n];
        let mut end_of = vec![0u32; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let root = self.root_unchecked();
        order.push(root);
        let mut next_pre = 1u32;
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        while let Some(&(node, child_idx)) = stack.last() {
            let children = self.children(node);
            if child_idx < children.len() {
                stack.last_mut().expect("just peeked").1 += 1;
                let child = children[child_idx];
                pre_of[child.index()] = next_pre;
                next_pre += 1;
                order.push(child);
                stack.push((child, 0));
            } else {
                end_of[node.index()] = next_pre - 1;
                stack.pop();
            }
        }
        for &node in &order {
            let ai = node.index();
            let name = if self.is_leaf(node) {
                self.name(node)
            } else {
                None
            };
            visit(pre_of[ai], end_of[ai], node.0, name);
        }
        Ok(())
    }
}

/// Whether one internal node's clade of the second source agrees with the
/// first source — the per-clade data an experiment stores so that *where* a
/// reconstruction went wrong stays queryable, not just how far off it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CladeAgreement {
    /// Source-local node id (as streamed by the [`CladeSource`]).
    pub node: u32,
    /// Number of leaves in the clade.
    pub size: u32,
    /// `true` when the first source contains the same clade.
    pub agrees: bool,
}

/// Everything [`compare_sources`] computes in its two streaming passes.
#[derive(Debug, Clone)]
pub struct SourceComparison {
    /// Unrooted Robinson–Foulds over bipartitions.
    pub rf: RfResult,
    /// Rooted Robinson–Foulds over clades.
    pub rooted_rf: RfResult,
    /// Triplet distance, when requested.
    pub triplet: Option<f64>,
    /// Per-clade agreement for every non-trivial internal node of the
    /// *second* source (sized `2 ..= n-1` leaves).
    pub clades: Vec<CladeAgreement>,
}

/// Aggregates of a set of leaf ranks: enough to decide, in O(1), whether the
/// set is exactly the contiguous interval `[min, max]` (`count` matches).
#[derive(Debug, Clone, Copy)]
struct Agg {
    min: u32,
    max: u32,
    count: u32,
}

impl Agg {
    const EMPTY: Agg = Agg {
        min: u32::MAX,
        max: 0,
        count: 0,
    };

    fn push(&mut self, rank: u32) {
        self.min = self.min.min(rank);
        self.max = self.max.max(rank);
        self.count += 1;
    }

    fn merge(&mut self, other: Agg) {
        if other.count == 0 {
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// The set is exactly the interval `[min, max]`.
    fn contiguous(&self) -> bool {
        self.count > 0 && self.max - self.min + 1 == self.count
    }
}

/// Sparse table for O(1) range-minimum queries over the adjacent-leaf LCA
/// depths; `min(l, r)` is inclusive on both ends.
struct Rmq {
    levels: Vec<Vec<u32>>,
}

impl Rmq {
    fn new(values: &[u32]) -> Rmq {
        let mut levels = vec![values.to_vec()];
        let mut width = 1usize;
        while width * 2 <= values.len() {
            let prev = levels.last().expect("seeded with one level");
            let next: Vec<u32> = (0..prev.len() - width)
                .map(|i| prev[i].min(prev[i + width]))
                .collect();
            levels.push(next);
            width *= 2;
        }
        Rmq { levels }
    }

    fn min(&self, l: usize, r: usize) -> u32 {
        debug_assert!(l <= r);
        let k = (usize::BITS - 1 - (r - l + 1).leading_zeros()) as usize;
        let row = &self.levels[k];
        row[l].min(row[r + 1 - (1usize << k)])
    }
}

/// The first source, digested: leaf ranks by name, the clade/split interval
/// sets, and (when triplets are wanted) adjacent-leaf LCA depths. Every
/// clade of a tree is a contiguous interval of its pre-order leaf ranks, so
/// set equality against this source reduces to an interval lookup.
struct CladeIndex {
    names: Vec<String>,
    rank: HashMap<String, u32>,
    /// Non-trivial rooted clades as leaf-rank intervals (deduped).
    clades: HashSet<(u32, u32)>,
    /// Canonical unrooted split sides (the side not containing rank 0),
    /// which are intervals too: a clade not containing rank 0 is `[lo, hi]`
    /// with `lo > 0`; a prefix clade `[0, hi]` canonicalizes to the suffix
    /// `[hi+1, n-1]`.
    splits: HashSet<(u32, u32)>,
    adj: Option<Rmq>,
}

impl CladeIndex {
    fn build<A: CladeSource>(a: &A, want_depths: bool) -> Result<CladeIndex, A::Error> {
        struct Open {
            pre: u32,
            end: u32,
            leaf_lo: u32,
        }
        let mut stack: Vec<Open> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut rank: HashMap<String, u32> = HashMap::new();
        // (is_root, leaf_lo, leaf_hi) per internal node; filtered below once
        // the leaf count is known.
        let mut intervals: Vec<(bool, u32, u32)> = Vec::with_capacity(a.node_count_hint());
        let mut adj: Vec<u32> = Vec::new();
        let mut prev_leaf_pre = 0u32;
        let mut err: Option<CompareError> = None;
        a.for_each_node(&mut |pre, end, node, name| {
            if err.is_some() {
                return;
            }
            while stack.last().is_some_and(|o| o.end < pre) {
                let o = stack.pop().expect("just checked");
                intervals.push((
                    o.pre == 0,
                    o.leaf_lo,
                    (names.len() as u32).saturating_sub(1),
                ));
            }
            if pre == end {
                let Some(name) = name else {
                    err = Some(CompareError::BadLeaves(format!("leaf {node} is unnamed")));
                    return;
                };
                let r = names.len() as u32;
                if rank.insert(name.to_string(), r).is_some() {
                    err = Some(CompareError::BadLeaves(format!(
                        "duplicate leaf name `{name}`"
                    )));
                    return;
                }
                if want_depths && r > 0 {
                    // LCA of consecutive leaves: the deepest open ancestor
                    // that was already open at the previous leaf. Stack
                    // index equals node depth.
                    let idx = stack.partition_point(|o| o.pre <= prev_leaf_pre);
                    adj.push(idx.saturating_sub(1) as u32);
                }
                prev_leaf_pre = pre;
                names.push(name.to_string());
            } else {
                stack.push(Open {
                    pre,
                    end,
                    leaf_lo: names.len() as u32,
                });
            }
        })?;
        if let Some(e) = err {
            return Err(A::Error::from(e));
        }
        while let Some(o) = stack.pop() {
            intervals.push((
                o.pre == 0,
                o.leaf_lo,
                (names.len() as u32).saturating_sub(1),
            ));
        }
        let n = names.len() as u32;
        let mut clades = HashSet::new();
        let mut splits = HashSet::new();
        for &(is_root, lo, hi) in &intervals {
            let size = hi - lo + 1;
            if size >= 2 && size < n {
                clades.insert((lo, hi));
            }
            if !is_root && size >= 2 && n >= 2 && size <= n - 2 {
                let side = if lo == 0 { (hi + 1, n - 1) } else { (lo, hi) };
                splits.insert(side);
            }
        }
        Ok(CladeIndex {
            names,
            rank,
            clades,
            splits,
            adj: if want_depths && !adj.is_empty() {
                Some(Rmq::new(&adj))
            } else {
                None
            },
        })
    }
}

fn rf_result(sa: usize, sb: usize, shared: usize) -> RfResult {
    let distance = (sa - shared) + (sb - shared);
    let max_distance = sa + sb;
    RfResult {
        distance,
        max_distance,
        normalized: if max_distance == 0 {
            0.0
        } else {
            distance as f64 / max_distance as f64
        },
        shared,
    }
}

/// Compare two [`CladeSource`]s: rooted and unrooted Robinson–Foulds,
/// per-clade agreement of the second source against the first, and — when
/// `triplets` is set — the exact triplet distance. Produces the same values
/// as [`robinson_foulds`] / [`rooted_robinson_foulds`] /
/// [`triplet_distance`] on the materialized trees, without materializing
/// anything: one pre-order pass over each source.
///
/// The interval technique: number leaves `0..n` by their pre-order position
/// in the *first* source. Every clade of the first source is then a
/// contiguous rank interval. Stream the second source computing, per clade,
/// the `(min, max, count)` aggregates of its leaves' ranks — the clade
/// matches one of the first source's iff it is contiguous
/// (`max - min + 1 == count`) and its interval is present. Unrooted splits
/// canonicalize to the side not containing rank 0; for second-source clades
/// that *do* contain rank 0 (the ancestors of that leaf), the complement's
/// aggregates are assembled from the sibling subtrees hanging off the
/// ancestor chain, still inside the single pass.
pub fn compare_sources<A, B, E>(a: &A, b: &B, triplets: bool) -> Result<SourceComparison, E>
where
    A: CladeSource,
    B: CladeSource,
    E: From<A::Error> + From<B::Error> + From<CompareError>,
{
    let index = CladeIndex::build(a, triplets).map_err(E::from)?;
    compare_against_index(&index, b, triplets).map_err(E::from)
}

fn compare_against_index<B: CladeSource>(
    index: &CladeIndex,
    b: &B,
    triplets: bool,
) -> Result<SourceComparison, B::Error> {
    let n = index.names.len() as u32;

    struct Open {
        pre: u32,
        end: u32,
        node: u32,
        leaf_lo: u32,
        agg: Agg,
    }
    struct Closed {
        node: u32,
        pre: u32,
        b_lo: u32,
        b_hi: u32,
        agg: Agg,
        is_root: bool,
    }

    let mut stack: Vec<Open> = Vec::new();
    let mut closed: Vec<Closed> = Vec::with_capacity(b.node_count_hint());
    let mut seen = vec![false; n as usize];
    let mut only_in_b: Vec<String> = Vec::new();
    let mut perm: Vec<u32> = vec![0; n as usize]; // A-rank -> B-rank
    let mut b_adj: Vec<u32> = Vec::new();
    let mut b_leaves = 0u32;
    let mut prev_leaf_pre = 0u32;
    // The ancestor chain of leaf rank 0 ("x"), snapshot at its arrival, and
    // the per-chain-depth classes of leaves *outside* the next-deeper chain
    // node — the building blocks of the complement aggregates.
    let mut chain: Vec<(u32, u32)> = Vec::new(); // (pre, end) per depth
    let mut class_agg: Vec<Agg> = Vec::new();
    let mut chain_live = 0usize;
    let mut err: Option<CompareError> = None;

    b.for_each_node(&mut |pre, end, node, name| {
        if err.is_some() {
            return;
        }
        while stack.last().is_some_and(|o| o.end < pre) {
            let o = stack.pop().expect("just checked");
            if let Some(parent) = stack.last_mut() {
                parent.agg.merge(o.agg);
            }
            closed.push(Closed {
                node: o.node,
                pre: o.pre,
                b_lo: o.leaf_lo,
                b_hi: b_leaves.saturating_sub(1),
                agg: o.agg,
                is_root: o.pre == 0,
            });
        }
        if pre == end {
            let Some(name) = name else {
                err = Some(CompareError::BadLeaves(format!("leaf {node} is unnamed")));
                return;
            };
            let Some(&rank) = index.rank.get(name) else {
                only_in_b.push(name.to_string());
                return;
            };
            if seen[rank as usize] {
                err = Some(CompareError::BadLeaves(format!(
                    "duplicate leaf name `{name}`"
                )));
                return;
            }
            seen[rank as usize] = true;
            if triplets && b_leaves > 0 {
                let idx = stack.partition_point(|o| o.pre <= prev_leaf_pre);
                b_adj.push(idx.saturating_sub(1) as u32);
            }
            prev_leaf_pre = pre;
            perm[rank as usize] = b_leaves;
            if rank == 0 {
                // Snapshot x's ancestor chain *before* pushing x: each open
                // level's aggregate so far is exactly its class of pre-x
                // leaves (leaves under it but not under the next open
                // child, which is x's ancestor too).
                chain = stack.iter().map(|o| (o.pre, o.end)).collect();
                class_agg = stack.iter().map(|o| o.agg).collect();
                chain_live = chain.len();
            } else if chain_live > 0 && pre > chain[0].0 {
                // Post-x leaves: assign to the deepest chain node still
                // covering this pre rank.
                while chain_live > 0 && chain[chain_live - 1].1 < pre {
                    chain_live -= 1;
                }
                if chain_live > 0 {
                    class_agg[chain_live - 1].push(rank);
                }
            }
            if let Some(top) = stack.last_mut() {
                top.agg.push(rank);
            }
            b_leaves += 1;
        } else {
            stack.push(Open {
                pre,
                end,
                node,
                leaf_lo: b_leaves,
                agg: Agg::EMPTY,
            });
        }
    })?;
    if let Some(e) = err {
        return Err(B::Error::from(e));
    }
    // Final drain: the rightmost root-to-leaf path (including the root's
    // last child) only closes at end of stream.
    while let Some(o) = stack.pop() {
        if let Some(parent) = stack.last_mut() {
            parent.agg.merge(o.agg);
        }
        closed.push(Closed {
            node: o.node,
            pre: o.pre,
            b_lo: o.leaf_lo,
            b_hi: b_leaves.saturating_sub(1),
            agg: o.agg,
            is_root: o.pre == 0,
        });
    }

    // Leaf-set checks, mirroring `leaf_index` + `check_same_leaves`.
    let mut only_in_a: Vec<String> = index
        .names
        .iter()
        .enumerate()
        .filter(|(i, _)| !seen[*i])
        .map(|(_, name)| name.clone())
        .collect();
    if !only_in_a.is_empty() || !only_in_b.is_empty() {
        only_in_a.sort();
        only_in_b.sort();
        return Err(B::Error::from(CompareError::LeafSetMismatch {
            only_in_a,
            only_in_b,
        }));
    }

    // Complement aggregates for the chain: comp(depth d) = union of the
    // classes strictly above d.
    let mut comp: Vec<Agg> = Vec::with_capacity(chain.len());
    let mut running = Agg::EMPTY;
    for &class in &class_agg {
        comp.push(running);
        running.merge(class);
    }
    let chain_depth: HashMap<u32, usize> = chain
        .iter()
        .enumerate()
        .map(|(d, &(pre, _))| (pre, d))
        .collect();

    // Rooted clades + per-clade agreement.
    let mut clade_keys: HashSet<(u32, u32)> = HashSet::new();
    let mut sb_clades = 0usize;
    let mut shared_clades = 0usize;
    let mut agreement = Vec::new();
    for c in &closed {
        let size = c.agg.count;
        if size < 2 || n < 1 || size > n - 1 {
            continue;
        }
        let agrees = c.agg.contiguous() && index.clades.contains(&(c.agg.min, c.agg.max));
        agreement.push(CladeAgreement {
            node: c.node,
            size,
            agrees,
        });
        if clade_keys.insert((c.b_lo, c.b_hi)) {
            sb_clades += 1;
            if agrees {
                shared_clades += 1;
            }
        }
    }
    let rooted_rf = rf_result(index.clades.len(), sb_clades, shared_clades);

    // Unrooted splits. Two *distinct* clades carry the same split exactly
    // when they are complements — disjoint and jointly covering, i.e. the
    // two sides of a full-leaf-set bifurcation (possibly wrapped in unary
    // chains). In the source's own leaf-rank space every clade is an
    // interval, so a clade's complement is itself a clade only when the
    // clade is a prefix (complement = the completing suffix) or a suffix
    // (complement = the completing prefix) and that completing interval
    // exists as a clade. Skip the x-containing side of each such pair so
    // the split counts once — exactly as the HashSet canonicalization in
    // `splits` collapses it.
    let split_filter = |c: &&Closed| {
        let size = c.agg.count;
        !c.is_root && size >= 2 && n >= 2 && size <= n - 2
    };
    let partner_intervals: HashSet<(u32, u32)> = closed
        .iter()
        .filter(split_filter)
        .filter(|c| c.agg.min != 0)
        .map(|c| (c.b_lo, c.b_hi))
        .collect();
    let mut split_keys: HashSet<(u32, u32)> = HashSet::new();
    let mut sb_splits = 0usize;
    let mut shared_splits = 0usize;
    for c in closed.iter().filter(split_filter) {
        let contains_x = c.agg.min == 0;
        if contains_x {
            let has_partner = (c.b_lo == 0
                && c.b_hi + 1 < n
                && partner_intervals.contains(&(c.b_hi + 1, n - 1)))
                || (c.b_hi + 1 == n && c.b_lo > 0 && partner_intervals.contains(&(0, c.b_lo - 1)));
            if has_partner {
                continue;
            }
        }
        if !split_keys.insert((c.b_lo, c.b_hi)) {
            continue;
        }
        sb_splits += 1;
        let side = if contains_x {
            match chain_depth.get(&c.pre) {
                Some(&d) => comp[d],
                // A clade containing rank 0 is by construction on the
                // chain; treat a miss as a non-matching side rather than
                // panicking on a malformed source.
                None => Agg::EMPTY,
            }
        } else {
            c.agg
        };
        if side.contiguous() && index.splits.contains(&(side.min, side.max)) {
            shared_splits += 1;
        }
    }
    let rf = rf_result(index.splits.len(), sb_splits, shared_splits);

    // Triplet distance over range-min LCA depths.
    let triplet = if triplets {
        if n < 3 {
            return Err(B::Error::from(CompareError::TooFewLeaves(3)));
        }
        let rmq_a = index
            .adj
            .as_ref()
            .expect("index built with depths when triplets are requested");
        let rmq_b = Rmq::new(&b_adj);
        let da = |i: u32, j: u32| rmq_a.min(i as usize, j as usize - 1);
        let db = |i: u32, j: u32| {
            let (lo, hi) = if perm[i as usize] < perm[j as usize] {
                (perm[i as usize], perm[j as usize])
            } else {
                (perm[j as usize], perm[i as usize])
            };
            rmq_b.min(lo as usize, hi as usize - 1)
        };
        let topology = |dxy: u32, dxz: u32, dyz: u32| -> u8 {
            if dxy > dxz && dxy > dyz {
                0
            } else if dxz > dxy && dxz > dyz {
                1
            } else if dyz > dxy && dyz > dxz {
                2
            } else {
                3
            }
        };
        let mut differing = 0usize;
        let mut total = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                for k in (j + 1)..n {
                    let ta = topology(da(i, j), da(i, k), da(j, k));
                    let tb = topology(db(i, j), db(i, k), db(j, k));
                    if ta != tb {
                        differing += 1;
                    }
                    total += 1;
                }
            }
        }
        Some(differing as f64 / total as f64)
    } else {
        None
    };

    Ok(SourceComparison {
        rf,
        rooted_rf,
        triplet,
        clades: agreement,
    })
}

/// Unrooted Robinson–Foulds over two [`CladeSource`]s.
pub fn robinson_foulds_sources<A, B, E>(a: &A, b: &B) -> Result<RfResult, E>
where
    A: CladeSource,
    B: CladeSource,
    E: From<A::Error> + From<B::Error> + From<CompareError>,
{
    compare_sources(a, b, false).map(|c: SourceComparison| c.rf)
}

/// Rooted Robinson–Foulds over two [`CladeSource`]s.
pub fn rooted_robinson_foulds_sources<A, B, E>(a: &A, b: &B) -> Result<RfResult, E>
where
    A: CladeSource,
    B: CladeSource,
    E: From<A::Error> + From<B::Error> + From<CompareError>,
{
    compare_sources(a, b, false).map(|c: SourceComparison| c.rooted_rf)
}

/// Triplet distance over two [`CladeSource`]s.
pub fn triplet_distance_sources<A, B, E>(a: &A, b: &B) -> Result<f64, E>
where
    A: CladeSource,
    B: CladeSource,
    E: From<A::Error> + From<B::Error> + From<CompareError>,
{
    compare_sources(a, b, true).map(|c: SourceComparison| {
        c.triplet
            .expect("triplets were requested from compare_sources")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::builder::figure1_tree;
    use phylo::newick;

    fn t(s: &str) -> Tree {
        newick::parse(s).unwrap()
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        let a = figure1_tree();
        let rf = robinson_foulds(&a, &a.clone()).unwrap();
        assert_eq!(rf.distance, 0);
        assert_eq!(rf.normalized, 0.0);
        assert_eq!(rf.shared, rf.max_distance / 2);
        let rrf = rooted_robinson_foulds(&a, &a.clone()).unwrap();
        assert_eq!(rrf.distance, 0);
        assert_eq!(triplet_distance(&a, &a.clone()).unwrap(), 0.0);
    }

    #[test]
    fn different_orderings_are_identical() {
        let a = t("((A,B),(C,D));");
        let b = t("((D,C),(B,A));");
        assert_eq!(robinson_foulds(&a, &b).unwrap().distance, 0);
        assert_eq!(rooted_robinson_foulds(&a, &b).unwrap().distance, 0);
    }

    #[test]
    fn maximally_different_quartets() {
        let a = t("((A,B),(C,D));");
        let b = t("((A,C),(B,D));");
        let rf = robinson_foulds(&a, &b).unwrap();
        // Each tree has exactly one non-trivial split and they differ.
        assert_eq!(rf.distance, 2);
        assert_eq!(rf.max_distance, 2);
        assert_eq!(rf.normalized, 1.0);
        assert_eq!(rf.shared, 0);
    }

    #[test]
    fn star_tree_versus_resolved() {
        let star = t("(A,B,C,D);");
        let resolved = t("((A,B),(C,D));");
        let rf = robinson_foulds(&star, &resolved).unwrap();
        // The star has no internal splits; distance = 1 (the resolved split),
        // max = 1.
        assert_eq!(rf.distance, 1);
        assert_eq!(rf.max_distance, 1);
    }

    #[test]
    fn rooted_vs_unrooted_difference() {
        // Two rootings of the same unrooted tree: unrooted RF is 0, rooted RF
        // is not.
        let a = t("((A,B),(C,D));");
        let b = t("(A,(B,(C,D)));");
        assert_eq!(robinson_foulds(&a, &b).unwrap().distance, 0);
        assert!(rooted_robinson_foulds(&a, &b).unwrap().distance > 0);
    }

    #[test]
    fn leaf_set_mismatch_detected() {
        let a = t("((A,B),C);");
        let b = t("((A,B),D);");
        match robinson_foulds(&a, &b) {
            Err(CompareError::LeafSetMismatch {
                only_in_a,
                only_in_b,
            }) => {
                assert_eq!(only_in_a, vec!["C"]);
                assert_eq!(only_in_b, vec!["D"]);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unnamed_leaves_rejected() {
        let mut a = Tree::new();
        let r = a.add_node();
        a.add_child(r, None, None).unwrap();
        a.add_child(r, Some("X".into()), None).unwrap();
        assert!(matches!(
            robinson_foulds(&a, &a.clone()),
            Err(CompareError::BadLeaves(_))
        ));
    }

    #[test]
    fn tiny_trees_distance_zero() {
        let a = t("(A,B);");
        let b = t("(B,A);");
        let rf = robinson_foulds(&a, &b).unwrap();
        assert_eq!(rf.distance, 0);
        assert_eq!(rf.max_distance, 0);
    }

    #[test]
    fn triplet_distance_detects_swap() {
        let a = t("((A,B),C);");
        let b = t("((A,C),B);");
        let d = triplet_distance(&a, &b).unwrap();
        assert!(
            (d - 1.0).abs() < 1e-12,
            "single triplet fully differs, got {d}"
        );
        let c = t("(A,B,C);"); // unresolved
        let d2 = triplet_distance(&a, &c).unwrap();
        assert!((d2 - 1.0).abs() < 1e-12);
        assert!(triplet_distance(&a, &t("(A,B);")).is_err());
    }

    #[test]
    fn triplet_distance_partial() {
        // 5-leaf trees differing in one clade: some triplets agree, some not.
        let a = t("(((A,B),C),(D,E));");
        let b = t("(((A,C),B),(D,E));");
        let d = triplet_distance(&a, &b).unwrap();
        assert!(d > 0.0 && d < 1.0, "expected partial disagreement, got {d}");
    }

    #[test]
    fn majority_consensus_of_identical_trees_is_that_tree() {
        let a = t("((A,B),(C,D));");
        let cons = majority_consensus(&[a.clone(), a.clone(), a.clone()]).unwrap();
        assert_eq!(robinson_foulds(&a, &cons).unwrap().distance, 0);
        assert_eq!(rooted_robinson_foulds(&a, &cons).unwrap().distance, 0);
    }

    #[test]
    fn majority_consensus_keeps_only_majority_clades() {
        // Clade {A,B} appears in 2 of 3 trees; clade {C,D} in 2 of 3; the
        // conflicting clade {B,C} appears once and must be dropped.
        let t1 = t("((A,B),(C,D));");
        let t2 = t("((A,B),(C,D));");
        let t3 = t("(((B,C),A),D);");
        let cons = majority_consensus(&[t1.clone(), t2, t3]).unwrap();
        assert_eq!(rooted_robinson_foulds(&t1, &cons).unwrap().distance, 0);
    }

    #[test]
    fn majority_consensus_collapses_total_conflict() {
        // Three trees with three mutually incompatible resolutions: the
        // consensus is the star tree (no internal clades).
        let t1 = t("((A,B),C,D);");
        let t2 = t("((A,C),B,D);");
        let t3 = t("((A,D),B,C);");
        let cons = majority_consensus(&[t1, t2, t3]).unwrap();
        // Star: root plus 4 leaves.
        assert_eq!(cons.node_count(), 5);
        assert_eq!(cons.degree(cons.root_unchecked()), 4);
    }

    #[test]
    fn majority_consensus_errors() {
        assert!(majority_consensus(&[]).is_err());
        let a = t("((A,B),C);");
        let b = t("((A,B),D);");
        assert!(majority_consensus(&[a, b]).is_err());
    }

    /// Cross-validate the streaming source path against the bitset path on
    /// a pair of trees over the same leaf set.
    fn assert_sources_match(a: &Tree, b: &Tree) {
        let cmp: SourceComparison =
            compare_sources::<_, _, CompareError>(a, b, a.leaf_count() >= 3).unwrap();
        let rf = robinson_foulds(a, b).unwrap();
        assert_eq!(cmp.rf, rf, "unrooted RF disagrees");
        let rrf = rooted_robinson_foulds(a, b).unwrap();
        assert_eq!(cmp.rooted_rf, rrf, "rooted RF disagrees");
        if a.leaf_count() >= 3 {
            let t = triplet_distance(a, b).unwrap();
            let ts = cmp.triplet.expect("triplets requested");
            assert!(
                (t - ts).abs() < 1e-15,
                "triplet distance disagrees: {t} vs {ts}"
            );
        }
    }

    #[test]
    fn sources_match_bitset_path_on_fixtures() {
        let fixtures = [
            ("((A,B),(C,D));", "((A,B),(C,D));"),
            ("((A,B),(C,D));", "((A,C),(B,D));"),
            ("(A,B,C,D);", "((A,B),(C,D));"),
            ("((A,B),(C,D));", "(A,(B,(C,D)));"),
            ("(((A,B),C),(D,E));", "(((A,C),B),(D,E));"),
            ("((A,B),C);", "((A,C),B);"),
            ("(A,B,C);", "((A,B),C);"),
            ("(A,B);", "(B,A);"),
            (
                "((((A,B),C),D),(E,(F,(G,H))));",
                "((A,(B,(C,D))),((E,F),(G,H)));",
            ),
            // Multifurcations and asymmetric shapes.
            ("((A,B,C),(D,E),F);", "(((A,D),B),((C,E),F));"),
        ];
        for (na, nb) in fixtures {
            let a = t(na);
            let b = t(nb);
            assert_sources_match(&a, &b);
            assert_sources_match(&b, &a);
        }
        let fig = figure1_tree();
        assert_sources_match(&fig, &fig.clone());
    }

    #[test]
    fn sources_match_on_pseudorandom_trees() {
        // Deterministic pseudo-random binary trees over the same leaf set,
        // grown by splitting a leaf chosen by a linear-congruential walk.
        fn random_tree(n: usize, mut state: u64) -> Tree {
            let mut tree = Tree::new();
            let root = tree.add_node();
            let mut leaves = vec![root];
            while leaves.len() < n {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let pick = (state >> 33) as usize % leaves.len();
                let leaf = leaves.swap_remove(pick);
                let l = tree.add_child(leaf, None, Some(1.0)).unwrap();
                let r = tree.add_child(leaf, None, Some(1.0)).unwrap();
                leaves.push(l);
                leaves.push(r);
            }
            for (i, &leaf) in leaves.iter().enumerate() {
                tree.set_name(leaf, format!("T{i}")).unwrap();
            }
            tree
        }
        for (n, sa, sb) in [(4usize, 1u64, 2u64), (7, 3, 4), (12, 5, 6), (33, 7, 8)] {
            let a = random_tree(n, sa);
            let b = random_tree(n, sb);
            assert_sources_match(&a, &b);
            assert_sources_match(&a, &a.clone());
        }
    }

    #[test]
    fn sources_report_leaf_errors_like_the_bitset_path() {
        let a = t("((A,B),C);");
        let b = t("((A,B),D);");
        match robinson_foulds_sources::<_, _, CompareError>(&a, &b) {
            Err(CompareError::LeafSetMismatch {
                only_in_a,
                only_in_b,
            }) => {
                assert_eq!(only_in_a, vec!["C"]);
                assert_eq!(only_in_b, vec!["D"]);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
        let mut unnamed = Tree::new();
        let r = unnamed.add_node();
        unnamed.add_child(r, None, None).unwrap();
        unnamed.add_child(r, Some("X".into()), None).unwrap();
        assert!(matches!(
            robinson_foulds_sources::<_, _, CompareError>(&unnamed, &unnamed.clone()),
            Err(CompareError::BadLeaves(_))
        ));
        // Triplets on two leaves fail exactly like `triplet_distance`.
        let two = t("(A,B);");
        assert!(matches!(
            triplet_distance_sources::<_, _, CompareError>(&two, &t("(B,A);")),
            Err(CompareError::TooFewLeaves(3))
        ));
    }

    #[test]
    fn clade_agreement_flags_the_broken_clade() {
        let a = t("(((A,B),C),(D,E));");
        let b = t("(((A,C),B),(D,E));");
        let cmp: SourceComparison = compare_sources::<_, _, CompareError>(&a, &b, false).unwrap();
        // b's internal clades: {A,C} (wrong), {A,B,C} (right), {D,E}
        // (right); the root is trivial and excluded.
        let mut by_size: Vec<(u32, bool)> = cmp.clades.iter().map(|c| (c.size, c.agrees)).collect();
        by_size.sort();
        assert_eq!(by_size, vec![(2, false), (2, true), (3, true)]);
        // Identical trees agree everywhere.
        let same: SourceComparison =
            compare_sources::<_, _, CompareError>(&a, &a.clone(), false).unwrap();
        assert!(same.clades.iter().all(|c| c.agrees));
    }

    #[test]
    fn rooted_sources_respect_unary_dedup() {
        // A unary chain repeats the same clade; the bitset path collapses it
        // through its HashSet, the streaming path through interval dedup.
        // Both directions matter: as the second source, the unary wrapper of
        // a bifurcating root's child carries the root split under a second
        // interval key and must still count once (the complement-partner
        // rule, not positional root-child detection).
        let a = t("(((A,B)),(C,D));"); // ((A,B)) is a unary wrapper
        let b = t("((A,B),(C,D));");
        assert_sources_match(&a, &b);
        assert_sources_match(&b, &a);
        assert_sources_match(&a, &a.clone());
        // Unary wrapper on the side NOT containing the anchor leaf, and a
        // unary root above the bifurcation.
        let c = t("((A,B),((C,D)));");
        assert_sources_match(&b, &c);
        assert_sources_match(&c, &b);
        let d = t("(((A,B),(C,D)));");
        assert_sources_match(&b, &d);
        assert_sources_match(&d, &b);
        // Larger complement-pair case: prefix/suffix clades deep under a
        // bifurcating root with extra structure on both sides.
        let e = t("((((A,B)),C),((D,E),F));");
        let f = t("(((A,B),C),((D,(E,F))));");
        assert_sources_match(&e, &f);
        assert_sources_match(&f, &e);
    }

    #[test]
    fn figure2_pattern_matches_projection_claim() {
        // The paper's pattern-match example, cast in RF terms: the Fig. 2
        // pattern has distance 0 to the projection of Fig. 1 over its leaves,
        // while the Bha/Lla-swapped pattern does not differ topologically
        // (they are siblings) — the difference shows up in branch lengths,
        // which RF ignores by design.
        let gold = figure1_tree();
        let projection = phylo::ops::project_by_names(&gold, &["Bha", "Lla", "Syn"]).unwrap();
        let pattern = t("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);");
        assert_eq!(robinson_foulds(&projection, &pattern).unwrap().distance, 0);
    }
}
