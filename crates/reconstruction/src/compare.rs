//! Tree comparison metrics: Robinson–Foulds, consensus and triplet distance.
//!
//! The Benchmark Manager scores a reconstructed tree against the projected
//! gold-standard subtree. The workhorse metric is the Robinson–Foulds (RF)
//! distance — the size of the symmetric difference between the two trees'
//! bipartition (split) sets — computed here with bitset cluster tables, the
//! same idea behind Day's linear-time comparison cited by the paper
//! (ref \[1\]). A majority-rule consensus builder (the subject of that
//! citation) and a triplet distance round out the toolbox.

use phylo::traverse::Traverse;
use phylo::{NodeId, Tree};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Errors from tree comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareError {
    /// The two trees are over different leaf-name sets.
    LeafSetMismatch {
        /// Names only present in the first tree.
        only_in_a: Vec<String>,
        /// Names only present in the second tree.
        only_in_b: Vec<String>,
    },
    /// A tree has unnamed or duplicate leaves.
    BadLeaves(String),
    /// Need at least this many leaves for the metric.
    TooFewLeaves(usize),
}

impl fmt::Display for CompareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompareError::LeafSetMismatch {
                only_in_a,
                only_in_b,
            } => write!(
                f,
                "leaf sets differ (only in first: {only_in_a:?}; only in second: {only_in_b:?})"
            ),
            CompareError::BadLeaves(m) => write!(f, "bad leaves: {m}"),
            CompareError::TooFewLeaves(n) => write!(f, "need at least {n} leaves"),
        }
    }
}

impl std::error::Error for CompareError {}

/// Result of a Robinson–Foulds comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfResult {
    /// Number of splits present in exactly one of the trees.
    pub distance: usize,
    /// Maximum possible distance for these trees (sum of internal-edge
    /// counts), used for normalization.
    pub max_distance: usize,
    /// `distance / max_distance`, or 0 when `max_distance` is 0.
    pub normalized: f64,
    /// Number of splits shared by both trees.
    pub shared: usize,
}

/// A set of leaves represented as a bitset over a fixed leaf ordering.
type LeafSet = Vec<u64>;

fn empty_set(n: usize) -> LeafSet {
    vec![0u64; n.div_ceil(64)]
}

fn set_bit(set: &mut LeafSet, i: usize) {
    set[i / 64] |= 1 << (i % 64);
}

fn get_bit(set: &LeafSet, i: usize) -> bool {
    set[i / 64] & (1 << (i % 64)) != 0
}

fn union_into(dst: &mut LeafSet, src: &LeafSet) {
    for (d, s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

fn count_bits(set: &LeafSet) -> usize {
    set.iter().map(|w| w.count_ones() as usize).sum()
}

fn complement(set: &LeafSet, n: usize) -> LeafSet {
    let mut out: LeafSet = set.iter().map(|w| !w).collect();
    // Mask off the bits beyond n.
    let excess = out.len() * 64 - n;
    if excess > 0 {
        let last = out.len() - 1;
        out[last] &= u64::MAX >> excess;
    }
    out
}

/// Collect the leaf-name → index map, failing on unnamed or duplicate leaves.
fn leaf_index(tree: &Tree) -> Result<HashMap<String, usize>, CompareError> {
    let mut map = HashMap::new();
    for (i, leaf) in tree.leaf_ids().enumerate() {
        let name = tree
            .name(leaf)
            .ok_or_else(|| CompareError::BadLeaves(format!("leaf {leaf} is unnamed")))?;
        if map.insert(name.to_string(), i).is_some() {
            return Err(CompareError::BadLeaves(format!(
                "duplicate leaf name `{name}`"
            )));
        }
    }
    Ok(map)
}

fn check_same_leaves(
    a: &HashMap<String, usize>,
    b: &HashMap<String, usize>,
) -> Result<(), CompareError> {
    if a.len() == b.len() && a.keys().all(|k| b.contains_key(k)) {
        return Ok(());
    }
    let mut only_in_a: Vec<String> = a.keys().filter(|k| !b.contains_key(*k)).cloned().collect();
    let mut only_in_b: Vec<String> = b.keys().filter(|k| !a.contains_key(*k)).cloned().collect();
    only_in_a.sort();
    only_in_b.sort();
    Err(CompareError::LeafSetMismatch {
        only_in_a,
        only_in_b,
    })
}

/// Compute, for every node, the bitset of leaf indices (according to `index`)
/// below it. Returned as a map from node to set, computed in post-order.
fn node_leafsets(tree: &Tree, index: &HashMap<String, usize>) -> HashMap<NodeId, LeafSet> {
    let n = index.len();
    let mut sets: HashMap<NodeId, LeafSet> = HashMap::with_capacity(tree.node_count());
    for node in tree.postorder() {
        let mut set = empty_set(n);
        if tree.is_leaf(node) {
            if let Some(name) = tree.name(node) {
                if let Some(&i) = index.get(name) {
                    set_bit(&mut set, i);
                }
            }
        } else {
            for &c in tree.children(node) {
                let child_set = sets
                    .get(&c)
                    .expect("post-order visits children first")
                    .clone();
                union_into(&mut set, &child_set);
            }
        }
        sets.insert(node, set);
    }
    sets
}

/// Collect the non-trivial unrooted splits of a tree (canonicalized so the
/// side not containing leaf 0 is stored), given a shared leaf index.
fn splits(tree: &Tree, index: &HashMap<String, usize>) -> HashSet<LeafSet> {
    let n = index.len();
    let sets = node_leafsets(tree, index);
    let mut out = HashSet::new();
    for node in tree.node_ids() {
        if tree.is_leaf(node) || tree.parent(node).is_none() {
            continue; // leaf edges and the root give trivial splits
        }
        let set = &sets[&node];
        let size = count_bits(set);
        if size <= 1 || size >= n - 1 {
            continue; // trivial split
        }
        let canonical = if get_bit(set, 0) {
            complement(set, n)
        } else {
            set.clone()
        };
        out.insert(canonical);
    }
    out
}

/// Collect the non-trivial **rooted clades** (clusters) of a tree.
fn clades(tree: &Tree, index: &HashMap<String, usize>) -> HashSet<LeafSet> {
    let n = index.len();
    let sets = node_leafsets(tree, index);
    let mut out = HashSet::new();
    for node in tree.node_ids() {
        if tree.is_leaf(node) {
            continue;
        }
        let set = &sets[&node];
        let size = count_bits(set);
        if size <= 1 || size >= n {
            continue;
        }
        out.insert(set.clone());
    }
    out
}

/// Robinson–Foulds distance over **unrooted splits** — the standard metric
/// for scoring a reconstruction against the truth when the reconstruction's
/// rooting is arbitrary (as with Neighbor-Joining).
pub fn robinson_foulds(a: &Tree, b: &Tree) -> Result<RfResult, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    if ia.len() < 3 {
        return Ok(RfResult {
            distance: 0,
            max_distance: 0,
            normalized: 0.0,
            shared: 0,
        });
    }
    let sa = splits(a, &ia);
    let sb = splits(b, &ia);
    let shared = sa.intersection(&sb).count();
    let distance = (sa.len() - shared) + (sb.len() - shared);
    let max_distance = sa.len() + sb.len();
    let normalized = if max_distance == 0 {
        0.0
    } else {
        distance as f64 / max_distance as f64
    };
    Ok(RfResult {
        distance,
        max_distance,
        normalized,
        shared,
    })
}

/// Robinson–Foulds distance over **rooted clades**; appropriate when both
/// trees are meaningfully rooted (e.g. comparing against a projection of the
/// rooted gold standard with a clock-based method such as UPGMA).
pub fn rooted_robinson_foulds(a: &Tree, b: &Tree) -> Result<RfResult, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    let ca = clades(a, &ia);
    let cb = clades(b, &ia);
    let shared = ca.intersection(&cb).count();
    let distance = (ca.len() - shared) + (cb.len() - shared);
    let max_distance = ca.len() + cb.len();
    let normalized = if max_distance == 0 {
        0.0
    } else {
        distance as f64 / max_distance as f64
    };
    Ok(RfResult {
        distance,
        max_distance,
        normalized,
        shared,
    })
}

/// Majority-rule consensus of a set of trees over the same leaf set: the tree
/// containing exactly the clades that appear in more than half of the inputs.
/// This is the linear-time majority tree problem of the paper's ref \[1\].
pub fn majority_consensus(trees: &[Tree]) -> Result<Tree, CompareError> {
    if trees.is_empty() {
        return Err(CompareError::TooFewLeaves(1));
    }
    let index = leaf_index(&trees[0])?;
    for t in &trees[1..] {
        let it = leaf_index(t)?;
        check_same_leaves(&index, &it)?;
    }
    let n = index.len();
    let mut names: Vec<String> = vec![String::new(); n];
    for (name, &i) in &index {
        names[i] = name.clone();
    }

    // Count each rooted clade across the inputs.
    let mut counts: HashMap<LeafSet, usize> = HashMap::new();
    for t in trees {
        for clade in clades(t, &index) {
            *counts.entry(clade).or_insert(0) += 1;
        }
    }
    let majority: Vec<LeafSet> = counts
        .into_iter()
        .filter(|(_, c)| 2 * *c > trees.len())
        .map(|(clade, _)| clade)
        .collect();

    // Build the consensus: start from the root clade (all leaves), add
    // majority clades from largest to smallest under their tightest parent.
    let mut tree = Tree::new();
    let root = tree.add_node();
    let mut full = empty_set(n);
    for i in 0..n {
        set_bit(&mut full, i);
    }
    // (clade, node) pairs already placed, ordered by insertion.
    let mut placed: Vec<(LeafSet, NodeId)> = vec![(full, root)];
    let mut ordered = majority;
    ordered.sort_by_key(|c| std::cmp::Reverse(count_bits(c)));
    for clade in ordered {
        let parent = tightest_superset(&placed, &clade);
        let node = tree.add_child(parent, None, None).expect("parent exists");
        placed.push((clade, node));
    }
    // Attach leaves under their tightest containing clade.
    for (i, name) in names.iter().enumerate() {
        let mut single = empty_set(n);
        set_bit(&mut single, i);
        let parent = tightest_superset(&placed, &single);
        tree.add_child(parent, Some(name.clone()), None)
            .expect("parent exists");
    }
    Ok(tree)
}

/// Among the placed clades, find the node of the smallest clade that is a
/// superset of `target`. Majority clades are pairwise compatible, so the
/// tightest superset is unique.
fn tightest_superset(placed: &[(LeafSet, NodeId)], target: &LeafSet) -> NodeId {
    let mut best: Option<(usize, NodeId)> = None;
    for (clade, node) in placed {
        if is_superset(clade, target) {
            let size = count_bits(clade);
            if best.is_none_or(|(bs, _)| size < bs) {
                best = Some((size, *node));
            }
        }
    }
    best.expect("the root clade contains every leaf").1
}

fn is_superset(sup: &LeafSet, sub: &LeafSet) -> bool {
    sup.iter().zip(sub).all(|(a, b)| a & b == *b)
}

/// Fraction of leaf triplets whose rooted topology differs between the two
/// trees. Exact O(n³) computation — intended for the sample sizes the
/// benchmark manager works with (≤ a few hundred taxa).
pub fn triplet_distance(a: &Tree, b: &Tree) -> Result<f64, CompareError> {
    let ia = leaf_index(a)?;
    let ib = leaf_index(b)?;
    check_same_leaves(&ia, &ib)?;
    let names: Vec<String> = ia.keys().cloned().collect();
    if names.len() < 3 {
        return Err(CompareError::TooFewLeaves(3));
    }
    let leaves_a: Vec<NodeId> = names
        .iter()
        .map(|n| a.find_leaf_by_name(n).expect("leaf exists"))
        .collect();
    let leaves_b: Vec<NodeId> = names
        .iter()
        .map(|n| b.find_leaf_by_name(n).expect("leaf exists"))
        .collect();
    let depths_a = a.all_depths();
    let depths_b = b.all_depths();

    // Rooted triplet topology: which of the three pairs has the deepest LCA;
    // 0,1,2 for the pair index, 3 for unresolved (all LCAs equal).
    let topology = |tree: &Tree, depths: &[usize], x: NodeId, y: NodeId, z: NodeId| -> u8 {
        let dxy = depths[tree.lca(x, y).index()];
        let dxz = depths[tree.lca(x, z).index()];
        let dyz = depths[tree.lca(y, z).index()];
        if dxy > dxz && dxy > dyz {
            0
        } else if dxz > dxy && dxz > dyz {
            1
        } else if dyz > dxy && dyz > dxz {
            2
        } else {
            3
        }
    };

    let n = names.len();
    let mut differing = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            for k in (j + 1)..n {
                let ta = topology(a, &depths_a, leaves_a[i], leaves_a[j], leaves_a[k]);
                let tb = topology(b, &depths_b, leaves_b[i], leaves_b[j], leaves_b[k]);
                if ta != tb {
                    differing += 1;
                }
                total += 1;
            }
        }
    }
    Ok(differing as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::builder::figure1_tree;
    use phylo::newick;

    fn t(s: &str) -> Tree {
        newick::parse(s).unwrap()
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        let a = figure1_tree();
        let rf = robinson_foulds(&a, &a.clone()).unwrap();
        assert_eq!(rf.distance, 0);
        assert_eq!(rf.normalized, 0.0);
        assert_eq!(rf.shared, rf.max_distance / 2);
        let rrf = rooted_robinson_foulds(&a, &a.clone()).unwrap();
        assert_eq!(rrf.distance, 0);
        assert_eq!(triplet_distance(&a, &a.clone()).unwrap(), 0.0);
    }

    #[test]
    fn different_orderings_are_identical() {
        let a = t("((A,B),(C,D));");
        let b = t("((D,C),(B,A));");
        assert_eq!(robinson_foulds(&a, &b).unwrap().distance, 0);
        assert_eq!(rooted_robinson_foulds(&a, &b).unwrap().distance, 0);
    }

    #[test]
    fn maximally_different_quartets() {
        let a = t("((A,B),(C,D));");
        let b = t("((A,C),(B,D));");
        let rf = robinson_foulds(&a, &b).unwrap();
        // Each tree has exactly one non-trivial split and they differ.
        assert_eq!(rf.distance, 2);
        assert_eq!(rf.max_distance, 2);
        assert_eq!(rf.normalized, 1.0);
        assert_eq!(rf.shared, 0);
    }

    #[test]
    fn star_tree_versus_resolved() {
        let star = t("(A,B,C,D);");
        let resolved = t("((A,B),(C,D));");
        let rf = robinson_foulds(&star, &resolved).unwrap();
        // The star has no internal splits; distance = 1 (the resolved split),
        // max = 1.
        assert_eq!(rf.distance, 1);
        assert_eq!(rf.max_distance, 1);
    }

    #[test]
    fn rooted_vs_unrooted_difference() {
        // Two rootings of the same unrooted tree: unrooted RF is 0, rooted RF
        // is not.
        let a = t("((A,B),(C,D));");
        let b = t("(A,(B,(C,D)));");
        assert_eq!(robinson_foulds(&a, &b).unwrap().distance, 0);
        assert!(rooted_robinson_foulds(&a, &b).unwrap().distance > 0);
    }

    #[test]
    fn leaf_set_mismatch_detected() {
        let a = t("((A,B),C);");
        let b = t("((A,B),D);");
        match robinson_foulds(&a, &b) {
            Err(CompareError::LeafSetMismatch {
                only_in_a,
                only_in_b,
            }) => {
                assert_eq!(only_in_a, vec!["C"]);
                assert_eq!(only_in_b, vec!["D"]);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn unnamed_leaves_rejected() {
        let mut a = Tree::new();
        let r = a.add_node();
        a.add_child(r, None, None).unwrap();
        a.add_child(r, Some("X".into()), None).unwrap();
        assert!(matches!(
            robinson_foulds(&a, &a.clone()),
            Err(CompareError::BadLeaves(_))
        ));
    }

    #[test]
    fn tiny_trees_distance_zero() {
        let a = t("(A,B);");
        let b = t("(B,A);");
        let rf = robinson_foulds(&a, &b).unwrap();
        assert_eq!(rf.distance, 0);
        assert_eq!(rf.max_distance, 0);
    }

    #[test]
    fn triplet_distance_detects_swap() {
        let a = t("((A,B),C);");
        let b = t("((A,C),B);");
        let d = triplet_distance(&a, &b).unwrap();
        assert!(
            (d - 1.0).abs() < 1e-12,
            "single triplet fully differs, got {d}"
        );
        let c = t("(A,B,C);"); // unresolved
        let d2 = triplet_distance(&a, &c).unwrap();
        assert!((d2 - 1.0).abs() < 1e-12);
        assert!(triplet_distance(&a, &t("(A,B);")).is_err());
    }

    #[test]
    fn triplet_distance_partial() {
        // 5-leaf trees differing in one clade: some triplets agree, some not.
        let a = t("(((A,B),C),(D,E));");
        let b = t("(((A,C),B),(D,E));");
        let d = triplet_distance(&a, &b).unwrap();
        assert!(d > 0.0 && d < 1.0, "expected partial disagreement, got {d}");
    }

    #[test]
    fn majority_consensus_of_identical_trees_is_that_tree() {
        let a = t("((A,B),(C,D));");
        let cons = majority_consensus(&[a.clone(), a.clone(), a.clone()]).unwrap();
        assert_eq!(robinson_foulds(&a, &cons).unwrap().distance, 0);
        assert_eq!(rooted_robinson_foulds(&a, &cons).unwrap().distance, 0);
    }

    #[test]
    fn majority_consensus_keeps_only_majority_clades() {
        // Clade {A,B} appears in 2 of 3 trees; clade {C,D} in 2 of 3; the
        // conflicting clade {B,C} appears once and must be dropped.
        let t1 = t("((A,B),(C,D));");
        let t2 = t("((A,B),(C,D));");
        let t3 = t("(((B,C),A),D);");
        let cons = majority_consensus(&[t1.clone(), t2, t3]).unwrap();
        assert_eq!(rooted_robinson_foulds(&t1, &cons).unwrap().distance, 0);
    }

    #[test]
    fn majority_consensus_collapses_total_conflict() {
        // Three trees with three mutually incompatible resolutions: the
        // consensus is the star tree (no internal clades).
        let t1 = t("((A,B),C,D);");
        let t2 = t("((A,C),B,D);");
        let t3 = t("((A,D),B,C);");
        let cons = majority_consensus(&[t1, t2, t3]).unwrap();
        // Star: root plus 4 leaves.
        assert_eq!(cons.node_count(), 5);
        assert_eq!(cons.degree(cons.root_unchecked()), 4);
    }

    #[test]
    fn majority_consensus_errors() {
        assert!(majority_consensus(&[]).is_err());
        let a = t("((A,B),C);");
        let b = t("((A,B),D);");
        assert!(majority_consensus(&[a, b]).is_err());
    }

    #[test]
    fn figure2_pattern_matches_projection_claim() {
        // The paper's pattern-match example, cast in RF terms: the Fig. 2
        // pattern has distance 0 to the projection of Fig. 1 over its leaves,
        // while the Bha/Lla-swapped pattern does not differ topologically
        // (they are siblings) — the difference shows up in branch lengths,
        // which RF ignores by design.
        let gold = figure1_tree();
        let projection = phylo::ops::project_by_names(&gold, &["Bha", "Lla", "Syn"]).unwrap();
        let pattern = t("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);");
        assert_eq!(robinson_foulds(&projection, &pattern).unwrap().distance, 0);
    }
}
