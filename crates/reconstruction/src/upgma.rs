//! UPGMA (Unweighted Pair Group Method with Arithmetic mean).
//!
//! The simplest distance-based reconstruction algorithm: repeatedly merge the
//! two closest clusters, placing the new internal node at half the cluster
//! distance (producing an ultrametric, rooted tree). UPGMA is exact when the
//! input distances are ultrametric (a molecular clock holds) and serves as
//! the "weak" baseline algorithm in the benchmark experiments, contrasted
//! with Neighbor-Joining which only needs additivity.

// Index loops over small fixed matrices mirror the textbook formulas;
// iterator adaptors would obscure them.
#![allow(clippy::needless_range_loop)]

use phylo::distance::DistanceMatrix;
use phylo::{PhyloError, Tree};

/// Build a rooted ultrametric tree from a distance matrix using UPGMA.
///
/// Cluster heights are half the average pairwise distance, so leaf branch
/// lengths plus internal branches reproduce the matrix exactly for
/// ultrametric inputs.
pub fn upgma(matrix: &DistanceMatrix) -> Result<Tree, PhyloError> {
    let n = matrix.len();
    if n == 0 {
        return Err(PhyloError::EmptyTree);
    }
    let mut tree = Tree::new();
    if n == 1 {
        let mut t = Tree::new();
        let root = t.add_node();
        t.set_name(root, matrix.taxa[0].clone())?;
        return Ok(t);
    }

    // Active clusters: (tree node, size, height). Distances kept in a dense
    // mutable matrix indexed by active-cluster position.
    struct Cluster {
        node: phylo::NodeId,
        size: usize,
        height: f64,
    }
    let mut clusters: Vec<Cluster> = Vec::with_capacity(n);
    for name in &matrix.taxa {
        let node = tree.add_node();
        tree.set_name(node, name.clone())?;
        clusters.push(Cluster {
            node,
            size: 1,
            height: 0.0,
        });
    }
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| matrix.get(i, j)).collect())
        .collect();

    while clusters.len() > 1 {
        // Find the closest pair (i < j).
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                if dist[i][j] < best {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        let height = best / 2.0;
        let new_node = tree.add_node();
        tree.attach(new_node, clusters[bi].node)?;
        tree.attach(new_node, clusters[bj].node)?;
        tree.set_branch_length(clusters[bi].node, (height - clusters[bi].height).max(0.0))?;
        tree.set_branch_length(clusters[bj].node, (height - clusters[bj].height).max(0.0))?;

        // Average-linkage distance from the merged cluster to the rest.
        let merged_size = clusters[bi].size + clusters[bj].size;
        let mut new_row = Vec::with_capacity(clusters.len() - 1);
        for k in 0..clusters.len() {
            if k == bi || k == bj {
                continue;
            }
            let d = (dist[bi][k] * clusters[bi].size as f64
                + dist[bj][k] * clusters[bj].size as f64)
                / merged_size as f64;
            new_row.push(d);
        }

        // Remove the two merged clusters (larger index first) and their rows.
        let (hi, lo) = (bj.max(bi), bj.min(bi));
        clusters.remove(hi);
        clusters.remove(lo);
        dist.remove(hi);
        dist.remove(lo);
        for row in dist.iter_mut() {
            row.remove(hi);
            row.remove(lo);
        }
        // Append the merged cluster.
        clusters.push(Cluster {
            node: new_node,
            size: merged_size,
            height,
        });
        for (row, &d) in dist.iter_mut().zip(new_row.iter()) {
            row.push(d);
        }
        let mut last_row = new_row;
        last_row.push(0.0);
        dist.push(last_row);
    }

    let root = clusters[0].node;
    tree.set_root(root)?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::distance::{patristic_matrix, DistanceMatrix};
    use phylo::ops::{canonical_form, is_binary};

    /// A hand-checkable ultrametric matrix over 4 taxa:
    /// ((A,B),(C,D)) with heights 1 and 2, root at 3.
    fn ultrametric4() -> DistanceMatrix {
        let mut m = DistanceMatrix::zeroed(vec![
            "A".to_string(),
            "B".to_string(),
            "C".to_string(),
            "D".to_string(),
        ]);
        m.set(0, 1, 2.0); // A-B
        m.set(2, 3, 4.0); // C-D
        for (i, j) in [(0, 2), (0, 3), (1, 2), (1, 3)] {
            m.set(i, j, 6.0);
        }
        m
    }

    #[test]
    fn recovers_ultrametric_topology() {
        let m = ultrametric4();
        let t = upgma(&m).unwrap();
        assert_eq!(t.leaf_count(), 4);
        assert!(is_binary(&t));
        assert_eq!(canonical_form(&t), "((A,B),(C,D))");
        // Heights: A and B join at 1, C and D at 2, root at 3.
        let a = t.find_leaf_by_name("A").unwrap();
        let c = t.find_leaf_by_name("C").unwrap();
        assert!((t.root_distance(a) - 3.0).abs() < 1e-9);
        assert!((t.root_distance(c) - 3.0).abs() < 1e-9);
        assert!((t.branch_length(a).unwrap() - 1.0).abs() < 1e-9);
        assert!((t.branch_length(c).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn output_is_ultrametric_even_for_noisy_input() {
        let mut m = ultrametric4();
        m.set(0, 2, 5.5);
        m.set(1, 3, 6.5);
        let t = upgma(&m).unwrap();
        let depths: Vec<f64> = t.leaf_ids().map(|l| t.root_distance(l)).collect();
        for d in &depths {
            assert!((d - depths[0]).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_yule_tree_from_true_distances() {
        // A pure-birth tree is ultrametric, so UPGMA on its patristic matrix
        // must recover the exact topology.
        use phylo::builder::balanced_binary;
        let gold = balanced_binary(4, 1.0);
        let m = patristic_matrix(&gold).unwrap();
        let t = upgma(&m).unwrap();
        assert_eq!(canonical_form(&t), canonical_form(&gold));
    }

    #[test]
    fn single_and_two_taxa() {
        let m = DistanceMatrix::zeroed(vec!["only".to_string()]);
        let t = upgma(&m).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.name(t.root_unchecked()), Some("only"));

        let mut m2 = DistanceMatrix::zeroed(vec!["A".to_string(), "B".to_string()]);
        m2.set(0, 1, 4.0);
        let t2 = upgma(&m2).unwrap();
        assert_eq!(t2.leaf_count(), 2);
        let a = t2.find_leaf_by_name("A").unwrap();
        assert!((t2.branch_length(a).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_error() {
        let m = DistanceMatrix::zeroed(vec![]);
        assert!(upgma(&m).is_err());
    }

    #[test]
    fn all_leaves_named_and_preserved() {
        let names: Vec<String> = (0..17).map(|i| format!("t{i}")).collect();
        let mut m = DistanceMatrix::zeroed(names.clone());
        // A simple metric: |i - j| + 1 off-diagonal (not ultrametric, but a
        // valid dissimilarity).
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                m.set(i, j, (j - i) as f64);
            }
        }
        let t = upgma(&m).unwrap();
        assert_eq!(t.leaf_count(), 17);
        let mut got = t.leaf_names();
        got.sort();
        let mut want = names;
        want.sort();
        assert_eq!(got, want);
        assert!(is_binary(&t));
    }
}
