//! Neighbor-Joining (Saitou & Nei 1987).
//!
//! The standard distance-based reconstruction algorithm: it recovers the true
//! tree whenever the input distances are *additive* (fit some tree exactly),
//! without requiring a molecular clock. NJ produces an unrooted tree; the
//! result is returned rooted at the final three-way join so that downstream
//! code (which works on rooted [`Tree`]s) can consume it directly, and the
//! comparison metrics treat trees as unrooted when appropriate.

// Index loops over small fixed matrices mirror the textbook formulas;
// iterator adaptors would obscure them.
#![allow(clippy::needless_range_loop)]

use phylo::distance::DistanceMatrix;
use phylo::{NodeId, PhyloError, Tree};

/// Build a tree from a distance matrix with Neighbor-Joining.
pub fn neighbor_joining(matrix: &DistanceMatrix) -> Result<Tree, PhyloError> {
    let n = matrix.len();
    if n == 0 {
        return Err(PhyloError::EmptyTree);
    }
    let mut tree = Tree::new();
    if n == 1 {
        let root = tree.add_node();
        tree.set_name(root, matrix.taxa[0].clone())?;
        return Ok(tree);
    }
    if n == 2 {
        let root = tree.add_node();
        let d = matrix.get(0, 1);
        tree.add_child(root, Some(matrix.taxa[0].clone()), Some(d / 2.0))?;
        tree.add_child(root, Some(matrix.taxa[1].clone()), Some(d / 2.0))?;
        return Ok(tree);
    }

    // Active nodes and a mutable working distance matrix.
    let mut active: Vec<NodeId> = Vec::with_capacity(n);
    for name in &matrix.taxa {
        let node = tree.add_node();
        tree.set_name(node, name.clone())?;
        active.push(node);
    }
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| matrix.get(i, j)).collect())
        .collect();

    while active.len() > 3 {
        let m = active.len();
        // Row sums for the Q criterion.
        let row_sums: Vec<f64> = (0..m).map(|i| dist[i].iter().sum()).collect();
        // Find the pair minimizing Q(i,j) = (m-2)·d(i,j) − r_i − r_j.
        let (mut bi, mut bj, mut best) = (0usize, 1usize, f64::INFINITY);
        for i in 0..m {
            for j in (i + 1)..m {
                let q = (m as f64 - 2.0) * dist[i][j] - row_sums[i] - row_sums[j];
                if q < best {
                    best = q;
                    bi = i;
                    bj = j;
                }
            }
        }
        // Branch lengths from the new internal node u to i and j.
        let d_ij = dist[bi][bj];
        let delta = (row_sums[bi] - row_sums[bj]) / (m as f64 - 2.0);
        let mut li = 0.5 * d_ij + 0.5 * delta;
        let mut lj = d_ij - li;
        // Guard against slightly negative lengths from noisy distances.
        if li < 0.0 {
            lj += li;
            li = 0.0;
        }
        if lj < 0.0 {
            li += lj;
            lj = 0.0;
        }

        let u = tree.add_node();
        tree.attach(u, active[bi])?;
        tree.attach(u, active[bj])?;
        tree.set_branch_length(active[bi], li.max(0.0))?;
        tree.set_branch_length(active[bj], lj.max(0.0))?;

        // Distances from u to every other active node.
        let mut new_row = Vec::with_capacity(m - 2);
        for k in 0..m {
            if k == bi || k == bj {
                continue;
            }
            new_row.push(0.5 * (dist[bi][k] + dist[bj][k] - d_ij));
        }
        let (hi, lo) = (bj.max(bi), bj.min(bi));
        active.remove(hi);
        active.remove(lo);
        dist.remove(hi);
        dist.remove(lo);
        for row in dist.iter_mut() {
            row.remove(hi);
            row.remove(lo);
        }
        active.push(u);
        for (row, &d) in dist.iter_mut().zip(new_row.iter()) {
            row.push(d.max(0.0));
        }
        let mut last = new_row.iter().map(|d| d.max(0.0)).collect::<Vec<_>>();
        last.push(0.0);
        dist.push(last);
    }

    // Three nodes left: join them at an (unrooted) central node, which we use
    // as the root of the returned tree.
    let root = tree.add_node();
    let d01 = dist[0][1];
    let d02 = dist[0][2];
    let d12 = dist[1][2];
    let l0 = ((d01 + d02 - d12) / 2.0).max(0.0);
    let l1 = ((d01 + d12 - d02) / 2.0).max(0.0);
    let l2 = ((d02 + d12 - d01) / 2.0).max(0.0);
    for (node, len) in [(active[0], l0), (active[1], l1), (active[2], l2)] {
        tree.attach(root, node)?;
        tree.set_branch_length(node, len)?;
    }
    tree.set_root(root)?;
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo::distance::{patristic_distance, patristic_matrix, DistanceMatrix};
    use phylo::ops::is_unary_free;

    /// The classic additive (non-ultrametric) example: unrooted tree
    /// ((A:2,B:3):1,(C:4,D:2)) — distances are additive but violate the clock.
    fn additive4() -> DistanceMatrix {
        let mut m = DistanceMatrix::zeroed(vec![
            "A".to_string(),
            "B".to_string(),
            "C".to_string(),
            "D".to_string(),
        ]);
        m.set(0, 1, 5.0); // A-B = 2+3
        m.set(0, 2, 7.0); // A-C = 2+1+4
        m.set(0, 3, 5.0); // A-D = 2+1+2
        m.set(1, 2, 8.0); // B-C = 3+1+4
        m.set(1, 3, 6.0); // B-D
        m.set(2, 3, 6.0); // C-D
        m
    }

    /// Unrooted split check: in the NJ tree, A and B must be separated from C
    /// and D by an internal edge (i.e. {A,B} forms a cherry).
    fn cherry_together(tree: &Tree, x: &str, y: &str) -> bool {
        let a = tree.find_leaf_by_name(x).unwrap();
        let b = tree.find_leaf_by_name(y).unwrap();
        tree.parent(a) == tree.parent(b)
    }

    #[test]
    fn recovers_additive_tree() {
        let m = additive4();
        let t = neighbor_joining(&m).unwrap();
        assert_eq!(t.leaf_count(), 4);
        assert!(is_unary_free(&t));
        assert!(
            cherry_together(&t, "A", "B") || cherry_together(&t, "C", "D"),
            "NJ must separate {{A,B}} from {{C,D}}:\n{}",
            phylo::render::ascii(&t)
        );
        // Path lengths reproduce the input distances (additivity).
        for (x, y) in [("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")] {
            let got = patristic_distance(
                &t,
                t.find_leaf_by_name(x).unwrap(),
                t.find_leaf_by_name(y).unwrap(),
            );
            let want = m.get_by_name(x, y).unwrap();
            assert!((got - want).abs() < 1e-9, "{x}-{y}: {got} vs {want}");
        }
    }

    #[test]
    fn recovers_topology_from_patristic_distances_of_known_tree() {
        // Take the Figure 1 tree, compute its true patristic distances, run NJ
        // and check that the clade structure {Lla, Spy} and {Bha,(Lla,Spy)} is
        // recovered (as unrooted splits).
        let gold = phylo::builder::figure1_tree();
        let m = patristic_matrix(&gold).unwrap();
        let t = neighbor_joining(&m).unwrap();
        assert_eq!(t.leaf_count(), 5);
        assert!(cherry_together(&t, "Lla", "Spy"));
        // Distances are reproduced.
        for (x, y) in [("Bha", "Lla"), ("Syn", "Bsu"), ("Spy", "Syn")] {
            let got = patristic_distance(
                &t,
                t.find_leaf_by_name(x).unwrap(),
                t.find_leaf_by_name(y).unwrap(),
            );
            let want = m.get_by_name(x, y).unwrap();
            assert!((got - want).abs() < 1e-9, "{x}-{y}");
        }
    }

    #[test]
    fn small_inputs() {
        let m1 = DistanceMatrix::zeroed(vec!["X".to_string()]);
        let t1 = neighbor_joining(&m1).unwrap();
        assert_eq!(t1.node_count(), 1);

        let mut m2 = DistanceMatrix::zeroed(vec!["A".to_string(), "B".to_string()]);
        m2.set(0, 1, 3.0);
        let t2 = neighbor_joining(&m2).unwrap();
        assert_eq!(t2.leaf_count(), 2);

        let mut m3 =
            DistanceMatrix::zeroed(vec!["A".to_string(), "B".to_string(), "C".to_string()]);
        m3.set(0, 1, 2.0);
        m3.set(0, 2, 3.0);
        m3.set(1, 2, 3.0);
        let t3 = neighbor_joining(&m3).unwrap();
        assert_eq!(t3.leaf_count(), 3);
        assert_eq!(t3.degree(t3.root_unchecked()), 3);
        // Leaf branch lengths: l(A) = (2+3-3)/2 = 1, etc.
        let a = t3.find_leaf_by_name("A").unwrap();
        assert!((t3.branch_length(a).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_matrix_is_error() {
        assert!(neighbor_joining(&DistanceMatrix::zeroed(vec![])).is_err());
    }

    #[test]
    fn larger_random_additive_tree_distances_reproduced() {
        // Build a random-ish binary tree, compute patristic distances, and
        // confirm NJ reproduces all pairwise distances (additivity ⇒ exact).
        use phylo::builder::balanced_binary;
        let gold = balanced_binary(5, 1.0); // 32 leaves
        let m = patristic_matrix(&gold).unwrap();
        let t = neighbor_joining(&m).unwrap();
        assert_eq!(t.leaf_count(), 32);
        for i in 0..m.len() {
            for j in (i + 1)..m.len() {
                let a = t.find_leaf_by_name(&m.taxa[i]).unwrap();
                let b = t.find_leaf_by_name(&m.taxa[j]).unwrap();
                let got = patristic_distance(&t, a, b);
                assert!(
                    (got - m.get(i, j)).abs() < 1e-6,
                    "{} - {}: {} vs {}",
                    m.taxa[i],
                    m.taxa[j],
                    got,
                    m.get(i, j)
                );
            }
        }
    }

    #[test]
    fn no_unary_nodes_in_output() {
        let m = additive4();
        let t = neighbor_joining(&m).unwrap();
        assert!(is_unary_free(&t));
        for node in t.node_ids() {
            if !t.is_leaf(node) {
                assert!(t.degree(node) >= 2);
            }
        }
    }
}
