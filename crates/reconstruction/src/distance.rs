//! Evolutionary distance estimation from aligned sequences.
//!
//! Distance-based reconstruction (UPGMA, NJ) starts from a matrix of pairwise
//! distances. The raw proportion of differing sites (*p-distance*)
//! underestimates the true number of substitutions because of multiple hits;
//! the Jukes–Cantor and Kimura corrections invert the respective models to
//! recover additive distances.

use phylo::distance::DistanceMatrix;
use std::collections::HashMap;
use std::fmt;

/// Errors from distance estimation.
#[derive(Debug, Clone, PartialEq)]
pub enum DistanceError {
    /// Fewer than two sequences were provided.
    TooFewSequences(usize),
    /// Sequences have differing lengths (not an alignment).
    UnequalLengths {
        /// Name of the first offending taxon.
        taxon: String,
        /// Its sequence length.
        len: usize,
        /// The expected (first taxon's) length.
        expected: usize,
    },
    /// Sequences are too divergent for the requested correction (the
    /// correction's logarithm argument became non-positive).
    Saturated {
        /// First taxon of the offending pair.
        a: String,
        /// Second taxon of the offending pair.
        b: String,
        /// The raw p-distance of the pair.
        p: f64,
    },
}

impl fmt::Display for DistanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistanceError::TooFewSequences(n) => write!(f, "need at least 2 sequences, got {n}"),
            DistanceError::UnequalLengths {
                taxon,
                len,
                expected,
            } => {
                write!(
                    f,
                    "sequence for `{taxon}` has length {len}, expected {expected}"
                )
            }
            DistanceError::Saturated { a, b, p } => {
                write!(
                    f,
                    "pair ({a}, {b}) is saturated (p = {p:.3}); correction undefined"
                )
            }
        }
    }
}

impl std::error::Error for DistanceError {}

fn ordered_taxa(sequences: &HashMap<String, String>) -> Vec<String> {
    let mut taxa: Vec<String> = sequences.keys().cloned().collect();
    taxa.sort();
    taxa
}

fn validate(sequences: &HashMap<String, String>) -> Result<Vec<String>, DistanceError> {
    if sequences.len() < 2 {
        return Err(DistanceError::TooFewSequences(sequences.len()));
    }
    let taxa = ordered_taxa(sequences);
    let expected = sequences[&taxa[0]].len();
    for t in &taxa {
        let len = sequences[t].len();
        if len != expected {
            return Err(DistanceError::UnequalLengths {
                taxon: t.clone(),
                len,
                expected,
            });
        }
    }
    Ok(taxa)
}

fn raw_p(a: &str, b: &str) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    let diffs = a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count();
    diffs as f64 / a.len() as f64
}

/// Fraction of sites that are transitions (A↔G, C↔T) and transversions,
/// needed by the Kimura correction.
fn transition_transversion_fractions(a: &str, b: &str) -> (f64, f64) {
    if a.is_empty() {
        return (0.0, 0.0);
    }
    let mut transitions = 0usize;
    let mut transversions = 0usize;
    for (x, y) in a.bytes().zip(b.bytes()) {
        if x == y {
            continue;
        }
        let purine = |c: u8| c == b'A' || c == b'G';
        if purine(x) == purine(y) {
            transitions += 1;
        } else {
            transversions += 1;
        }
    }
    (
        transitions as f64 / a.len() as f64,
        transversions as f64 / a.len() as f64,
    )
}

/// Raw p-distance matrix (proportion of differing sites).
pub fn p_distance_matrix(
    sequences: &HashMap<String, String>,
) -> Result<DistanceMatrix, DistanceError> {
    let taxa = validate(sequences)?;
    let mut m = DistanceMatrix::zeroed(taxa.clone());
    for i in 0..taxa.len() {
        for j in (i + 1)..taxa.len() {
            m.set(i, j, raw_p(&sequences[&taxa[i]], &sequences[&taxa[j]]));
        }
    }
    Ok(m)
}

/// Jukes–Cantor corrected distances: `d = -3/4 · ln(1 - 4p/3)`.
pub fn jc_corrected_matrix(
    sequences: &HashMap<String, String>,
) -> Result<DistanceMatrix, DistanceError> {
    let taxa = validate(sequences)?;
    let mut m = DistanceMatrix::zeroed(taxa.clone());
    for i in 0..taxa.len() {
        for j in (i + 1)..taxa.len() {
            let p = raw_p(&sequences[&taxa[i]], &sequences[&taxa[j]]);
            let arg = 1.0 - 4.0 * p / 3.0;
            if arg <= 0.0 {
                return Err(DistanceError::Saturated {
                    a: taxa[i].clone(),
                    b: taxa[j].clone(),
                    p,
                });
            }
            m.set(i, j, -0.75 * arg.ln());
        }
    }
    Ok(m)
}

/// Kimura two-parameter corrected distances:
/// `d = -1/2 · ln((1 - 2P - Q)·sqrt(1 - 2Q))` with transition fraction `P`
/// and transversion fraction `Q`.
pub fn k2p_corrected_matrix(
    sequences: &HashMap<String, String>,
) -> Result<DistanceMatrix, DistanceError> {
    let taxa = validate(sequences)?;
    let mut m = DistanceMatrix::zeroed(taxa.clone());
    for i in 0..taxa.len() {
        for j in (i + 1)..taxa.len() {
            let (p, q) =
                transition_transversion_fractions(&sequences[&taxa[i]], &sequences[&taxa[j]]);
            let a = 1.0 - 2.0 * p - q;
            let b = 1.0 - 2.0 * q;
            if a <= 0.0 || b <= 0.0 {
                return Err(DistanceError::Saturated {
                    a: taxa[i].clone(),
                    b: taxa[j].clone(),
                    p: p + q,
                });
            }
            m.set(i, j, -0.5 * (a * b.sqrt()).ln());
        }
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seqs(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn p_distance_matrix_basics() {
        let s = seqs(&[("A", "AAAA"), ("B", "AATT"), ("C", "TTTT")]);
        let m = p_distance_matrix(&s).unwrap();
        assert_eq!(m.taxa, vec!["A", "B", "C"]);
        assert!((m.get_by_name("A", "B").unwrap() - 0.5).abs() < 1e-12);
        assert!((m.get_by_name("A", "C").unwrap() - 1.0).abs() < 1e-12);
        assert!((m.get_by_name("B", "C").unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    fn jc_correction_exceeds_p_distance() {
        let s = seqs(&[("A", "ACGTACGTACGTACGTACGT"), ("B", "ACGTACGTTCGTACGAACGT")]);
        let p = p_distance_matrix(&s).unwrap();
        let jc = jc_corrected_matrix(&s).unwrap();
        let praw = p.get_by_name("A", "B").unwrap();
        let pjc = jc.get_by_name("A", "B").unwrap();
        assert!(praw > 0.0);
        assert!(
            pjc > praw,
            "JC correction must inflate the distance ({pjc} vs {praw})"
        );
    }

    #[test]
    fn jc_of_identical_sequences_is_zero() {
        let s = seqs(&[("A", "ACGT"), ("B", "ACGT")]);
        let jc = jc_corrected_matrix(&s).unwrap();
        assert_eq!(jc.get_by_name("A", "B").unwrap(), 0.0);
    }

    #[test]
    fn saturation_detected() {
        let s = seqs(&[("A", "AAAA"), ("B", "CCCC")]);
        assert!(matches!(
            jc_corrected_matrix(&s),
            Err(DistanceError::Saturated { .. })
        ));
    }

    #[test]
    fn k2p_matches_jc_when_no_transversion_bias() {
        // With only transitions present, K2P and JC differ; but for identical
        // sequences both are zero and for moderate mixed changes K2P >= p.
        let s = seqs(&[
            ("A", "ACGTACGTACGTACGTACGTACGTACGTACGT"),
            ("B", "ACGTACGTACGTACGAACGTACGCACGTACGT"),
        ]);
        let p = p_distance_matrix(&s)
            .unwrap()
            .get_by_name("A", "B")
            .unwrap();
        let k = k2p_corrected_matrix(&s)
            .unwrap()
            .get_by_name("A", "B")
            .unwrap();
        assert!(k >= p);
    }

    #[test]
    fn k2p_transition_transversion_fractions() {
        // A->G transition; A->T transversion.
        let (p, q) = transition_transversion_fractions("AAAA", "GATA");
        assert!((p - 0.25).abs() < 1e-12);
        assert!((q - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let one = seqs(&[("A", "ACGT")]);
        assert!(matches!(
            p_distance_matrix(&one),
            Err(DistanceError::TooFewSequences(1))
        ));
        let ragged = seqs(&[("A", "ACGT"), ("B", "AC")]);
        assert!(matches!(
            p_distance_matrix(&ragged),
            Err(DistanceError::UnequalLengths { .. })
        ));
    }

    #[test]
    fn matrices_are_symmetric_with_zero_diagonal() {
        let s = seqs(&[
            ("A", "ACGTAC"),
            ("B", "ACGTAA"),
            ("C", "ACCTAA"),
            ("D", "GCCTAA"),
        ]);
        for m in [
            p_distance_matrix(&s).unwrap(),
            jc_corrected_matrix(&s).unwrap(),
            k2p_corrected_matrix(&s).unwrap(),
        ] {
            for i in 0..m.len() {
                assert_eq!(m.get(i, i), 0.0);
                for j in 0..m.len() {
                    assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
                }
            }
        }
    }
}
