//! `crimson-suite` — workspace-level examples and cross-crate integration
//! tests for the Crimson reproduction. The interesting code lives in
//! `examples/` and `tests/`; this library only re-exports the member crates
//! for convenience in those binaries.

pub use crimson;
pub use labeling;
pub use phylo;
pub use reconstruction;
pub use simulation;
pub use storage;
