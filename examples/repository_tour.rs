//! A tour of the Repository Manager: the three load modes from §3 of the
//! paper (tree only, tree with species data, append species data), NEXUS
//! export, and query-history recall.
//!
//! ```bash
//! cargo run --release --example repository_tour
//! ```

use crimson::prelude::*;
use simulation::gold::GoldStandardBuilder;
use simulation::seqevo::Model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("crimson-tour");
    std::fs::create_dir_all(&dir)?;
    let db_path = dir.join("tour.crimson");
    let _ = std::fs::remove_file(&db_path);

    // A small gold standard exported to NEXUS — our stand-in for a CIPRes
    // curated data set arriving as a file.
    let gold = GoldStandardBuilder::new()
        .leaves(64)
        .sequence_length(120)
        .model(Model::Hky85 {
            rate: 0.2,
            kappa: 2.5,
            freqs: [0.3, 0.2, 0.2, 0.3],
        })
        .seed(7)
        .build()?;
    let nexus_path = dir.join("gold.nex");
    std::fs::write(&nexus_path, phylo::nexus::write(&gold.to_nexus()))?;
    println!(
        "wrote {} ({} bytes)",
        nexus_path.display(),
        std::fs::metadata(&nexus_path)?.len()
    );

    let mut repo = Repository::create(&db_path, RepositoryOptions::default())?;
    let nexus_text = std::fs::read_to_string(&nexus_path)?;

    // Mode 1: tree structure only.
    let report = repo.load_nexus_text("tour_tree", &nexus_text, LoadMode::TreeOnly)?;
    println!("\n[TreeOnly]");
    for m in &report.messages {
        println!("  {m}");
    }
    println!("  species stored: {}", repo.species_count(report.handle)?);

    // Mode 2: append species data to the existing tree.
    let report = repo.load_nexus_text("tour_tree", &nexus_text, LoadMode::AppendSpecies)?;
    println!("[AppendSpecies]");
    for m in &report.messages {
        println!("  {m}");
    }
    println!("  species stored: {}", repo.species_count(report.handle)?);

    // Mode 3: a second tree loaded with species in one step.
    let report = repo.load_nexus_text("tour_tree_full", &nexus_text, LoadMode::TreeWithSpecies)?;
    println!("[TreeWithSpecies]");
    for m in &report.messages {
        println!("  {m}");
    }

    // The repository catalog.
    println!("\nLoaded trees:");
    for tree in repo.list_trees()? {
        println!(
            "  `{}` — {} nodes, {} taxa, frame depth {}",
            tree.name, tree.node_count, tree.leaf_count, tree.frame_depth
        );
    }

    // Run a couple of queries so the history has content.
    let handle = repo.tree_by_name("tour_tree")?.handle;
    let sample = repo.sample_uniform(handle, 8, 11)?;
    let projection = repo.project(handle, &sample)?;
    println!(
        "\nprojected an 8-species sample: {} nodes\n{}",
        projection.node_count(),
        phylo::render::ascii(&projection)
    );

    // Export back to NEXUS (the §3 "view as NEXUS" path).
    let exported = repo.export_nexus("tour_tree")?;
    let out_path = dir.join("exported.nex");
    std::fs::write(&out_path, phylo::nexus::write(&exported))?;
    println!("exported repository contents to {}", out_path.display());

    // Query-history recall, the Query Repository in action.
    println!("\nQuery history:");
    for entry in repo.query_history()? {
        println!("  #{:<3} {:<14?} {}", entry.id, entry.kind, entry.summary);
    }

    repo.flush()?;
    Ok(())
}
