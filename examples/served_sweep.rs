//! Served sweep: start a `crimson-server` in-process, attach clients from
//! several connections across two tenants, load a simulated gold tree, and
//! drive a reconstruction-quality sweep plus a burst of pipelined structure
//! queries over the wire — then print the server's dispatch statistics.
//!
//! ```bash
//! cargo run --release --example served_sweep
//! ```

use crimson_server::{Client, Request, Response, Server, ServerConfig, WireDurability};
use simulation::yule_tree;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join("crimson-served-sweep");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root)?;

    // 1. Serve the repository root. Each tenant gets its own repository
    //    directory under `root`; the OS picks a loopback port.
    let server = Server::start(ServerConfig::default(), &root)?;
    let addr = server.addr();
    println!("serving {} at {addr}", root.display());

    // 2. Per-tenant setup: load a gold tree (synchronously durable) and run
    //    a small method x strategy sweep against it, entirely over the wire.
    for tenant in ["lab-a", "lab-b"] {
        let mut client = Client::connect(addr)?;
        client.attach(tenant)?;

        let gold = phylo::newick::write(&yule_tree(96, 1.0, 7));
        let handle = match client.load_tree("gold", &gold, WireDurability::Sync)? {
            Response::TreeLoaded { tree, leaves, .. } => {
                println!("[{tenant}] loaded gold: handle {tree}, {leaves} leaves");
                tree
            }
            other => return Err(format!("load failed: {other:?}").into()),
        };

        let spec = crimson_server::msg::WireExperimentSpec {
            name: "served-sweep".into(),
            gold: "gold".into(),
            methods: vec![
                crimson_server::msg::WireMethod::Upgma,
                crimson_server::msg::WireMethod::NeighborJoining,
            ],
            strategies: vec![
                crimson_server::msg::WireStrategy::Uniform { k: 16 },
                crimson_server::msg::WireStrategy::Uniform { k: 32 },
            ],
            replicates: 2,
            seed: 42,
            workers: 2,
            compute_triplets: true,
        };
        match client.call(&Request::RunExperiment { spec })? {
            Response::Experiment { id, runs, wall_ms } => {
                println!("[{tenant}] experiment {id}: {runs} runs in {wall_ms} ms");
            }
            other => return Err(format!("sweep failed: {other:?}").into()),
        }

        // Pipeline a burst of reads with a sliding window well inside the
        // server's per-connection in-flight budget. Adjacent requests
        // coalesce into shared pinned-snapshot batches server-side.
        let leaves = match client.call(&Request::Leaves { tree: handle })? {
            Response::Nodes(ids) => ids,
            other => return Err(format!("leaves failed: {other:?}").into()),
        };
        let total = 256usize;
        let window = 16usize;
        let mut sent = 0usize;
        let mut done = 0usize;
        let mut in_flight = std::collections::HashSet::new();
        while done < total {
            while sent < total && in_flight.len() < window {
                let req = Request::Lca {
                    a: leaves[(3 * sent) % leaves.len()],
                    b: leaves[(7 * sent + 1) % leaves.len()],
                };
                in_flight.insert(client.send(&req)?);
                sent += 1;
            }
            let (corr, resp) = client.recv()?;
            assert!(in_flight.remove(&corr), "unknown correlation {corr}");
            match resp {
                Response::Node(_) => done += 1,
                other => return Err(format!("lca failed: {other:?}").into()),
            }
        }
        println!("[{tenant}] {total} pipelined LCA queries answered");
    }

    // 3. Dispatch statistics from the server itself, over the wire.
    let mut client = Client::connect(addr)?;
    client.attach("lab-a")?;
    if let Response::Stats(stats) = client.call(&Request::Stats)? {
        println!(
            "server: {} reads in {} batches ({} coalesced), {} writes, {} connections",
            stats.reads, stats.read_batches, stats.coalesced_reads, stats.writes, stats.connections
        );
    }
    drop(client);

    // 4. Graceful shutdown drains in-flight work before the listener closes.
    server.shutdown();
    println!("server drained and stopped");
    Ok(())
}
