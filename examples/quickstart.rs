//! Quickstart: load the paper's Figure 1 tree, run the worked examples from
//! the paper (projection, LCA, time-respecting sampling, pattern match) and
//! print the results.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use crimson::prelude::*;
use phylo::render;

const FIG1_NEWICK: &str = "((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("crimson-quickstart");
    std::fs::create_dir_all(&dir)?;
    let db_path = dir.join("quickstart.crimson");
    let _ = std::fs::remove_file(&db_path);

    // 1. Create a repository and load the Figure 1 tree from Newick.
    let mut repo = Repository::create(
        &db_path,
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )?;
    let report = repo.load_newick("figure1", FIG1_NEWICK)?;
    let handle = report.handle;
    println!("== Loaded ==");
    for message in &report.messages {
        println!("  {message}");
    }

    // 2. Show the tree as an ASCII dendrogram (the Walrus stand-in).
    let full = repo.project(handle, &repo.leaves(handle)?)?;
    println!("\n== Figure 1 tree ==\n{}", render::ascii(&full));

    // 3. The paper's Figure 2: project onto {Bha, Lla, Syn}.
    let projection = repo.project_species(handle, &["Bha", "Lla", "Syn"])?;
    println!(
        "== Projection onto {{Bha, Lla, Syn}} (Figure 2) ==\n{}",
        render::ascii(&projection)
    );

    // 4. The §2.1 worked example: LCA of Lla and Syn via the stored labels.
    let lla = repo.require_species_node(handle, "Lla")?;
    let syn = repo.require_species_node(handle, "Syn")?;
    let lca = repo.node_record(repo.lca(lla, syn)?)?;
    println!(
        "== LCA(Lla, Syn) == depth {} at evolutionary time {:.2} (the root)\n",
        lca.depth, lca.root_distance
    );

    // 5. The §2.2 worked example: sample 4 species with respect to time 1.
    let sample = repo.sample_by_time(handle, 1.0, 4, 7)?;
    let names = repo.names_of(&sample)?;
    println!("== Time-respecting sample (t = 1, k = 4) == {names:?}");

    // 6. Tree pattern match: Figure 2 as a pattern matches; a weight-swapped
    //    pattern does not.
    let pattern = phylo::newick::parse("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);")?;
    let result = repo.pattern_match(handle, &pattern)?;
    println!(
        "\n== Pattern match == Figure 2 pattern: exact topology = {}, exact with lengths = {}",
        result.exact_topology, result.exact_with_lengths
    );
    let swapped = phylo::newick::parse("((Lla:0.75,Bha:1.5):1.5,Syn:2.5);")?;
    let result = repo.pattern_match(handle, &swapped)?;
    println!(
        "   swapped Bha/Lla pattern: exact topology = {}, exact with lengths = {}",
        result.exact_topology, result.exact_with_lengths
    );

    // 7. The query history recorded everything we just did.
    println!("\n== Query history ==");
    for entry in repo.query_history()? {
        println!("  #{} [{:?}] {}", entry.id, entry.kind, entry.summary);
    }

    repo.flush()?;
    println!("\nRepository stored at {}", db_path.display());
    Ok(())
}
