//! Why hierarchical Dewey labels matter: structure queries on trees far
//! deeper than any XML document.
//!
//! The paper's motivation (§1): simulation phylogenies have average depth
//! above 1000 while web XML averages depth 4. This example builds trees of
//! increasing depth, compares label sizes across schemes, and times LCA
//! queries both in memory and through the disk-backed repository.
//!
//! ```bash
//! cargo run --release --example deep_tree_queries
//! ```

use crimson::prelude::*;
use labeling::prelude::*;
use phylo::builder::caterpillar;
use phylo::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:<22} {:>14} {:>14} {:>12}",
        "depth", "scheme", "max label B", "mean label B", "1k LCAs ms"
    );
    for depth in [1_000usize, 5_000, 10_000] {
        let tree = caterpillar(depth, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = tree.node_count() as u32;
        let pairs: Vec<(NodeId, NodeId)> = (0..1_000)
            .map(|_| (NodeId(rng.gen_range(0..n)), NodeId(rng.gen_range(0..n))))
            .collect();

        let flat = FlatDewey::build(&tree);
        let hier = HierarchicalDewey::build(&tree, 16);
        let parent = ParentPointers::build(&tree);
        let schemes: Vec<(&str, &dyn LcaScheme)> = vec![
            ("flat-dewey", &flat),
            ("hierarchical (f=16)", &hier),
            ("parent-pointer", &parent),
        ];

        for (name, scheme) in schemes {
            let stats = scheme.stats();
            let start = Instant::now();
            let mut checksum = 0u64;
            for &(a, b) in &pairs {
                checksum = checksum.wrapping_add(scheme.lca(a, b).0 as u64);
            }
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            println!(
                "{:<10} {:<22} {:>14} {:>14.1} {:>12.2}   (checksum {checksum})",
                depth, name, stats.max_bytes, stats.mean_bytes, elapsed
            );
        }
    }

    // The same queries through the disk-backed repository.
    println!("\nDisk-backed repository (depth 10 000 caterpillar, frame depth 16):");
    let tree = caterpillar(10_000, 1.0);
    let dir = tempfile_dir()?;
    let mut repo = Repository::create(
        dir.join("deep.crimson"),
        RepositoryOptions {
            frame_depth: 16,
            buffer_pool_pages: 4096,
            ..Default::default()
        },
    )?;
    let start = Instant::now();
    let handle = repo.load_tree("deep", &tree)?;
    println!(
        "  load: {:.1} ms for {} nodes",
        start.elapsed().as_secs_f64() * 1e3,
        tree.node_count()
    );

    let leaves = repo.leaves(handle)?;
    let mut rng = StdRng::seed_from_u64(3);
    let start = Instant::now();
    let mut max_depth = 0;
    for _ in 0..1_000 {
        let a = leaves[rng.gen_range(0..leaves.len())];
        let b = leaves[rng.gen_range(0..leaves.len())];
        let lca = repo.node_record(repo.lca(a, b)?)?;
        max_depth = max_depth.max(lca.depth);
    }
    println!(
        "  1000 stored-label LCA queries: {:.1} ms (deepest LCA at depth {max_depth})",
        start.elapsed().as_secs_f64() * 1e3
    );
    println!("  buffer pool: {:?}", repo.buffer_stats());
    Ok(())
}

fn tempfile_dir() -> std::io::Result<std::path::PathBuf> {
    let dir = std::env::temp_dir().join("crimson-deep-tree");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("run");
    let _ = std::fs::remove_dir_all(&path);
    std::fs::create_dir_all(&path)?;
    Ok(path)
}
