//! The CIPRes-style benchmarking workflow the paper was built for:
//!
//! 1. generate a gold-standard simulation tree with sequence data,
//! 2. load it into the Crimson repository,
//! 3. sample species (uniformly and with respect to time),
//! 4. project the gold standard onto each sample,
//! 5. reconstruct trees with UPGMA and Neighbor-Joining from the sampled
//!    sequences,
//! 6. score every reconstruction against the projection with
//!    Robinson–Foulds.
//!
//! ```bash
//! cargo run --release --example benchmark_pipeline
//! ```

use crimson::experiment::{DistanceSource, EvalSpec, ExperimentRunner, Method};
use crimson::prelude::*;
use simulation::gold::GoldStandardBuilder;
use simulation::seqevo::Model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("crimson-benchmark");
    std::fs::create_dir_all(&dir)?;
    let db_path = dir.join("benchmark.crimson");
    let _ = std::fs::remove_file(&db_path);

    // 1. A gold standard: 1000 taxa, 800 sites under Jukes-Cantor.
    println!("generating gold standard (1000 taxa, 800 sites, JC69)…");
    let gold = GoldStandardBuilder::new()
        .leaves(1000)
        .sequence_length(800)
        .model(Model::Jc69 { rate: 0.1 })
        .seed(2026)
        .build()?;

    // 2. Load it.
    let mut repo = Repository::create(&db_path, RepositoryOptions::default())?;
    let handle = repo.load_gold_standard("gold_standard", &gold)?;
    let record = repo.tree_record(handle)?;
    println!(
        "loaded `{}`: {} nodes, {} taxa, {} species sequences\n",
        record.name,
        record.node_count,
        record.leaf_count,
        repo.species_count(handle)?
    );

    // 3–6. Run the benchmark matrix.
    println!("{:-^100}", " benchmark runs ");
    let mut manager = ExperimentRunner::new(&mut repo, handle);
    for &sample_size in &[16usize, 64, 256] {
        for strategy in [
            SamplingStrategy::Uniform { k: sample_size },
            SamplingStrategy::TimeRespecting {
                time: 0.5,
                k: sample_size,
            },
        ] {
            let strategy_name = match &strategy {
                SamplingStrategy::Uniform { .. } => "uniform",
                SamplingStrategy::TimeRespecting { .. } => "time(0.5)",
                SamplingStrategy::UserList { .. } => "user",
            };
            for (method, source) in [
                (Method::Upgma, DistanceSource::SequencesJc),
                (Method::NeighborJoining, DistanceSource::SequencesJc),
                (Method::NeighborJoining, DistanceSource::TruePatristic),
            ] {
                let report = manager.evaluate(&EvalSpec {
                    strategy: strategy.clone(),
                    method,
                    distance_source: source,
                    compute_triplets: sample_size <= 64,
                    seed: 42,
                })?;
                let triplet = report
                    .triplet
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{:<10} {}   triplet={}",
                    strategy_name,
                    report.summary_row(),
                    triplet
                );
            }
        }
    }

    // The query repository now holds every run for later recall.
    let history = repo.history_of_kind(crimson::history::QueryKind::Benchmark)?;
    println!(
        "\n{} benchmark runs recorded in the query repository",
        history.len()
    );

    // 7. A *persisted* experiment sweep: the grid fans across snapshot
    //    workers, every reconstruction is stored as an ordinary tree, and
    //    spec, metrics and per-clade agreement rows land in the experiment
    //    catalog — one atomic transaction, re-runnable from its stored spec.
    println!("\n{:-^100}", " persisted experiment sweep ");
    let spec = crimson::experiment::ExperimentSpec {
        name: "demo-sweep".to_string(),
        methods: vec![Method::Upgma, Method::NeighborJoining],
        strategies: vec![
            SamplingStrategy::Uniform { k: 32 },
            SamplingStrategy::Uniform { k: 64 },
            SamplingStrategy::TimeRespecting { time: 1e6, k: 48 },
        ],
        replicates: 3,
        distance_source: DistanceSource::SequencesJc,
        compute_triplets: false,
        seed: 2026,
        workers: 4,
        cell_commits: false,
    };
    let record = ExperimentRunner::new(&mut repo, handle).run(&spec)?;
    println!(
        "experiment `{}` (id {}): {} runs persisted in {:.0} ms",
        record.name, record.id, record.runs, record.wall_ms
    );
    for result in repo.experiment_results(record.id)? {
        let clades = repo.experiment_clades(result.id)?;
        let agreeing = clades.iter().filter(|c| c.agrees).count();
        println!(
            "  {:<6} strategy#{} rep{}  {:>3} taxa  RF={:<3} nRF={:.3}  clades {agreeing}/{} agree  tree #{}",
            result.method.name(),
            result.strategy_index,
            result.replicate,
            result.sample_size,
            result.rf.distance,
            result.rf.normalized,
            clades.len(),
            result.recon.0,
        );
    }
    // Stored reconstructions compare index-natively — no materialization.
    // Methods of the same (strategy, replicate) cell score the same sample,
    // so UPGMA's and NJ's stored trees share a leaf set.
    let results = repo.experiment_results(record.id)?;
    let upgma = &results[0]; // (UPGMA, strategy 0, replicate 0)
    let nj = results
        .iter()
        .find(|r| {
            r.method == Method::NeighborJoining
                && r.strategy_index == upgma.strategy_index
                && r.replicate == upgma.replicate
        })
        .expect("the grid contains both methods");
    let cmp = repo.compare_stored(upgma.recon, nj.recon, false)?;
    println!(
        "\nindex-native RF between stored UPGMA #{} and NJ #{} reconstructions: {} (normalized {:.3})",
        upgma.recon.0, nj.recon.0, cmp.rf.distance, cmp.rf.normalized
    );
    // 8. Content-addressed storage: every stored tree carries a canonical
    //    128-bit per-clade hash, so whole-tree equality is a stats-row probe
    //    and duplicate reconstructions deduplicate on store.
    println!("\n{:-^100}", " content-addressed storage ");

    // Re-storing the gold standard is a dedup hit — no bytes written, the
    // canonical handle comes back.
    let (canon, hit) = repo.store_tree_dedup("gold_again", &gold.tree)?;
    println!(
        "store_tree_dedup(gold again) -> tree #{} (dedup hit: {hit})",
        canon.0
    );
    assert!(hit && canon == handle);

    // Hash-equal stored trees compare in O(1): `trees_equal` is two index
    // probes, and `compare_stored` short-circuits off the stats rows
    // (distances zero, shared counts exact) without streaming a single
    // interval row.
    let stats = repo.tree_stats(handle)?.expect("gold standard is hashed");
    println!(
        "gold root hash {:032x}: {} rooted clades, {} unrooted splits",
        stats.root_hash.to_u128(),
        stats.rooted_clades,
        stats.unrooted_splits
    );
    println!(
        "trees_equal(gold, gold)      = {}",
        repo.trees_equal(handle, handle)?
    );
    println!(
        "trees_equal(upgma, nj)       = {}",
        repo.trees_equal(upgma.recon, nj.recon)?
    );
    println!(
        "trees_with_root_hash(gold)   = {:?}",
        repo.trees_with_root_hash(stats.root_hash)?
    );

    // The global hash index also answers subtree queries: every stored
    // occurrence of a clade (tree roots plus spans of >= 32 nodes) by hash.
    let occurrences = repo.subtrees_with_hash(stats.root_hash)?;
    println!(
        "subtrees_with_hash(gold root) -> {} occurrence(s)",
        occurrences.len()
    );

    // A cold store keeps only the spine: subtrees already present in a hot
    // tree become bridge rows instead of node rows, and reads stay
    // transparent (the comparison below streams through the bridges).
    let cold = repo.store_tree_shared("gold_cold", &gold.tree, 32)?;
    let refs = repo.clade_refs_of(cold)?;
    let cmp = repo.compare_stored(handle, cold, false)?;
    println!(
        "store_tree_shared(gold) -> tree #{}: {} bridge rows, RF vs canonical = {}",
        cold.0,
        refs.len(),
        cmp.rf.distance
    );

    let cs = repo.content_stats()?;
    println!(
        "content stats: {}/{} trees hashed, {} cold; {} logical nodes, {} stored, {} bridged via {} refs",
        cs.hashed_trees,
        cs.trees,
        cs.cold_trees,
        cs.logical_nodes,
        cs.stored_nodes,
        cs.bridged_nodes,
        cs.dedup_refs
    );
    repo.flush()?;
    Ok(())
}
