//! The CIPRes-style benchmarking workflow the paper was built for:
//!
//! 1. generate a gold-standard simulation tree with sequence data,
//! 2. load it into the Crimson repository,
//! 3. sample species (uniformly and with respect to time),
//! 4. project the gold standard onto each sample,
//! 5. reconstruct trees with UPGMA and Neighbor-Joining from the sampled
//!    sequences,
//! 6. score every reconstruction against the projection with
//!    Robinson–Foulds.
//!
//! ```bash
//! cargo run --release --example benchmark_pipeline
//! ```

use crimson::benchmark::{BenchmarkManager, BenchmarkSpec, DistanceSource, Method};
use crimson::prelude::*;
use simulation::gold::GoldStandardBuilder;
use simulation::seqevo::Model;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("crimson-benchmark");
    std::fs::create_dir_all(&dir)?;
    let db_path = dir.join("benchmark.crimson");
    let _ = std::fs::remove_file(&db_path);

    // 1. A gold standard: 1000 taxa, 800 sites under Jukes-Cantor.
    println!("generating gold standard (1000 taxa, 800 sites, JC69)…");
    let gold = GoldStandardBuilder::new()
        .leaves(1000)
        .sequence_length(800)
        .model(Model::Jc69 { rate: 0.1 })
        .seed(2026)
        .build()?;

    // 2. Load it.
    let mut repo = Repository::create(&db_path, RepositoryOptions::default())?;
    let handle = repo.load_gold_standard("gold_standard", &gold)?;
    let record = repo.tree_record(handle)?;
    println!(
        "loaded `{}`: {} nodes, {} taxa, {} species sequences\n",
        record.name,
        record.node_count,
        record.leaf_count,
        repo.species_count(handle)?
    );

    // 3–6. Run the benchmark matrix.
    println!("{:-^100}", " benchmark runs ");
    let mut manager = BenchmarkManager::new(&mut repo, handle);
    for &sample_size in &[16usize, 64, 256] {
        for strategy in [
            SamplingStrategy::Uniform { k: sample_size },
            SamplingStrategy::TimeRespecting {
                time: 0.5,
                k: sample_size,
            },
        ] {
            let strategy_name = match &strategy {
                SamplingStrategy::Uniform { .. } => "uniform",
                SamplingStrategy::TimeRespecting { .. } => "time(0.5)",
                SamplingStrategy::UserList { .. } => "user",
            };
            for (method, source) in [
                (Method::Upgma, DistanceSource::SequencesJc),
                (Method::NeighborJoining, DistanceSource::SequencesJc),
                (Method::NeighborJoining, DistanceSource::TruePatristic),
            ] {
                let report = manager.run(&BenchmarkSpec {
                    strategy: strategy.clone(),
                    method,
                    distance_source: source,
                    compute_triplets: sample_size <= 64,
                    seed: 42,
                })?;
                let triplet = report
                    .triplet
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{:<10} {}   triplet={}",
                    strategy_name,
                    report.summary_row(),
                    triplet
                );
            }
        }
    }

    // The query repository now holds every run for later recall.
    let history = repo.history_of_kind(crimson::history::QueryKind::Benchmark)?;
    println!(
        "\n{} benchmark runs recorded in the query repository",
        history.len()
    );
    repo.flush()?;
    Ok(())
}
