/root/repo/target/debug/examples/deep_tree_queries-838086a5b7eedf0f.d: examples/deep_tree_queries.rs

/root/repo/target/debug/examples/deep_tree_queries-838086a5b7eedf0f: examples/deep_tree_queries.rs

examples/deep_tree_queries.rs:
