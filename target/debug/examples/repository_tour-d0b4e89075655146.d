/root/repo/target/debug/examples/repository_tour-d0b4e89075655146.d: examples/repository_tour.rs

/root/repo/target/debug/examples/repository_tour-d0b4e89075655146: examples/repository_tour.rs

examples/repository_tour.rs:
