/root/repo/target/debug/examples/benchmark_pipeline-9229628a82384291.d: examples/benchmark_pipeline.rs

/root/repo/target/debug/examples/benchmark_pipeline-9229628a82384291: examples/benchmark_pipeline.rs

examples/benchmark_pipeline.rs:
