/root/repo/target/debug/examples/quickstart-b67927169bb65a39.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-b67927169bb65a39: examples/quickstart.rs

examples/quickstart.rs:
