/root/repo/target/debug/deps/phylo-8dc1015f05ee1917.d: crates/phylo/src/lib.rs crates/phylo/src/builder.rs crates/phylo/src/distance.rs crates/phylo/src/error.rs crates/phylo/src/newick.rs crates/phylo/src/nexus.rs crates/phylo/src/ops.rs crates/phylo/src/render.rs crates/phylo/src/traverse.rs crates/phylo/src/tree.rs

/root/repo/target/debug/deps/libphylo-8dc1015f05ee1917.rlib: crates/phylo/src/lib.rs crates/phylo/src/builder.rs crates/phylo/src/distance.rs crates/phylo/src/error.rs crates/phylo/src/newick.rs crates/phylo/src/nexus.rs crates/phylo/src/ops.rs crates/phylo/src/render.rs crates/phylo/src/traverse.rs crates/phylo/src/tree.rs

/root/repo/target/debug/deps/libphylo-8dc1015f05ee1917.rmeta: crates/phylo/src/lib.rs crates/phylo/src/builder.rs crates/phylo/src/distance.rs crates/phylo/src/error.rs crates/phylo/src/newick.rs crates/phylo/src/nexus.rs crates/phylo/src/ops.rs crates/phylo/src/render.rs crates/phylo/src/traverse.rs crates/phylo/src/tree.rs

crates/phylo/src/lib.rs:
crates/phylo/src/builder.rs:
crates/phylo/src/distance.rs:
crates/phylo/src/error.rs:
crates/phylo/src/newick.rs:
crates/phylo/src/nexus.rs:
crates/phylo/src/ops.rs:
crates/phylo/src/render.rs:
crates/phylo/src/traverse.rs:
crates/phylo/src/tree.rs:
