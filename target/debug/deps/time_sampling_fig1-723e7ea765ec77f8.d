/root/repo/target/debug/deps/time_sampling_fig1-723e7ea765ec77f8.d: tests/time_sampling_fig1.rs

/root/repo/target/debug/deps/time_sampling_fig1-723e7ea765ec77f8: tests/time_sampling_fig1.rs

tests/time_sampling_fig1.rs:
