/root/repo/target/debug/deps/reconstruction-568a5dba5e4bf12a.d: crates/reconstruction/src/lib.rs crates/reconstruction/src/compare.rs crates/reconstruction/src/distance.rs crates/reconstruction/src/nj.rs crates/reconstruction/src/upgma.rs

/root/repo/target/debug/deps/reconstruction-568a5dba5e4bf12a: crates/reconstruction/src/lib.rs crates/reconstruction/src/compare.rs crates/reconstruction/src/distance.rs crates/reconstruction/src/nj.rs crates/reconstruction/src/upgma.rs

crates/reconstruction/src/lib.rs:
crates/reconstruction/src/compare.rs:
crates/reconstruction/src/distance.rs:
crates/reconstruction/src/nj.rs:
crates/reconstruction/src/upgma.rs:
