/root/repo/target/debug/deps/serde-d0003824b8094f41.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d0003824b8094f41.rlib: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-d0003824b8094f41.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
