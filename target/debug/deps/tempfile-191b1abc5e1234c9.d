/root/repo/target/debug/deps/tempfile-191b1abc5e1234c9.d: vendor/tempfile/src/lib.rs

/root/repo/target/debug/deps/libtempfile-191b1abc5e1234c9.rlib: vendor/tempfile/src/lib.rs

/root/repo/target/debug/deps/libtempfile-191b1abc5e1234c9.rmeta: vendor/tempfile/src/lib.rs

vendor/tempfile/src/lib.rs:
