/root/repo/target/debug/deps/tempfile-99a19d7d574e9557.d: vendor/tempfile/src/lib.rs

/root/repo/target/debug/deps/tempfile-99a19d7d574e9557: vendor/tempfile/src/lib.rs

vendor/tempfile/src/lib.rs:
