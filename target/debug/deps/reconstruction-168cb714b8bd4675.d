/root/repo/target/debug/deps/reconstruction-168cb714b8bd4675.d: crates/reconstruction/src/lib.rs crates/reconstruction/src/compare.rs crates/reconstruction/src/distance.rs crates/reconstruction/src/nj.rs crates/reconstruction/src/upgma.rs

/root/repo/target/debug/deps/libreconstruction-168cb714b8bd4675.rlib: crates/reconstruction/src/lib.rs crates/reconstruction/src/compare.rs crates/reconstruction/src/distance.rs crates/reconstruction/src/nj.rs crates/reconstruction/src/upgma.rs

/root/repo/target/debug/deps/libreconstruction-168cb714b8bd4675.rmeta: crates/reconstruction/src/lib.rs crates/reconstruction/src/compare.rs crates/reconstruction/src/distance.rs crates/reconstruction/src/nj.rs crates/reconstruction/src/upgma.rs

crates/reconstruction/src/lib.rs:
crates/reconstruction/src/compare.rs:
crates/reconstruction/src/distance.rs:
crates/reconstruction/src/nj.rs:
crates/reconstruction/src/upgma.rs:
