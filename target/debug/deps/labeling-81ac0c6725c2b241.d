/root/repo/target/debug/deps/labeling-81ac0c6725c2b241.d: crates/labeling/src/lib.rs crates/labeling/src/dewey.rs crates/labeling/src/hierarchical.rs crates/labeling/src/interval.rs crates/labeling/src/parent.rs crates/labeling/src/scheme.rs

/root/repo/target/debug/deps/labeling-81ac0c6725c2b241: crates/labeling/src/lib.rs crates/labeling/src/dewey.rs crates/labeling/src/hierarchical.rs crates/labeling/src/interval.rs crates/labeling/src/parent.rs crates/labeling/src/scheme.rs

crates/labeling/src/lib.rs:
crates/labeling/src/dewey.rs:
crates/labeling/src/hierarchical.rs:
crates/labeling/src/interval.rs:
crates/labeling/src/parent.rs:
crates/labeling/src/scheme.rs:
