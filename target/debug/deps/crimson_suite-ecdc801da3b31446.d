/root/repo/target/debug/deps/crimson_suite-ecdc801da3b31446.d: src/lib.rs

/root/repo/target/debug/deps/libcrimson_suite-ecdc801da3b31446.rlib: src/lib.rs

/root/repo/target/debug/deps/libcrimson_suite-ecdc801da3b31446.rmeta: src/lib.rs

src/lib.rs:
