/root/repo/target/debug/deps/fig1_fig2_projection-d900881ba4a75d3c.d: tests/fig1_fig2_projection.rs

/root/repo/target/debug/deps/fig1_fig2_projection-d900881ba4a75d3c: tests/fig1_fig2_projection.rs

tests/fig1_fig2_projection.rs:
