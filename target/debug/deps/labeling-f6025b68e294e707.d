/root/repo/target/debug/deps/labeling-f6025b68e294e707.d: crates/labeling/src/lib.rs crates/labeling/src/dewey.rs crates/labeling/src/hierarchical.rs crates/labeling/src/interval.rs crates/labeling/src/parent.rs crates/labeling/src/scheme.rs

/root/repo/target/debug/deps/liblabeling-f6025b68e294e707.rlib: crates/labeling/src/lib.rs crates/labeling/src/dewey.rs crates/labeling/src/hierarchical.rs crates/labeling/src/interval.rs crates/labeling/src/parent.rs crates/labeling/src/scheme.rs

/root/repo/target/debug/deps/liblabeling-f6025b68e294e707.rmeta: crates/labeling/src/lib.rs crates/labeling/src/dewey.rs crates/labeling/src/hierarchical.rs crates/labeling/src/interval.rs crates/labeling/src/parent.rs crates/labeling/src/scheme.rs

crates/labeling/src/lib.rs:
crates/labeling/src/dewey.rs:
crates/labeling/src/hierarchical.rs:
crates/labeling/src/interval.rs:
crates/labeling/src/parent.rs:
crates/labeling/src/scheme.rs:
