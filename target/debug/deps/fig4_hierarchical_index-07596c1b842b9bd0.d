/root/repo/target/debug/deps/fig4_hierarchical_index-07596c1b842b9bd0.d: tests/fig4_hierarchical_index.rs

/root/repo/target/debug/deps/fig4_hierarchical_index-07596c1b842b9bd0: tests/fig4_hierarchical_index.rs

tests/fig4_hierarchical_index.rs:
