/root/repo/target/debug/deps/simulation-2bec71ef5630bfc7.d: crates/simulation/src/lib.rs crates/simulation/src/birth_death.rs crates/simulation/src/gold.rs crates/simulation/src/seqevo.rs

/root/repo/target/debug/deps/simulation-2bec71ef5630bfc7: crates/simulation/src/lib.rs crates/simulation/src/birth_death.rs crates/simulation/src/gold.rs crates/simulation/src/seqevo.rs

crates/simulation/src/lib.rs:
crates/simulation/src/birth_death.rs:
crates/simulation/src/gold.rs:
crates/simulation/src/seqevo.rs:
