/root/repo/target/debug/deps/property_lca-2777d3770c4a69d6.d: crates/labeling/tests/property_lca.rs

/root/repo/target/debug/deps/property_lca-2777d3770c4a69d6: crates/labeling/tests/property_lca.rs

crates/labeling/tests/property_lca.rs:
