/root/repo/target/debug/deps/crimson_suite-2736f4607c486f81.d: src/lib.rs

/root/repo/target/debug/deps/crimson_suite-2736f4607c486f81: src/lib.rs

src/lib.rs:
