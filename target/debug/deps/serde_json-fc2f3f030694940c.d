/root/repo/target/debug/deps/serde_json-fc2f3f030694940c.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-fc2f3f030694940c: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
