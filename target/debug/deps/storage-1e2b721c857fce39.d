/root/repo/target/debug/deps/storage-1e2b721c857fce39.d: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/schema.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libstorage-1e2b721c857fce39.rlib: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/schema.rs crates/storage/src/value.rs

/root/repo/target/debug/deps/libstorage-1e2b721c857fce39.rmeta: crates/storage/src/lib.rs crates/storage/src/btree.rs crates/storage/src/buffer.rs crates/storage/src/catalog.rs crates/storage/src/db.rs crates/storage/src/error.rs crates/storage/src/heap.rs crates/storage/src/page.rs crates/storage/src/pager.rs crates/storage/src/schema.rs crates/storage/src/value.rs

crates/storage/src/lib.rs:
crates/storage/src/btree.rs:
crates/storage/src/buffer.rs:
crates/storage/src/catalog.rs:
crates/storage/src/db.rs:
crates/storage/src/error.rs:
crates/storage/src/heap.rs:
crates/storage/src/page.rs:
crates/storage/src/pager.rs:
crates/storage/src/schema.rs:
crates/storage/src/value.rs:
