/root/repo/target/debug/deps/crimson_bench-6b2ee779395e86c0.d: crates/bench/src/lib.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/crimson_bench-6b2ee779395e86c0: crates/bench/src/lib.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/workloads.rs:
