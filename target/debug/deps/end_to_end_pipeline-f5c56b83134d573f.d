/root/repo/target/debug/deps/end_to_end_pipeline-f5c56b83134d573f.d: tests/end_to_end_pipeline.rs

/root/repo/target/debug/deps/end_to_end_pipeline-f5c56b83134d573f: tests/end_to_end_pipeline.rs

tests/end_to_end_pipeline.rs:
