/root/repo/target/debug/deps/serde_json-6ac087017c16bffe.d: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6ac087017c16bffe.rlib: vendor/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-6ac087017c16bffe.rmeta: vendor/serde_json/src/lib.rs

vendor/serde_json/src/lib.rs:
