/root/repo/target/debug/deps/simulation-f03fc06d99152959.d: crates/simulation/src/lib.rs crates/simulation/src/birth_death.rs crates/simulation/src/gold.rs crates/simulation/src/seqevo.rs

/root/repo/target/debug/deps/libsimulation-f03fc06d99152959.rlib: crates/simulation/src/lib.rs crates/simulation/src/birth_death.rs crates/simulation/src/gold.rs crates/simulation/src/seqevo.rs

/root/repo/target/debug/deps/libsimulation-f03fc06d99152959.rmeta: crates/simulation/src/lib.rs crates/simulation/src/birth_death.rs crates/simulation/src/gold.rs crates/simulation/src/seqevo.rs

crates/simulation/src/lib.rs:
crates/simulation/src/birth_death.rs:
crates/simulation/src/gold.rs:
crates/simulation/src/seqevo.rs:
