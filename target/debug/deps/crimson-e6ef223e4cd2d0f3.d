/root/repo/target/debug/deps/crimson-e6ef223e4cd2d0f3.d: crates/crimson/src/lib.rs crates/crimson/src/benchmark.rs crates/crimson/src/error.rs crates/crimson/src/history.rs crates/crimson/src/loader.rs crates/crimson/src/query.rs crates/crimson/src/repository.rs crates/crimson/src/sampling.rs

/root/repo/target/debug/deps/libcrimson-e6ef223e4cd2d0f3.rlib: crates/crimson/src/lib.rs crates/crimson/src/benchmark.rs crates/crimson/src/error.rs crates/crimson/src/history.rs crates/crimson/src/loader.rs crates/crimson/src/query.rs crates/crimson/src/repository.rs crates/crimson/src/sampling.rs

/root/repo/target/debug/deps/libcrimson-e6ef223e4cd2d0f3.rmeta: crates/crimson/src/lib.rs crates/crimson/src/benchmark.rs crates/crimson/src/error.rs crates/crimson/src/history.rs crates/crimson/src/loader.rs crates/crimson/src/query.rs crates/crimson/src/repository.rs crates/crimson/src/sampling.rs

crates/crimson/src/lib.rs:
crates/crimson/src/benchmark.rs:
crates/crimson/src/error.rs:
crates/crimson/src/history.rs:
crates/crimson/src/loader.rs:
crates/crimson/src/query.rs:
crates/crimson/src/repository.rs:
crates/crimson/src/sampling.rs:
