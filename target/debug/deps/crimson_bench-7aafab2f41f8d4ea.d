/root/repo/target/debug/deps/crimson_bench-7aafab2f41f8d4ea.d: crates/bench/src/lib.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libcrimson_bench-7aafab2f41f8d4ea.rlib: crates/bench/src/lib.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libcrimson_bench-7aafab2f41f8d4ea.rmeta: crates/bench/src/lib.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/workloads.rs:
