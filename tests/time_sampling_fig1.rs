//! Experiment E5 (correctness part) — sampling with respect to an
//! evolutionary time, §2.2 worked example: sampling four species at time 1
//! from the Figure 1 tree yields {Bha, Lla, Syn, Bsu} or {Bha, Spy, Syn, Bsu}.

use crimson::prelude::*;
use phylo::builder::figure1_tree;
use std::collections::HashSet;

fn repo() -> (tempfile::TempDir, Repository, TreeHandle) {
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("e5.crimson"),
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = repo.load_tree("fig1", &figure1_tree()).unwrap();
    (dir, repo, handle)
}

#[test]
fn frontier_is_the_papers_four_nodes() {
    let (_d, repo, handle) = repo();
    let frontier = repo.time_frontier(handle, 1.0).unwrap();
    assert_eq!(
        frontier.len(),
        4,
        "the paper lists exactly four frontier nodes"
    );
    let mut named: Vec<String> = Vec::new();
    let mut unnamed_depths = Vec::new();
    for node in frontier {
        let rec = repo.node_record(node).unwrap();
        match rec.name {
            Some(n) => named.push(n),
            None => unnamed_depths.push(rec.depth),
        }
    }
    named.sort();
    assert_eq!(named, vec!["Bha", "Bsu", "Syn"]);
    // The fourth node is x, the (unnamed) parent of Lla and Spy.
    assert_eq!(unnamed_depths, vec![2]);
}

#[test]
fn sampling_four_species_matches_paper_outcomes() {
    let (_d, repo, handle) = repo();
    let mut seen_lla = false;
    let mut seen_spy = false;
    for seed in 0..20u64 {
        let sample = repo.sample_by_time(handle, 1.0, 4, seed).unwrap();
        let names: HashSet<String> = repo.names_of(&sample).unwrap().into_iter().collect();
        assert_eq!(names.len(), 4);
        assert!(names.contains("Bha"));
        assert!(names.contains("Syn"));
        assert!(names.contains("Bsu"));
        let lla = names.contains("Lla");
        let spy = names.contains("Spy");
        assert!(lla ^ spy, "exactly one of Lla/Spy must be drawn: {names:?}");
        seen_lla |= lla;
        seen_spy |= spy;
    }
    // Over 20 seeds both outcomes listed in the paper occur.
    assert!(
        seen_lla && seen_spy,
        "both paper outcomes should appear across seeds"
    );
}

#[test]
fn uniform_sampling_covers_all_species_eventually() {
    let (_d, repo, handle) = repo();
    let mut seen: HashSet<String> = HashSet::new();
    for seed in 0..30u64 {
        let sample = repo.sample_uniform(handle, 2, seed).unwrap();
        seen.extend(repo.names_of(&sample).unwrap());
    }
    assert_eq!(
        seen.len(),
        5,
        "every species should be drawn across 30 two-species samples"
    );
}

#[test]
fn sample_then_project_then_compare_is_consistent() {
    // A miniature end-to-end loop on the Figure 1 tree: the projection of a
    // time-respecting sample matches the in-memory projection over the same
    // species.
    let (_d, repo, handle) = repo();
    let tree = figure1_tree();
    for seed in 0..5u64 {
        let sample = repo.sample_by_time(handle, 1.0, 4, seed).unwrap();
        let names = repo.names_of(&sample).unwrap();
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        let stored = repo.project(handle, &sample).unwrap();
        let expected = phylo::ops::project_by_names(&tree, &refs).unwrap();
        assert!(phylo::ops::isomorphic_with_lengths(
            &stored, &expected, 1e-9
        ));
    }
}
