//! Experiment E8 (correctness part) — the full CIPRes-style benchmarking
//! pipeline across crates: gold standard generation → repository load →
//! sampling → projection → reconstruction → comparison, plus persistence.

use crimson::experiment::{DistanceSource, EvalSpec, ExperimentRunner, Method};
use crimson::prelude::*;
use reconstruction::prelude::*;
use simulation::gold::GoldStandardBuilder;
use simulation::seqevo::Model;

fn build_gold(leaves: usize, sites: usize, seed: u64) -> simulation::gold::GoldStandard {
    GoldStandardBuilder::new()
        .leaves(leaves)
        .sequence_length(sites)
        .model(Model::Jc69 { rate: 0.1 })
        .seed(seed)
        .build()
        .unwrap()
}

#[test]
fn nj_on_true_distances_is_exact_through_the_whole_stack() {
    let gold = build_gold(200, 0, 11);
    let dir = tempfile::tempdir().unwrap();
    let mut repo =
        Repository::create(dir.path().join("e8.crimson"), RepositoryOptions::default()).unwrap();
    let handle = repo.load_gold_standard("gold", &gold).unwrap();

    let mut manager = ExperimentRunner::new(&mut repo, handle);
    for seed in 0..3u64 {
        let report = manager
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 40 },
                method: Method::NeighborJoining,
                distance_source: DistanceSource::TruePatristic,
                compute_triplets: false,
                seed,
            })
            .unwrap();
        assert_eq!(
            report.rf.distance, 0,
            "seed {seed}: NJ must be exact on true distances"
        );
        assert_eq!(report.sample_size, 40);
    }
}

#[test]
fn sequence_reconstruction_beats_random_baseline() {
    // NJ on JC-corrected sequence distances should share far more splits with
    // the truth than a random tree over the same taxa does.
    let gold = build_gold(100, 1000, 3);
    let dir = tempfile::tempdir().unwrap();
    let mut repo =
        Repository::create(dir.path().join("e8b.crimson"), RepositoryOptions::default()).unwrap();
    let handle = repo.load_gold_standard("gold", &gold).unwrap();

    let mut manager = ExperimentRunner::new(&mut repo, handle);
    let report = manager
        .evaluate(&EvalSpec {
            strategy: SamplingStrategy::Uniform { k: 32 },
            method: Method::NeighborJoining,
            distance_source: DistanceSource::SequencesJc,
            compute_triplets: false,
            seed: 9,
        })
        .unwrap();
    // A "random" comparison tree: reconstruct from a shuffled (wrong) set of
    // distances by comparing against a caterpillar over the same names.
    let mut names = report.reference.leaf_names();
    names.sort();
    let mut random_tree = phylo::Tree::new();
    let mut cur = random_tree.add_node();
    for (i, name) in names.iter().enumerate() {
        if i + 1 == names.len() {
            random_tree
                .add_child(cur, Some(name.clone()), Some(1.0))
                .unwrap();
        } else {
            random_tree
                .add_child(cur, Some(name.clone()), Some(1.0))
                .unwrap();
            cur = random_tree.add_child(cur, None, Some(1.0)).unwrap();
        }
    }
    let random_rf = robinson_foulds(&report.reference, &random_tree).unwrap();
    assert!(
        report.rf.normalized < random_rf.normalized,
        "NJ ({:.3}) must beat an arbitrary caterpillar ({:.3})",
        report.rf.normalized,
        random_rf.normalized
    );
    // And with 1000 sites it should actually be quite good.
    assert!(
        report.rf.normalized < 0.5,
        "got {:.3}",
        report.rf.normalized
    );
}

#[test]
fn upgma_vs_nj_headtohead_produces_reports_for_both() {
    let gold = build_gold(150, 400, 21);
    let dir = tempfile::tempdir().unwrap();
    let mut repo =
        Repository::create(dir.path().join("e8c.crimson"), RepositoryOptions::default()).unwrap();
    let handle = repo.load_gold_standard("gold", &gold).unwrap();
    let mut manager = ExperimentRunner::new(&mut repo, handle);
    let reports = manager
        .evaluate_methods(
            &EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 24 },
                distance_source: DistanceSource::SequencesJc,
                compute_triplets: true,
                seed: 4,
                ..Default::default()
            },
            &[Method::Upgma, Method::NeighborJoining],
        )
        .unwrap();
    assert_eq!(reports.len(), 2);
    for report in &reports {
        assert_eq!(report.sample_size, 24);
        assert!(report.rf.normalized <= 1.0);
        assert!(report.triplet.unwrap() <= 1.0);
        assert_eq!(report.reference.leaf_count(), 24);
        assert_eq!(report.reconstruction.leaf_count(), 24);
    }
    // Both runs were recorded in the query repository.
    assert_eq!(
        repo.history_of_kind(crimson::history::QueryKind::Benchmark)
            .unwrap()
            .len(),
        2
    );
}

#[test]
fn repository_persists_full_state_across_reopen() {
    let gold = build_gold(80, 100, 31);
    let dir = tempfile::tempdir().unwrap();
    let path = dir.path().join("persist.crimson");
    let handle;
    {
        let mut repo = Repository::create(&path, RepositoryOptions::default()).unwrap();
        handle = repo.load_gold_standard("gold", &gold).unwrap();
        let mut manager = ExperimentRunner::new(&mut repo, handle);
        manager
            .evaluate(&EvalSpec {
                strategy: SamplingStrategy::Uniform { k: 16 },
                method: Method::Upgma,
                distance_source: DistanceSource::SequencesP,
                compute_triplets: false,
                seed: 2,
            })
            .unwrap();
        repo.flush().unwrap();
    }
    // Reopen: tree, species, history all still there and queryable.
    let repo = Repository::open(&path, RepositoryOptions::default()).unwrap();
    let record = repo.tree_by_name("gold").unwrap();
    assert_eq!(record.handle, handle);
    assert_eq!(record.leaf_count, 80);
    assert_eq!(repo.species_count(handle).unwrap(), 80);
    assert_eq!(
        repo.history_of_kind(crimson::history::QueryKind::Benchmark)
            .unwrap()
            .len(),
        1
    );
    // Structure queries still work from disk.
    let leaves = repo.leaves(handle).unwrap();
    let lca = repo.lca(leaves[0], leaves[leaves.len() - 1]).unwrap();
    assert!(repo.is_ancestor(lca, leaves[0]).unwrap());
    let projection = repo.project(handle, &leaves[..10]).unwrap();
    assert_eq!(projection.leaf_count(), 10);
}

#[test]
fn gold_standard_nexus_roundtrip_through_repository() {
    // Export the gold standard to NEXUS text, load it through the loader, and
    // verify the stored tree matches the original.
    let gold = build_gold(40, 60, 17);
    let nexus_text = phylo::nexus::write(&gold.to_nexus());
    let dir = tempfile::tempdir().unwrap();
    let mut repo =
        Repository::create(dir.path().join("e8d.crimson"), RepositoryOptions::default()).unwrap();
    let report = repo
        .load_nexus_text("gold", &nexus_text, LoadMode::TreeWithSpecies)
        .unwrap();
    assert_eq!(report.species_loaded, 40);
    let stored = repo
        .project(report.handle, &repo.leaves(report.handle).unwrap())
        .unwrap();
    assert!(phylo::ops::isomorphic(&stored, &gold.tree));
    // Sequences survived the roundtrip byte for byte.
    let names: Vec<String> = gold.sequences.keys().cloned().collect();
    let stored_seqs = repo.sequences_for(report.handle, &names).unwrap();
    assert_eq!(stored_seqs, gold.sequences);
}
