//! Experiment E1 — the paper's Figures 1 and 2: the sample phylogenetic tree
//! and its projection onto the leaf set {Bha, Lla, Syn}, exercised both
//! in memory and through the disk-backed repository.

use crimson::prelude::*;
use phylo::builder::figure1_tree;
use phylo::ops;

const FIG1_NEWICK: &str = "((Bha:0.75,(Lla:1.0,Spy:1.0):0.5):1.5,Syn:2.5,Bsu:1.25);";

#[test]
fn figure1_tree_matches_newick_form() {
    let built = figure1_tree();
    let parsed = phylo::newick::parse(FIG1_NEWICK).unwrap();
    assert!(ops::isomorphic_with_lengths(&built, &parsed, 1e-9));
    // Edge weights / cumulative evolutionary times from Figure 1.
    for (name, expected) in [
        ("Bha", 2.25),
        ("Lla", 3.0),
        ("Spy", 3.0),
        ("Syn", 2.5),
        ("Bsu", 1.25),
    ] {
        let leaf = built.find_leaf_by_name(name).unwrap();
        assert!(
            (built.root_distance(leaf) - expected).abs() < 1e-12,
            "{name}"
        );
    }
}

#[test]
fn figure2_projection_in_memory() {
    let tree = figure1_tree();
    let projection = ops::project_by_names(&tree, &["Bha", "Lla", "Syn"]).unwrap();
    // Figure 2: Bha keeps 0.75, Lla's two edges merge into 1.5, Syn keeps
    // 2.5, and the interior node keeps its 1.5 edge. 5 nodes total, no unary
    // nodes.
    assert_eq!(projection.leaf_count(), 3);
    assert_eq!(projection.node_count(), 5);
    assert!(ops::is_unary_free(&projection));
    let expected = phylo::newick::parse("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);").unwrap();
    assert!(ops::isomorphic_with_lengths(&projection, &expected, 1e-9));
}

#[test]
fn figure2_projection_through_repository() {
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("e1.crimson"),
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = repo.load_newick("fig1", FIG1_NEWICK).unwrap().handle;
    let projection = repo
        .project_species(handle, &["Bha", "Lla", "Syn"])
        .unwrap();
    let expected = phylo::newick::parse("((Bha:0.75,Lla:1.5):1.5,Syn:2.5);").unwrap();
    assert!(
        ops::isomorphic_with_lengths(&projection, &expected, 1e-9),
        "stored projection:\n{}",
        phylo::render::ascii(&projection)
    );
    // Projection preserves root-to-leaf evolutionary times.
    for (name, expected) in [("Bha", 2.25), ("Lla", 3.0), ("Syn", 2.5)] {
        let leaf = projection.find_leaf_by_name(name).unwrap();
        assert!(
            (projection.root_distance(leaf) - expected).abs() < 1e-9,
            "{name}"
        );
    }
}

#[test]
fn projection_roundtrips_through_nexus_output() {
    // §3 "Visualizing the results": projections can be emitted as NEXUS.
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("e1b.crimson"),
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = repo.load_newick("fig1", FIG1_NEWICK).unwrap().handle;
    let projection = repo
        .project_species(handle, &["Bha", "Lla", "Syn"])
        .unwrap();
    let mut doc = phylo::nexus::NexusDocument::new();
    doc.push_tree("projection", projection.clone());
    let text = phylo::nexus::write(&doc);
    let parsed = phylo::nexus::parse(&text).unwrap();
    assert!(ops::isomorphic_with_lengths(
        &parsed.trees[0].tree,
        &projection,
        1e-6
    ));
}
