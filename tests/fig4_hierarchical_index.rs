//! Experiment E2 — the paper's Figure 4: the layered index structure over
//! the Figure 1 tree, its source nodes, and the §2.1 worked LCA example,
//! both in the in-memory index and in the stored repository.

use crimson::prelude::*;
use labeling::prelude::*;
use phylo::builder::figure1_tree;
use phylo::NodeId;

#[test]
fn layered_structure_and_source_nodes() {
    let tree = figure1_tree();
    let index = HierarchicalDewey::build(&tree, 2);

    // With frame depth 2 the depth-3 tree cannot fit in one frame, so layer 0
    // has several frames and a layer above exists — the Figure 4 shape.
    let layer0 = index.layer(0);
    assert!(
        layer0.frame_count() > 1,
        "layer 0 must be decomposed into multiple subtrees"
    );
    assert!(
        index.layer_count() >= 2,
        "a layer-1 tree over the layer-0 subtrees must exist"
    );

    // Every split-off frame records its source node = the parent of its root
    // (the dotted edge from node 6 to node 3 in Figure 4).
    for fid in 0..layer0.frame_count() as u32 {
        let frame = layer0.frame(fid);
        match frame.source {
            Some(source) => {
                assert_eq!(tree.parent(NodeId(frame.root)), Some(NodeId(source)));
            }
            None => assert_eq!(NodeId(frame.root), tree.root_unchecked()),
        }
    }

    // Labels are bounded by f = 2: at most one local component.
    for node in tree.node_ids() {
        assert!(index.label(node).path.len() < 2);
    }
}

#[test]
fn worked_lca_example_across_layers() {
    // §2.1: LCA(Syn, Lla). Syn lives in the frame containing the root; Lla
    // in a split-off frame. The cross-layer procedure resolves the source
    // node and the answer is the tree root (node "1" in Figure 4).
    let tree = figure1_tree();
    let lla = tree.find_leaf_by_name("Lla").unwrap();
    let spy = tree.find_leaf_by_name("Spy").unwrap();
    let syn = tree.find_leaf_by_name("Syn").unwrap();
    for f in [2usize, 3] {
        let index = HierarchicalDewey::build(&tree, f);
        assert_eq!(index.lca(lla, syn), tree.root_unchecked(), "f={f}");
        assert_eq!(index.lca(lla, spy), tree.parent(lla).unwrap(), "f={f}");
        assert!(index.is_ancestor(tree.root_unchecked(), lla));
        assert!(!index.is_ancestor(syn, lla));
    }
}

#[test]
fn stored_frames_mirror_figure4() {
    // The repository persists the same structure: frames with parent frames,
    // source nodes and bounded local labels.
    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("e2.crimson"),
        RepositoryOptions {
            frame_depth: 2,
            buffer_pool_pages: 256,
            ..Default::default()
        },
    )
    .unwrap();
    let tree = figure1_tree();
    let handle = repo.load_tree("fig1", &tree).unwrap();

    // Every stored node's label is bounded by f - 1 components.
    for leaf in repo.leaves(handle).unwrap() {
        let rec = repo.node_record(leaf).unwrap();
        assert!(rec.local_label.len() < 2);
        // The node's frame exists and, when split off, its source node is the
        // parent of its root.
        let frame = repo.frame_record(rec.frame).unwrap();
        if let Some(source) = frame.source_node {
            let root_rec = repo.node_record(frame.root_node).unwrap();
            assert_eq!(root_rec.parent, Some(source));
        }
    }

    // The stored-label LCA reproduces the worked example.
    let lla = repo.require_species_node(handle, "Lla").unwrap();
    let syn = repo.require_species_node(handle, "Syn").unwrap();
    let lca = repo.node_record(repo.lca(lla, syn).unwrap()).unwrap();
    assert_eq!(lca.depth, 0, "LCA(Lla, Syn) is the root");
    let spy = repo.require_species_node(handle, "Spy").unwrap();
    let lca = repo.node_record(repo.lca(lla, spy).unwrap()).unwrap();
    assert_eq!(lca.depth, 2, "LCA(Lla, Spy) is their parent");
}

#[test]
fn stored_lca_agrees_with_all_schemes_on_simulated_tree() {
    // Cross-validation of every label scheme and the repository on one
    // simulated phylogeny.
    let tree = simulation::birth_death::yule_tree(150, 1.0, 5);
    let flat = FlatDewey::build(&tree);
    let hier = HierarchicalDewey::build(&tree, 4);
    let interval = IntervalLabels::build(&tree);

    let dir = tempfile::tempdir().unwrap();
    let mut repo = Repository::create(
        dir.path().join("e2b.crimson"),
        RepositoryOptions {
            frame_depth: 4,
            buffer_pool_pages: 1024,
            ..Default::default()
        },
    )
    .unwrap();
    let handle = repo.load_tree("sim", &tree).unwrap();

    let leaves: Vec<NodeId> = tree.leaf_ids().collect();
    for i in (0..leaves.len()).step_by(13) {
        for j in (0..leaves.len()).step_by(17) {
            let (a, b) = (leaves[i], leaves[j]);
            let expected = tree.lca(a, b);
            assert_eq!(flat.lca(a, b), expected);
            assert_eq!(hier.lca(a, b), expected);
            assert_eq!(interval.lca(a, b), expected);
            let sa = repo
                .require_species_node(handle, tree.name(a).unwrap())
                .unwrap();
            let sb = repo
                .require_species_node(handle, tree.name(b).unwrap())
                .unwrap();
            let stored = repo.node_record(repo.lca(sa, sb).unwrap()).unwrap();
            assert_eq!(stored.depth as usize, tree.depth(expected));
            assert!((stored.root_distance - tree.root_distance(expected)).abs() < 1e-9);
        }
    }
}
