//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! Backed by `std::sync`; lock poisoning is ignored (a panic while holding a
//! lock recovers the inner data), which matches parking_lot's semantics of
//! not poisoning at all.

use std::sync::{MutexGuard as StdMutexGuard, RwLockReadGuard as StdReadGuard};
use std::sync::{RwLockWriteGuard as StdWriteGuard, TryLockError};

/// A mutual exclusion primitive (non-poisoning `lock()` signature).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock (non-poisoning signatures).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
