//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`Value`] (re-exported from the `serde` shim), [`json!`], [`to_string`],
//! [`to_vec`], [`from_str`], [`from_slice`] and a strict JSON parser/writer.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};

/// Error produced by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    fn new(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// `Result` alias matching serde_json's signature shapes.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                let s = format!("{f:?}");
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Serialize to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pair handling for non-BMP characters.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    let end = start + len;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::deserialize_value(&value)?)
}

/// Parse JSON bytes into any [`Deserialize`] type.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(e.to_string()))?;
    from_str(text)
}

/// Convert any [`Serialize`] type into a [`Value`] document.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Build a [`Value`] with JSON literal syntax: flat or nested objects with
/// string-literal keys, arrays, `null`, and interpolated Rust expressions
/// (anything `Serialize`, including a nested `json!` call).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( ::serde::Serialize::serialize_value(&$item) ),* ])
    };
    ({ $($key:literal : $value:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), ::serde::Serialize::serialize_value(&$value)) ),*
        ])
    };
    ($other:expr) => {
        ::serde::Serialize::serialize_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let v = json!({
            "name": "crimson",
            "nodes": 8,
            "time": 1.5,
            "flags": json!([true, false, json!(null)]),
            "nested": json!({"k": "v\n\"quoted\""})
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["nodes"], 8);
        assert_eq!(back["name"], "crimson");
        assert_eq!(back["nested"]["k"].as_str(), Some("v\n\"quoted\""));
    }

    #[test]
    fn expression_interpolation() {
        let count = 3usize;
        let name = String::from("fig1");
        let v = json!({"tree": name, "nodes": count});
        assert_eq!(v["nodes"], 3);
        assert_eq!(v["tree"], "fig1");
    }

    #[test]
    fn parses_numbers_and_unicode() {
        let v: Value =
            from_str("{\"a\": -12, \"b\": 2.5e3, \"c\": \"\\u00e9\\ud83d\\ude00\"}").unwrap();
        assert_eq!(v["a"], -12);
        assert_eq!(v["b"].as_f64(), Some(2500.0));
        assert_eq!(v["c"].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1,]2").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn float_roundtrip_precision() {
        let v = Value::Float(0.1 + 0.2);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back.as_f64(), v.as_f64());
    }
}
