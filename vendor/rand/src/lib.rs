//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! Provides [`rngs::StdRng`] (a xoshiro256** generator seeded via SplitMix64),
//! the [`Rng`] / [`SeedableRng`] traits with `gen`, `gen_range`, `gen_bool`,
//! and [`seq::SliceRandom`] with `shuffle` / `choose` / `choose_multiple`.
//! The streams are deterministic per seed but are NOT the same streams as the
//! real `rand` crate; everything in this workspace seeds explicitly and only
//! relies on determinism, not on specific values.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator from OS-provided entropy (time-derived here).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos ^ (std::process::id() as u64).rotate_left(32))
    }
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Rejection-free-enough bounded integer draw (Lemire-style multiply-shift).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Widening multiply keeps the bias below 2^-64, irrelevant here.
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64::sample(rng) * (end - start)
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<Range: SampleRange>(&mut self, range: Range) -> Range::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0xDEADBEEF, 0xCAFEBABE, 0xF00DF00D, 0x12345678];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related sampling helpers.
pub mod seq {
    use super::{bounded_u64, RngCore};

    /// Shuffling and choosing over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in selection order (all elements when
        /// `amount` exceeds the length).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index vector.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + bounded_u64(rng, (idx.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// `rand::prelude`-style convenience re-exports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit over 1000 draws");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut distinct = picked.clone();
        distinct.sort();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            10,
            "choose_multiple returns distinct elements"
        );
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "got {hits} hits for p=0.25");
    }
}
