//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Implements a small but honest wall-clock harness: each benchmark is warmed
//! up, then run for `sample_size` samples inside the configured measurement
//! window, and the per-iteration mean/min/max are printed in criterion-like
//! format. Statistical machinery (outlier analysis, HTML reports) is out of
//! scope; medians over the configured samples are stable enough for the
//! repository's before/after comparisons.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id (`function/parameter`).
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly and record per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Choose an inner batch size so one sample costs roughly
        // measurement_time / target_samples.
        let sample_budget = self.measurement_time / self.target_samples.max(1) as u32;
        let batch = if per_iter.is_zero() {
            64
        } else {
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u32
        };

        let deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(1200),
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up window before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Apply command-line overrides (`<filter>` substring, `--quick`).
    /// Cargo's `--bench` flag is ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--test" => {}
                "--quick" => {
                    self.measurement_time = Duration::from_millis(200);
                    self.sample_size = 3;
                }
                "--sample-size" => {
                    if let Some(v) = args.next() {
                        if let Ok(n) = v.parse() {
                            self.sample_size = n;
                        }
                    }
                }
                other if !other.starts_with('-') => self.filter = Some(other.to_string()),
                _ => {}
            }
        }
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]",
            format_duration(min),
            format_duration(median),
            format_duration(max)
        );
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmark a closure with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Finish the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Declare a group runner function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("add", 1), &21u64, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("lca", 1000).to_string(), "lca/1000");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }
}
