//! Derive macros for the offline `serde` shim.
//!
//! Supports the shapes this workspace actually uses: non-generic structs
//! (named, newtype, tuple, unit) and non-generic enums (unit, newtype, tuple
//! and struct variants), with serde's default document representation:
//!
//! * named struct → object keyed by field name
//! * newtype struct → transparent (the inner value)
//! * tuple struct → array
//! * unit variant → the variant name as a string
//! * data variant → single-key object `{ "Variant": payload }`
//!
//! `#[serde(...)]` attributes and generic types are intentionally not
//! supported; hitting one panics at compile time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    /// `#[serde(default)]`: a missing key deserializes to `Default::default()`.
    default: bool,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// `true` when the bracket group `g` (the `[...]` of an attribute) is
/// exactly `[serde(default)]`.
fn serde_attr_default(g: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1), toks.len()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)), 2)
            if id.to_string() == "serde" && inner.delimiter() == Delimiter::Parenthesis =>
        {
            let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
            matches!((inner.first(), inner.len()),
                (Some(TokenTree::Ident(i)), 1) if i.to_string() == "default")
        }
        _ => false,
    }
}

/// Like [`skip_attrs_and_vis`], but for named-struct fields, where the one
/// supported serde attribute — `#[serde(default)]` — is collected instead
/// of rejected. Returns the new cursor and whether the flag was seen.
fn skip_field_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut default = false;
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => match tokens.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    if g.to_string().trim_start().starts_with("[serde") {
                        if serde_attr_default(g) {
                            default = true;
                        } else {
                            panic!(
                                "serde shim derive: the only supported field attribute is                                  #[serde(default)]"
                            );
                        }
                    }
                    i += 2;
                }
                _ => return (i, default),
            },
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return (i, default),
        }
    }
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// modifiers at the cursor position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` followed by a bracket group is an attribute.
                match tokens.get(i + 1) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if g.to_string().trim_start().starts_with("[serde") {
                            panic!("serde shim derive: #[serde(...)] attributes are not supported");
                        }
                        i += 2;
                    }
                    _ => return i,
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Advance past one type expression, returning the index of the terminating
/// top-level comma (or `tokens.len()`). Tracks `<`/`>` depth so commas inside
/// generic arguments do not terminate the field.
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle_depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, default) = skip_field_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field name, found `{other}`"),
        }
        i = skip_type(&tokens, i);
        i += 1; // past the comma (or end)
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        i = skip_type(&tokens, i);
        i += 1;
        count += 1;
    }
    count
}

fn parse_enum_variants(group: &proc_macro::Group) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant, then the separating comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    break;
                }
            }
            i += 1;
        }
        i += 1;
        variants.push((name, fields));
    }
    variants
}

fn parse(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found `{other}`"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Struct(Fields::Named(parse_named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Struct(Fields::Tuple(count_tuple_fields(g)))
            }
            _ => Shape::Struct(Fields::Unit),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_enum_variants(g))
            }
            other => panic!("serde shim derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}`"),
    };
    Parsed { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::serialize_value(&self.0)".to_string()
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::serialize_value(__f0))]),"
                    ),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binders = fs.iter().map(|f| f.name.as_str()).collect::<Vec<_>>().join(", ");
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                let f = &f.name;
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Object(vec![(\"{v}\"\
                             .to_string(), ::serde::Value::Object(vec![{}]))]),",
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_constructor(path: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.default {
                // `#[serde(default)]`: a document written before the field
                // existed simply lacks the key; fall back to the type's
                // `Default` instead of failing on `Null`.
                format!(
                    "{name}: match {source}.get(\"{name}\") {{ \
                     Some(__fv) => ::serde::Deserialize::deserialize_value(__fv)?, \
                     None => ::core::default::Default::default() }}"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::deserialize_value({source}.get(\"{name}\")\
                     .unwrap_or(&::serde::Value::Null))?"
                )
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::Struct(Fields::Named(fields)) => {
            let ctor = gen_named_constructor(name, fields, "__v");
            format!(
                "match __v {{ ::serde::Value::Object(_) => Ok({ctor}), \
                 _ => Err(::serde::DeError::msg(\"expected object for struct {name}\")) }}"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::deserialize_value(__v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize_value(&__items[{i}])?"))
                .collect();
            format!(
                "{{ let __items = __v.as_array().ok_or_else(|| ::serde::DeError::msg(\
                 \"expected array for struct {name}\"))?; \
                 if __items.len() != {n} {{ return Err(::serde::DeError::msg(\
                 \"wrong arity for struct {name}\")); }} \
                 Ok({name}({})) }}",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::deserialize_value(\
                         __inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::deserialize_value(&__items[{i}])?")
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::msg(\"expected array for variant {v}\"))?; \
                             if __items.len() != {n} {{ return Err(::serde::DeError::msg(\
                             \"wrong arity for variant {v}\")); }} \
                             Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let ctor = gen_named_constructor(&format!("{name}::{v}"), fs, "__inner");
                        Some(format!("\"{v}\" => Ok({ctor}),"))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::msg(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 match __tag.as_str() {{\n\
                 {}\n\
                 __other => Err(::serde::DeError::msg(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                 }}\n\
                 }},\n\
                 _ => Err(::serde::DeError::msg(\"expected string or single-key object for enum \
                 {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_serialize(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
