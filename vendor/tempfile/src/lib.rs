//! Offline shim for the subset of `tempfile` this workspace uses:
//! [`tempdir`] / [`TempDir`] — uniquely named directories under the system
//! temp dir, removed recursively on drop.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory in the filesystem that is deleted (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: Option<PathBuf>,
}

impl TempDir {
    /// Create a fresh temporary directory under `std::env::temp_dir()`.
    pub fn new() -> std::io::Result<TempDir> {
        let base = std::env::temp_dir();
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos())
                .unwrap_or(0);
            let candidate = base.join(format!(".tmp-crimson-{pid}-{n}-{nanos}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => {
                    return Ok(TempDir {
                        path: Some(candidate),
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        self.path
            .as_deref()
            .expect("TempDir path is present until drop")
    }

    /// Persist the directory (skip deletion on drop) and return its path.
    pub fn keep(mut self) -> PathBuf {
        self.path
            .take()
            .expect("TempDir path is present until drop")
    }

    /// Delete the directory now, reporting any I/O error.
    pub fn close(mut self) -> std::io::Result<()> {
        match self.path.take() {
            Some(p) => std::fs::remove_dir_all(p),
            None => Ok(()),
        }
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        if let Some(p) = self.path.take() {
            let _ = std::fs::remove_dir_all(p);
        }
    }
}

/// Create a new [`TempDir`] (the classic `tempfile::tempdir()` entry point).
pub fn tempdir() -> std::io::Result<TempDir> {
    TempDir::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_drop() {
        let path;
        {
            let dir = tempdir().unwrap();
            path = dir.path().to_path_buf();
            std::fs::write(dir.path().join("x.txt"), b"hello").unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists(), "directory must be removed on drop");
    }

    #[test]
    fn dirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
