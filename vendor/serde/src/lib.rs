//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Rather than serde's zero-copy visitor architecture, this shim defines a
//! single in-memory JSON document model ([`Value`]) and two traits that
//! convert to and from it. The companion `serde_derive` shim generates
//! implementations for plain structs and enums (no generics, no attributes),
//! and the `serde_json` shim adds text encoding on top. The document shapes
//! match serde's defaults: structs are objects, unit enum variants are
//! strings, data-carrying variants are single-key objects.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// The JSON document model shared by `serde` and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number without a fractional part.
    Int(i64),
    /// JSON number with a fractional part (or out of `i64` range).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup for objects; `None` for other shapes or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup for arrays.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (floats with integral values included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// The unsigned integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().and_then(|i| u64::try_from(i).ok())
    }

    /// The numeric payload as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL_VALUE)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the document model.
pub trait Serialize {
    /// Represent `self` as a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Conversion out of the document model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`].
    fn deserialize_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Implementations for primitives and standard containers
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

macro_rules! serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(*self as f64),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(value: &Value) -> Result<Self, DeError> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| DeError::msg(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| DeError::msg(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

serde_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        if self.is_finite() {
            Value::Float(*self)
        } else {
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        (*self as f64).serialize_value()
    }
}

impl Deserialize for f32 {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::deserialize_value(value)? as f32)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError::msg("expected 2-tuple"))?;
        if items.len() != 2 {
            return Err(DeError::msg("expected 2-tuple"));
        }
        Ok((
            A::deserialize_value(&items[0])?,
            B::deserialize_value(&items[1])?,
        ))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_value(v)?)))
                .collect(),
            _ => Err(DeError::msg("expected object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(42u32.serialize_value(), Value::Int(42));
        assert_eq!(u32::deserialize_value(&Value::Int(42)).unwrap(), 42);
        assert!(u32::deserialize_value(&Value::Int(-1)).is_err());
        assert_eq!(
            Option::<u32>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u8>::deserialize_value(&vec![1u8, 2, 3].serialize_value()).unwrap(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![("k".into(), Value::Int(8))]);
        assert_eq!(v["k"], 8);
        assert!(v["missing"].is_null());
        assert_eq!(Value::String("x".into()), "x");
    }
}
